//! The [`QueryService`] front end: admission → deadline → retry →
//! breaker, wrapped around optimizer plan execution.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aqua_algebra::bulk::TreeSet;
use aqua_algebra::{List, Tree};
use aqua_exec::WorkerPermits;
use aqua_guard::{failpoint, Budget, CancelToken, ErrorClass, ExecGuard, SharedGuard};
use aqua_object::Oid;
use aqua_obs::{Metrics, MetricsSnapshot};
use aqua_optimizer::{Catalog, Explain, OptError, Optimizer};
use aqua_pattern::ast::Re;
use aqua_pattern::list::{ListMatch, Sym};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::{PredExpr, TreePattern};
use aqua_store::{
    DurableConfig, DurableStore, RebalanceReport, RecoveryReport, Root, ShardTxn, ShardedConfig,
    ShardedRecoveryReport, ShardedStore, SplitCertificate, StoreError, TxnReceipt,
};

use crate::admission::{Admission, AdmissionConfig};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Dispatch, Transition};
use crate::error::{classify, Result, ServiceError};
use crate::retry::RetryPolicy;
use crate::{SERVICE_COMMIT_PROBE, SERVICE_DISPATCH_PROBE};

/// The plan families the service fronts; each gets its own circuit
/// breaker (a fault storm against tree indexes should not degrade set
/// selects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanClass {
    /// `sub_select` over one tree.
    TreeSubSelect,
    /// `select` over a class extent.
    SetSelect,
    /// `sub_select` over one list.
    ListSubSelect,
    /// `sub_select` over a `Set[Tree]` fleet.
    ForestSubSelect,
    /// Cross-shard transactional mutation (two-phase commit).
    CrossShardTxn,
    /// Online shard-count change (admin path, subtree migration).
    Rebalance,
}

impl PlanClass {
    /// Every class, breaker-array order.
    pub const ALL: [PlanClass; 6] = [
        PlanClass::TreeSubSelect,
        PlanClass::SetSelect,
        PlanClass::ListSubSelect,
        PlanClass::ForestSubSelect,
        PlanClass::CrossShardTxn,
        PlanClass::Rebalance,
    ];

    fn idx(self) -> usize {
        match self {
            PlanClass::TreeSubSelect => 0,
            PlanClass::SetSelect => 1,
            PlanClass::ListSubSelect => 2,
            PlanClass::ForestSubSelect => 3,
            PlanClass::CrossShardTxn => 4,
            PlanClass::Rebalance => 5,
        }
    }
}

impl std::fmt::Display for PlanClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanClass::TreeSubSelect => "tree-sub-select",
            PlanClass::SetSelect => "set-select",
            PlanClass::ListSubSelect => "list-sub-select",
            PlanClass::ForestSubSelect => "forest-sub-select",
            PlanClass::CrossShardTxn => "cross-shard-txn",
            PlanClass::Rebalance => "rebalance",
        })
    }
}

/// Service-wide tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Front-door limits.
    pub admission: AdmissionConfig,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
    /// Per-plan-class breaker tuning.
    pub breaker: BreakerConfig,
    /// Result cap for degraded responses (applied as a `max_matches`
    /// clamp for trees/forests, a scan cap for sets, and a prefix
    /// truncation for lists).
    pub degraded_cap: usize,
    /// Pool-worker slots shared by every forest execution.
    pub worker_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degraded_cap: 8,
            worker_cap: aqua_exec::available_threads(),
        }
    }
}

/// One submission's envelope: who, under what budget, cancellable how,
/// and how heavy it counts against the queue's byte limit.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Tenant identifier for the per-tenant concurrency cap.
    pub tenant: String,
    /// Execution budget — one budget for the whole submission. Its
    /// `deadline` (if any) bounds queueing, every retry attempt, and
    /// every backoff sleep; its `max_steps` is the total across
    /// attempts, not per attempt.
    pub budget: Budget,
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Payload weight against [`AdmissionConfig::max_queued_bytes`].
    pub cost_bytes: usize,
    /// Run the independent certificate checker inline on answers that
    /// support it ([`QueryService::tree_split`]). Also forced on when
    /// the tenant is registered via
    /// [`QueryService::set_tenant_verify`].
    pub verify: bool,
}

impl Request {
    /// A request for `tenant` with an unlimited budget.
    pub fn new(tenant: &str) -> Request {
        Request {
            tenant: tenant.to_owned(),
            ..Request::default()
        }
    }

    /// Replace the budget.
    pub fn with_budget(mut self, budget: Budget) -> Request {
        self.budget = budget;
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Request {
        self.cancel = Some(token);
        self
    }

    /// Set the queue-accounting weight.
    pub fn with_cost_bytes(mut self, bytes: usize) -> Request {
        self.cost_bytes = bytes;
        self
    }

    /// Ask for inline certificate verification.
    pub fn with_verify(mut self, verify: bool) -> Request {
        self.verify = verify;
        self
    }
}

/// Truncation provenance carried into [`ResponseMeta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Truncation {
    /// Any limit clipped the answer.
    pub truncated: bool,
    /// Parse enumerations clipped (trees only).
    pub clipped_parses: usize,
    /// Per-root instance lists clipped (trees only).
    pub clipped_roots: usize,
    /// The overall result cap stopped the scan early.
    pub hit_max_matches: bool,
}

/// First-class response metadata: what the serving layer did to produce
/// this answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseMeta {
    /// Execution attempts launched (≥ 1).
    pub attempts: usize,
    /// Retries beyond the first attempt.
    pub retries: usize,
    /// How the breaker dispatched this submission.
    pub dispatch: Dispatch,
    /// `true` when served behind an open breaker at reduced fidelity.
    pub degraded: bool,
    /// Truncation flags — a degraded or clamped answer is *partial*, and
    /// this says exactly how.
    pub truncation: Truncation,
    /// Guard steps spent across every attempt.
    pub steps: u64,
}

/// A successful service response.
#[derive(Debug)]
pub struct Response<T> {
    /// The query answer (possibly partial — see `meta.truncation`).
    pub value: T,
    /// Planning + execution record, including retry/breaker events.
    pub explain: Explain,
    /// What the serving layer did.
    pub meta: ResponseMeta,
}

/// A served `split` answer: the decompositions, plus — when the request
/// (or its tenant) asked for verification — one reassembly certificate
/// per decomposition, already revalidated inline by the independent
/// `aqua-check` crate before this response was released.
#[derive(Debug, Default)]
pub struct SplitServe {
    /// Piece decompositions, in document order of their match roots.
    pub pieces: Vec<aqua_algebra::tree::split::SplitPieces>,
    /// Rendered certificates (`AQUA-SPLIT-CERT v1` text), one per
    /// decomposition; empty when verification was not requested.
    pub certificates: Vec<String>,
}

struct AttemptFail {
    class: ErrorClass,
    message: String,
    steps: u64,
    /// Count this failure against the breaker window even when its
    /// class is not `Transient` — an integrity violation is permanent
    /// for the caller but still indicts the backend.
    breaker_fault: bool,
    /// When set, the terminal error is [`ServiceError::Integrity`] for
    /// this extent instead of a generic `Failed`.
    integrity_extent: Option<String>,
}

impl AttemptFail {
    fn from_opt(e: OptError, steps: u64) -> AttemptFail {
        AttemptFail {
            class: classify(&e),
            message: e.to_string(),
            steps,
            breaker_fault: false,
            integrity_extent: None,
        }
    }

    fn integrity(extent: &str, detail: String, steps: u64) -> AttemptFail {
        AttemptFail {
            class: ErrorClass::Permanent,
            message: detail,
            steps,
            breaker_fault: true,
            integrity_extent: Some(extent.to_string()),
        }
    }
}

fn probe(point: &str, steps: u64) -> std::result::Result<(), AttemptFail> {
    failpoint::check(point).map_err(|e| AttemptFail {
        class: e.class(),
        message: e.to_string(),
        steps,
        breaker_fault: false,
        integrity_extent: None,
    })
}

/// The resilient query front end. One instance fronts one store for many
/// concurrent callers; all methods take `&self`.
pub struct QueryService {
    cfg: ServiceConfig,
    admission: Admission,
    breakers: [CircuitBreaker; PlanClass::ALL.len()],
    permits: WorkerPermits,
    metrics: Metrics,
    submissions: AtomicU64,
    recovery: Mutex<Option<RecoveryReport>>,
    sharded_recovery: Mutex<Option<ShardedRecoveryReport>>,
    /// Tenants whose answers are always verified inline, regardless of
    /// the per-request flag.
    verify_tenants: Mutex<std::collections::BTreeSet<String>>,
}

impl Default for QueryService {
    fn default() -> QueryService {
        QueryService::new(ServiceConfig::default())
    }
}

impl QueryService {
    /// A service with the given tuning.
    pub fn new(cfg: ServiceConfig) -> QueryService {
        QueryService {
            admission: Admission::new(cfg.admission),
            breakers: std::array::from_fn(|_| CircuitBreaker::new(cfg.breaker)),
            permits: WorkerPermits::new(cfg.worker_cap),
            metrics: Metrics::new(),
            submissions: AtomicU64::new(0),
            recovery: Mutex::new(None),
            sharded_recovery: Mutex::new(None),
            verify_tenants: Mutex::new(std::collections::BTreeSet::new()),
            cfg,
        }
    }

    /// Force inline verification on (or off) for every submission from
    /// `tenant`, regardless of each request's own `verify` flag.
    pub fn set_tenant_verify(&self, tenant: &str, verify: bool) {
        let mut set = self.verify_tenants.lock().unwrap();
        if verify {
            set.insert(tenant.to_string());
        } else {
            set.remove(tenant);
        }
    }

    /// Will this request's answers be verified inline?
    pub fn verifies(&self, req: &Request) -> bool {
        req.verify || self.verify_tenants.lock().unwrap().contains(&req.tenant)
    }

    /// Open (recovering if necessary) the durable store at `dir` as part
    /// of service startup. The [`RecoveryReport`] is stamped into this
    /// service's metrics (`recoveries`, `recovery_frames_replayed`,
    /// `recovery_bytes_truncated`, `recovery_indices_rebuilt`), retained
    /// for [`recovery_report`](Self::recovery_report), and the store is
    /// armed with the service metrics so its WAL/checkpoint traffic shows
    /// up in [`metrics_snapshot`](Self::metrics_snapshot). Recovery
    /// failures surface as a typed [`ServiceError::Failed`] carrying the
    /// store error's class — never a panic.
    pub fn open_durable(&self, dir: &Path, cfg: DurableConfig) -> Result<DurableStore> {
        match DurableStore::open(dir, cfg) {
            Ok((mut store, report)) => {
                report.stamp(&self.metrics);
                store.set_metrics(self.metrics.clone());
                *self.recovery.lock().unwrap() = Some(report);
                Ok(store)
            }
            Err(e) => Err(ServiceError::Failed {
                class: e.class(),
                attempts: 1,
                steps: 0,
                message: format!("durable store open failed: {e}"),
            }),
        }
    }

    /// [`open_durable`](Self::open_durable) for a sharded store: shards
    /// recover in parallel, every per-shard [`RecoveryReport`] is
    /// stamped into the service metrics (plus `shard_recoveries`), the
    /// combined [`ShardedRecoveryReport`] — global root included — is
    /// retained for [`sharded_recovery_report`](Self::sharded_recovery_report),
    /// and every shard is armed with the service metrics.
    pub fn open_sharded(&self, dir: &Path, cfg: ShardedConfig) -> Result<ShardedStore> {
        match ShardedStore::open(dir, cfg) {
            Ok((mut store, report)) => {
                report.stamp(&self.metrics);
                store.set_metrics(self.metrics.clone());
                *self.sharded_recovery.lock().unwrap() = Some(report);
                Ok(store)
            }
            Err(e) => Err(ServiceError::Failed {
                class: e.class(),
                attempts: 1,
                steps: 0,
                message: format!("sharded store open failed: {e}"),
            }),
        }
    }

    /// What the last [`open_durable`](Self::open_durable) found and did,
    /// for health endpoints and CI artifacts. `None` until a durable
    /// store has been opened through this service.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery.lock().unwrap().clone()
    }

    /// What the last [`open_sharded`](Self::open_sharded) found and did:
    /// per-shard reports plus the folded global root. `None` until a
    /// sharded store has been opened through this service.
    pub fn sharded_recovery_report(&self) -> Option<ShardedRecoveryReport> {
        self.sharded_recovery.lock().unwrap().clone()
    }

    /// The service's own counters (`svc_*`; engine-progress fields stay
    /// zero — per-query engine metrics live in each response's Explain).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// One class's breaker state, for health endpoints and tests.
    pub fn breaker_state(&self, class: PlanClass) -> BreakerState {
        self.breakers[class.idx()].state()
    }

    /// Submissions currently queued at the front door.
    pub fn queue_depth(&self) -> usize {
        self.admission.queue_depth()
    }

    /// Submissions currently executing.
    pub fn inflight(&self) -> usize {
        self.admission.inflight()
    }

    fn guard(&self, budget: Budget, cancel: &Option<CancelToken>) -> ExecGuard {
        match cancel {
            Some(t) => ExecGuard::with_cancel(budget, t.clone()),
            None => ExecGuard::new(budget),
        }
    }

    fn note_transition(&self, t: Transition, class: PlanClass, explain: &mut Explain) {
        match t {
            Transition::None => {}
            Transition::Tripped => {
                self.metrics.svc_tripped.inc();
                explain.record_service_event(format!("breaker tripped open ({class})"));
            }
            Transition::Recovered => {
                explain.record_service_event(format!("breaker recovered ({class})"));
            }
            Transition::Reopened => {
                explain.record_service_event(format!("probe failed, breaker re-opened ({class})"));
            }
        }
    }

    /// The admission → deadline → retry → breaker pipeline shared by
    /// every entry point. `attempt` runs one execution under the given
    /// dispatch and *remaining* budget, returning the value, its
    /// truncation flags, and the guard steps it spent; a failed attempt
    /// reports its spent steps inside [`AttemptFail`] so the next
    /// attempt resumes from the same budget rather than a fresh one.
    fn run<T>(
        &self,
        class: PlanClass,
        req: &Request,
        mut explain: Explain,
        mut attempt: impl FnMut(
            Dispatch,
            Budget,
            &mut Explain,
        ) -> std::result::Result<(T, Truncation, u64), AttemptFail>,
    ) -> Result<Response<T>> {
        let deadline = req.budget.deadline;
        let _permit = match self.admission.admit(&req.tenant, req.cost_bytes, deadline) {
            Ok(p) => p,
            Err(e) => {
                self.metrics.svc_shed.inc();
                return Err(e);
            }
        };
        self.metrics.svc_admitted.inc();
        let dispatch = self.breakers[class.idx()].on_submission();
        let degraded = dispatch == Dispatch::Degraded;
        if degraded {
            self.metrics.svc_degraded.inc();
            explain.record_service_event(format!("degraded dispatch: breaker open ({class})"));
        } else if dispatch == Dispatch::Probe {
            explain.record_service_event(format!("half-open probe ({class})"));
        }
        let salt = self.submissions.fetch_add(1, Ordering::Relaxed);
        let mut backoff = self.cfg.retry.backoff(salt);
        let max_attempts = self.cfg.retry.max_attempts.max(1);
        let mut spent: u64 = 0;

        let terminal = |fail: AttemptFail, attempts: usize, spent: u64, explain: &mut Explain| {
            // Only backend-indicting failures feed the breaker window;
            // budget exhaustion and cancellation are the caller's.
            // Integrity violations indict the backend regardless of
            // class — a store serving unverifiable bytes is faulty.
            let t = self.breakers[class.idx()].on_result(
                dispatch,
                fail.class == ErrorClass::Transient || fail.breaker_fault,
            );
            self.note_transition(t, class, explain);
            match fail.integrity_extent {
                Some(extent) => ServiceError::Integrity {
                    extent,
                    detail: fail.message,
                },
                None => ServiceError::Failed {
                    class: fail.class,
                    attempts,
                    steps: spent,
                    message: fail.message,
                },
            }
        };

        for attempt_no in 1..=max_attempts {
            if deadline.is_some_and(|d| d.expired()) {
                let fail = AttemptFail {
                    class: ErrorClass::Resource,
                    message: format!("deadline expired before attempt {attempt_no}"),
                    steps: 0,
                    breaker_fault: false,
                    integrity_extent: None,
                };
                return Err(terminal(fail, attempt_no - 1, spent, &mut explain));
            }
            match attempt(dispatch, req.budget.remaining_after(spent), &mut explain) {
                Ok((value, truncation, steps)) => {
                    spent += steps;
                    let t = self.breakers[class.idx()].on_result(dispatch, false);
                    self.note_transition(t, class, &mut explain);
                    let retries = explain.retries;
                    return Ok(Response {
                        value,
                        explain,
                        meta: ResponseMeta {
                            attempts: attempt_no,
                            retries,
                            dispatch,
                            degraded,
                            truncation,
                            steps: spent,
                        },
                    });
                }
                Err(fail) => {
                    spent += fail.steps;
                    if fail.class != ErrorClass::Transient || attempt_no == max_attempts {
                        return Err(terminal(fail, attempt_no, spent, &mut explain));
                    }
                    let delay = backoff.next_delay();
                    if let Some(d) = deadline {
                        if d.remaining() <= delay {
                            let fail = AttemptFail {
                                class: ErrorClass::Resource,
                                message: format!(
                                    "deadline cannot cover {delay:?} backoff after: {}",
                                    fail.message
                                ),
                                steps: 0,
                                breaker_fault: false,
                                integrity_extent: None,
                            };
                            return Err(terminal(fail, attempt_no, spent, &mut explain));
                        }
                    }
                    self.metrics.svc_retried.inc();
                    explain.record_retry(&fail.message);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
        unreachable!("loop returns on every terminal path")
    }

    /// Serve `sub_select(pattern)` over one tree.
    pub fn tree_sub_select(
        &self,
        req: &Request,
        catalog: &Catalog<'_>,
        tree: &Tree,
        pattern: &TreePattern,
        cfg: &MatchConfig,
    ) -> Result<Response<Vec<Tree>>> {
        let (plan, explain) = Optimizer::new(catalog)
            .plan_tree_sub_select(pattern, tree.len())
            .map_err(plan_failed)?;
        let degraded_cfg = MatchConfig {
            max_matches: cfg.max_matches.min(self.cfg.degraded_cap),
            ..*cfg
        };
        self.run(
            PlanClass::TreeSubSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                let guard = self.guard(budget, &req.cancel);
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let run_cfg = if dispatch == Dispatch::Degraded {
                    &degraded_cfg
                } else {
                    cfg
                };
                let out = plan
                    .execute_outcome_guarded(catalog, tree, run_cfg, Some(&guard), explain)
                    .map_err(|e| AttemptFail::from_opt(e, guard.snapshot().steps))?;
                let steps = guard.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                Ok((
                    out.trees,
                    Truncation {
                        truncated: out.truncated,
                        clipped_parses: out.clipped_parses,
                        clipped_roots: out.clipped_roots,
                        hit_max_matches: out.hit_max_matches,
                    },
                    steps,
                ))
            },
        )
    }

    /// Serve `split(pattern)` over one tree, returning the full piece
    /// decompositions. When the request (or its tenant, via
    /// [`set_tenant_verify`](Self::set_tenant_verify)) asks for
    /// verification, `extent` must name the committed extent and its
    /// merkle root: each decomposition is checked for well-formedness,
    /// a reassembly certificate is emitted against that root, and the
    /// independent `aqua-check` crate revalidates it inline — any
    /// mismatch becomes a typed [`ServiceError::Integrity`] (never
    /// retried, always fed to the breaker as a backend fault) and the
    /// answer is withheld.
    pub fn tree_split(
        &self,
        req: &Request,
        catalog: &Catalog<'_>,
        tree: &Tree,
        extent: Option<(&str, Root)>,
        pattern: &TreePattern,
        cfg: &MatchConfig,
    ) -> Result<Response<SplitServe>> {
        let (plan, explain) = Optimizer::new(catalog)
            .plan_tree_sub_select(pattern, tree.len())
            .map_err(plan_failed)?;
        let degraded_cfg = MatchConfig {
            max_matches: cfg.max_matches.min(self.cfg.degraded_cap),
            ..*cfg
        };
        let verify = self.verifies(req);
        self.run(
            PlanClass::TreeSubSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                let guard = self.guard(budget, &req.cancel);
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let run_cfg = if dispatch == Dispatch::Degraded {
                    &degraded_cfg
                } else {
                    cfg
                };
                let out = plan
                    .execute_split_outcome_guarded(catalog, tree, run_cfg, Some(&guard), explain)
                    .map_err(|e| AttemptFail::from_opt(e, guard.snapshot().steps))?;
                let steps = guard.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                let mut serve = SplitServe {
                    pieces: out.pieces,
                    certificates: Vec::new(),
                };
                if verify {
                    let (name, root) = extent.ok_or_else(|| {
                        AttemptFail::integrity(
                            "tree:(unbound)",
                            "verification requested but no committed extent root available"
                                .to_string(),
                            steps,
                        )
                    })?;
                    for (i, p) in serve.pieces.iter().enumerate() {
                        if !p.well_formed() {
                            self.metrics.certs_failed.inc();
                            return Err(AttemptFail::integrity(
                                name,
                                format!("split decomposition {i} is malformed (hole arity)"),
                                steps,
                            ));
                        }
                        let cert = SplitCertificate::emit(catalog.store, name, root, p);
                        self.metrics.certs_emitted.inc();
                        let text = cert.to_text();
                        self.metrics.certs_checked.inc();
                        match aqua_check::verify(&text) {
                            Ok(rep) if rep.ok() => {
                                explain.record_integrity_event(format!(
                                    "certificate {i} verified against {name} ({} pieces, {} nodes)",
                                    rep.pieces, rep.nodes
                                ));
                                serve.certificates.push(text);
                            }
                            Ok(rep) => {
                                self.metrics.certs_failed.inc();
                                explain.record_integrity_event(format!(
                                    "certificate {i} REJECTED: {}",
                                    rep.failures.join("; ")
                                ));
                                return Err(AttemptFail::integrity(
                                    name,
                                    format!(
                                        "certificate {i} rejected by checker: {}",
                                        rep.failures.join("; ")
                                    ),
                                    steps,
                                ));
                            }
                            Err(e) => {
                                self.metrics.certs_failed.inc();
                                return Err(AttemptFail::integrity(
                                    name,
                                    format!("certificate {i} unparseable by checker: {e}"),
                                    steps,
                                ));
                            }
                        }
                    }
                }
                Ok((
                    serve,
                    Truncation {
                        truncated: out.truncated,
                        clipped_parses: out.clipped_parses,
                        clipped_roots: out.clipped_roots,
                        hit_max_matches: out.hit_max_matches,
                    },
                    steps,
                ))
            },
        )
    }

    /// Serve `select(pred)` over the catalog class's extent.
    pub fn set_select(
        &self,
        req: &Request,
        catalog: &Catalog<'_>,
        pred: &PredExpr,
    ) -> Result<Response<Vec<Oid>>> {
        let (plan, explain) = Optimizer::new(catalog)
            .plan_set_select(pred)
            .map_err(plan_failed)?;
        self.run(
            PlanClass::SetSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                let guard = self.guard(budget, &req.cancel);
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let cap = (dispatch == Dispatch::Degraded).then_some(self.cfg.degraded_cap as u64);
                let (oids, clipped) = plan
                    .execute_capped_guarded(catalog, cap, Some(&guard), explain)
                    .map_err(|e| AttemptFail::from_opt(e, guard.snapshot().steps))?;
                let steps = guard.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                Ok((
                    oids,
                    Truncation {
                        truncated: clipped,
                        hit_max_matches: clipped,
                        ..Truncation::default()
                    },
                    steps,
                ))
            },
        )
    }

    /// Serve list `sub_select` (all matches of `re`) over one list.
    pub fn list_sub_select(
        &self,
        req: &Request,
        catalog: &Catalog<'_>,
        list: &List,
        re: &Re<Sym>,
        anchor_start: bool,
        anchor_end: bool,
    ) -> Result<Response<Vec<ListMatch>>> {
        let (plan, explain) = Optimizer::new(catalog)
            .plan_list_sub_select(re, anchor_start, anchor_end, list.len())
            .map_err(plan_failed)?;
        self.run(
            PlanClass::ListSubSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                let guard = self.guard(budget, &req.cancel);
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let mut matches = plan
                    .execute_guarded(catalog, list, Some(&guard), explain)
                    .map_err(|e| AttemptFail::from_opt(e, guard.snapshot().steps))?;
                let steps = guard.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                // Lists have no native result cap; a degraded response keeps
                // the first `degraded_cap` matches (match order is start
                // order, so this is a deterministic prefix).
                let mut trunc = Truncation::default();
                if dispatch == Dispatch::Degraded && matches.len() > self.cfg.degraded_cap {
                    matches.truncate(self.cfg.degraded_cap);
                    trunc.truncated = true;
                    trunc.hit_max_matches = true;
                }
                Ok((matches, trunc, steps))
            },
        )
    }

    /// Serve `sub_select(pattern)` over a forest, one catalog per
    /// member, running on pool workers granted by the service-wide
    /// [`WorkerPermits`] — concurrent forest submissions share the
    /// machine instead of oversubscribing it.
    pub fn forest_sub_select(
        &self,
        req: &Request,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        pattern: &TreePattern,
        cfg: &MatchConfig,
    ) -> Result<Response<Vec<(usize, Tree)>>> {
        let sizes: Vec<usize> = set.members().iter().map(Tree::len).collect();
        let (plan, explain) = catalogs
            .first()
            .map(|c| Optimizer::new(c).plan_forest_sub_select(pattern, &sizes, self.permits.cap()))
            .unwrap_or_else(|| {
                Err(OptError::CatalogMismatch {
                    members: set.len(),
                    catalogs: 0,
                })
            })
            .map_err(plan_failed)?;
        let degraded_cfg = MatchConfig {
            max_matches: cfg.max_matches.min(self.cfg.degraded_cap),
            ..*cfg
        };
        self.run(
            PlanClass::ForestSubSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let grant = self.permits.acquire(plan.degree);
                if grant.granted() < plan.degree {
                    explain.record_service_event(format!(
                        "backpressure: {} of {} planned workers granted",
                        grant.granted(),
                        plan.degree
                    ));
                }
                let shared = match &req.cancel {
                    Some(t) => SharedGuard::with_cancel(budget, t.clone()),
                    None => SharedGuard::new(budget),
                };
                let run_cfg = if dispatch == Dispatch::Degraded {
                    &degraded_cfg
                } else {
                    cfg
                };
                let out = plan
                    .execute_guarded_at(
                        grant.granted(),
                        catalogs,
                        set,
                        run_cfg,
                        Some(&shared),
                        explain,
                    )
                    .map_err(|e| AttemptFail::from_opt(e, shared.snapshot().steps))?;
                let steps = shared.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                // Fleet members clamp per member; the degraded flag (not
                // per-member tallies) is the truncation signal here.
                let trunc = Truncation {
                    truncated: dispatch == Dispatch::Degraded,
                    hit_max_matches: dispatch == Dispatch::Degraded,
                    ..Truncation::default()
                };
                Ok((out, trunc, steps))
            },
        )
    }

    /// [`forest_sub_select`](Self::forest_sub_select) over a sharded
    /// store: members are routed to their owning shard by `shard_of`,
    /// one worker executes each per-shard batch, and the gather phase
    /// restores member order — the answer is byte-identical to the
    /// unsharded path. Admission, budgets, deadlines, and cancellation
    /// propagate into every per-shard sub-plan through the one
    /// [`SharedGuard`] the batch workers are minted from, and worker
    /// permits clamp the scatter width exactly as they clamp the
    /// unsharded fleet.
    #[allow(clippy::too_many_arguments)]
    pub fn forest_sub_select_sharded(
        &self,
        req: &Request,
        catalogs: &[Catalog<'_>],
        set: &TreeSet,
        pattern: &TreePattern,
        cfg: &MatchConfig,
        shards: usize,
        shard_of: impl Fn(usize) -> usize + Sync,
    ) -> Result<Response<Vec<(usize, Tree)>>> {
        let sizes: Vec<usize> = set.members().iter().map(Tree::len).collect();
        let (plan, explain) = catalogs
            .first()
            .map(|c| {
                Optimizer::new(c).plan_forest_sub_select_sharded(
                    pattern,
                    &sizes,
                    self.permits.cap(),
                    shards,
                )
            })
            .unwrap_or_else(|| {
                Err(OptError::CatalogMismatch {
                    members: set.len(),
                    catalogs: 0,
                })
            })
            .map_err(plan_failed)?;
        let degraded_cfg = MatchConfig {
            max_matches: cfg.max_matches.min(self.cfg.degraded_cap),
            ..*cfg
        };
        self.run(
            PlanClass::ForestSubSelect,
            req,
            explain,
            |dispatch, budget, explain| {
                probe(SERVICE_DISPATCH_PROBE, 0)?;
                let grant = self.permits.acquire(plan.degree);
                if grant.granted() < plan.degree {
                    explain.record_service_event(format!(
                        "backpressure: {} of {} planned workers granted",
                        grant.granted(),
                        plan.degree
                    ));
                }
                let shared = match &req.cancel {
                    Some(t) => SharedGuard::with_cancel(budget, t.clone()),
                    None => SharedGuard::new(budget),
                };
                shared.attach_metrics(self.metrics.clone());
                let run_cfg = if dispatch == Dispatch::Degraded {
                    &degraded_cfg
                } else {
                    cfg
                };
                let out = plan
                    .execute_scatter_gather_at(
                        grant.granted(),
                        catalogs,
                        set,
                        run_cfg,
                        shards,
                        &shard_of,
                        Some(&shared),
                        explain,
                    )
                    .map_err(|e| AttemptFail::from_opt(e, shared.snapshot().steps))?;
                let steps = shared.snapshot().steps;
                probe(SERVICE_COMMIT_PROBE, steps)?;
                let trunc = Truncation {
                    truncated: dispatch == Dispatch::Degraded,
                    hit_max_matches: dispatch == Dispatch::Degraded,
                    ..Truncation::default()
                };
                Ok((out, trunc, steps))
            },
        )
    }

    /// Commit a buffered cross-shard transaction through the service
    /// pipeline: admission, the [`PlanClass::CrossShardTxn`] breaker,
    /// and retry-on-transient all apply, and the request's deadline is
    /// propagated into the commit protocol as the gate
    /// [`ShardedStore::commit_gated`] polls at each phase boundary. A
    /// deadline that expires *between prepare and decide* aborts the
    /// transaction cleanly — typed error, nothing applied anywhere,
    /// never a block. Once the commit decision is durable the deadline
    /// is no longer consulted: an acknowledged transaction is never
    /// un-committed.
    ///
    /// A cleanly aborted transaction leaves the store untouched, so a
    /// transient failure (injected fault, gate refusal with deadline
    /// still live) retries the same buffer safely.
    pub fn apply_cross_shard(
        &self,
        req: &Request,
        store: &mut ShardedStore,
        txn: &ShardTxn,
    ) -> Result<Response<TxnReceipt>> {
        let mut explain = Explain::default();
        explain.record_service_event(format!(
            "cross-shard txn: {} records across {} participant(s)",
            txn.len(),
            txn.participants().len()
        ));
        let deadline = req.budget.deadline;
        let cancel = req.cancel.clone();
        self.run(PlanClass::CrossShardTxn, req, explain, |_, _, explain| {
            probe(SERVICE_DISPATCH_PROBE, 0)?;
            // A pre-cancelled request must not burn a prepare round (or
            // retry attempts): refuse before touching the store, with
            // the same Permanent class the query paths report. The gate
            // below still covers cancellation arriving *mid*-commit.
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return Err(AttemptFail {
                    class: ErrorClass::Permanent,
                    message: "cancelled before commit".to_string(),
                    steps: 0,
                    breaker_fault: false,
                    integrity_extent: None,
                });
            }
            let gate = || {
                deadline.is_none_or(|d| !d.expired())
                    && cancel.as_ref().is_none_or(|t| !t.is_cancelled())
            };
            let receipt = store.commit_gated(txn, gate).map_err(|e| match e {
                StoreError::IntegrityMismatch { ref extent, .. } => {
                    AttemptFail::integrity(extent, e.to_string(), 0)
                }
                e => AttemptFail {
                    class: e.class(),
                    message: e.to_string(),
                    steps: 0,
                    breaker_fault: false,
                    integrity_extent: None,
                },
            })?;
            if receipt.fast_path() {
                explain.record_service_event("one-phase fast path (single shard)".to_string());
            }
            probe(SERVICE_COMMIT_PROBE, 0)?;
            Ok((receipt, Truncation::default(), 0))
        })
    }

    /// Change the store's shard count online through the service
    /// pipeline — the admin path for
    /// [`ShardedStore::rebalance`]. Admission, the
    /// [`PlanClass::Rebalance`] breaker, and retry-on-transient all
    /// apply, and the request's deadline/cancel token is propagated as
    /// the gate the migration polls **at every phase boundary**: before
    /// each subtree move, inside each move's 2PC (prepare and
    /// pre-decide), and once more before the final layout commit. An
    /// expired deadline stops the migration cleanly with the stanza
    /// still pinned — a transient, resumable condition — so a retry (or
    /// the next store open) continues from the subtrees already moved
    /// rather than starting over.
    pub fn rebalance(
        &self,
        req: &Request,
        store: &mut ShardedStore,
        to: usize,
    ) -> Result<Response<RebalanceReport>> {
        let mut explain = Explain::default();
        explain.record_service_event(format!(
            "rebalance: {} → {to} shards (layout epoch {})",
            store.shard_count(),
            store.layout_epoch()
        ));
        let deadline = req.budget.deadline;
        let cancel = req.cancel.clone();
        self.run(PlanClass::Rebalance, req, explain, |_, _, explain| {
            probe(SERVICE_DISPATCH_PROBE, 0)?;
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                return Err(AttemptFail {
                    class: ErrorClass::Permanent,
                    message: "cancelled before rebalance began".to_string(),
                    steps: 0,
                    breaker_fault: false,
                    integrity_extent: None,
                });
            }
            let gate = || {
                deadline.is_none_or(|d| !d.expired())
                    && cancel.as_ref().is_none_or(|t| !t.is_cancelled())
            };
            let report = store.rebalance_gated(to, gate).map_err(|e| match e {
                StoreError::IntegrityMismatch { ref extent, .. } => {
                    AttemptFail::integrity(extent, e.to_string(), 0)
                }
                e => AttemptFail {
                    class: e.class(),
                    message: e.to_string(),
                    steps: 0,
                    breaker_fault: false,
                    integrity_extent: None,
                },
            })?;
            explain.record_service_event(report.to_string());
            probe(SERVICE_COMMIT_PROBE, 0)?;
            Ok((report, Truncation::default(), 0))
        })
    }
}

fn plan_failed(e: OptError) -> ServiceError {
    ServiceError::Failed {
        class: classify(&e),
        attempts: 0,
        steps: 0,
        message: e.to_string(),
    }
}
