//! Decorrelated-jitter backoff, seeded and allocation-free.
//!
//! The AWS "decorrelated jitter" recurrence: each delay is drawn
//! uniformly from `[base, prev * 3]` and capped. Randomness comes from an
//! inline SplitMix64 stream seeded per submission, so a fixed seed
//! replays the exact delay sequence — the chaos harness depends on that,
//! and the hot path never touches a clock or a global RNG.

use std::time::Duration;

/// How the service retries transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts (first try included, minimum 1).
    pub max_attempts: usize,
    /// Minimum backoff delay. `Duration::ZERO` disables sleeping
    /// entirely — the deterministic-test configuration.
    pub base: Duration,
    /// Maximum backoff delay.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Start the delay stream for one submission. Mixing `salt` (e.g. a
    /// submission counter) decorrelates concurrent submissions sharing
    /// one policy.
    pub fn backoff(&self, salt: u64) -> Backoff {
        Backoff {
            state: self.seed ^ salt.wrapping_mul(0xff51_afd7_ed55_8ccd),
            prev: self.base,
            base: self.base,
            cap: self.cap,
        }
    }
}

/// One submission's delay stream (see [`RetryPolicy::backoff`]).
#[derive(Debug, Clone)]
pub struct Backoff {
    state: u64,
    prev: Duration,
    base: Duration,
    cap: Duration,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Backoff {
    /// The next delay: uniform in `[base, max(base, prev * 3)]`, capped.
    /// A zero-`base` policy always yields `Duration::ZERO`.
    pub fn next_delay(&mut self) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo);
        let span = hi - lo;
        let draw = if span == 0 {
            lo
        } else {
            lo + splitmix64(&mut self.state) % (span + 1)
        };
        let next = Duration::from_nanos(draw).min(self.cap);
        self.prev = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 42,
        };
        let a: Vec<Duration> = {
            let mut b = policy.backoff(7);
            (0..8).map(|_| b.next_delay()).collect()
        };
        let b: Vec<Duration> = {
            let mut b = policy.backoff(7);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(a, b, "same seed+salt replays exactly");
        assert!(a.iter().all(|d| *d >= policy.base && *d <= policy.cap));
        let c: Vec<Duration> = {
            let mut b = policy.backoff(8);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_ne!(a, c, "different salt decorrelates");
    }

    #[test]
    fn zero_base_never_sleeps() {
        let policy = RetryPolicy {
            base: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut b = policy.backoff(0);
        for _ in 0..10 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }
}
