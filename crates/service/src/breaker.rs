//! Per-plan-class circuit breaker on a rolling outcome window.
//!
//! Closed → trips open once the last `window` full-fidelity executions
//! contain `failure_threshold` transient failures. Open → serves
//! degraded dispatches until `probe_after` submissions have arrived (a
//! *submission-count* clock: no wall time, so tests replay exactly),
//! then half-opens and lets exactly one probe through at full fidelity.
//! Probe success closes the breaker and clears the window; probe failure
//! re-opens it and restarts the clock.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Rolling window length (full-fidelity outcomes tracked).
    pub window: usize,
    /// Transient failures within the window that trip the breaker.
    pub failure_threshold: usize,
    /// Submissions served degraded before half-opening for a probe.
    pub probe_after: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 4,
            probe_after: 4,
        }
    }
}

/// Where the breaker is in its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything runs at full fidelity.
    Closed,
    /// Tripped: submissions are served degraded.
    Open,
    /// One probe is in flight at full fidelity; everyone else degrades.
    HalfOpen,
}

/// How one submission should run, decided at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Full-fidelity execution; outcome feeds the rolling window.
    Full,
    /// Partial/bounded execution behind an open breaker.
    Degraded,
    /// The half-open health probe: full fidelity, outcome decides the
    /// breaker's fate.
    Probe,
}

/// What a result did to the breaker — the service layer turns these into
/// counters and explain events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// Closed → Open.
    Tripped,
    /// HalfOpen → Closed (probe succeeded).
    Recovered,
    /// HalfOpen → Open (probe failed).
    Reopened,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Rolling outcomes of full-fidelity executions; `true` = failure.
    window: VecDeque<bool>,
    failures: usize,
    /// Submissions seen since the breaker opened.
    since_open: u64,
}

/// One plan class's breaker. All methods are lock-per-call and cheap —
/// the window is a few booleans.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg: BreakerConfig {
                window: cfg.window.max(1),
                failure_threshold: cfg.failure_threshold.max(1),
                probe_after: cfg.probe_after.max(1),
            },
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures: 0,
                since_open: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Decide how the next submission runs.
    pub fn on_submission(&self) -> Dispatch {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Dispatch::Full,
            BreakerState::HalfOpen => Dispatch::Degraded,
            BreakerState::Open => {
                inner.since_open += 1;
                if inner.since_open >= self.cfg.probe_after {
                    inner.state = BreakerState::HalfOpen;
                    Dispatch::Probe
                } else {
                    Dispatch::Degraded
                }
            }
        }
    }

    /// Feed a submission's terminal outcome back. `failed` should be
    /// `true` only for failures that indict the backend (transient
    /// faults) — caller-induced budget exhaustion and cancellations pass
    /// `false`-like by never calling this with `Full`.
    pub fn on_result(&self, dispatch: Dispatch, failed: bool) -> Transition {
        let mut inner = self.lock();
        match dispatch {
            Dispatch::Degraded => Transition::None,
            Dispatch::Probe => {
                if failed {
                    inner.state = BreakerState::Open;
                    inner.since_open = 0;
                    Transition::Reopened
                } else {
                    inner.state = BreakerState::Closed;
                    inner.window.clear();
                    inner.failures = 0;
                    inner.since_open = 0;
                    Transition::Recovered
                }
            }
            Dispatch::Full => {
                // A Full outcome landing after the breaker already
                // tripped (a racing submission) must not perturb the
                // open/half-open cycle.
                if inner.state != BreakerState::Closed {
                    return Transition::None;
                }
                if inner.window.len() == self.cfg.window && inner.window.pop_front() == Some(true) {
                    inner.failures -= 1;
                }
                inner.window.push_back(failed);
                if failed {
                    inner.failures += 1;
                }
                if inner.failures >= self.cfg.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.since_open = 0;
                    Transition::Tripped
                } else {
                    Transition::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 2,
            probe_after: 3,
        })
    }

    #[test]
    fn full_cycle_trip_probe_recover() {
        let b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_submission(), Dispatch::Full);
        assert_eq!(b.on_result(Dispatch::Full, true), Transition::None);
        assert_eq!(b.on_result(Dispatch::Full, true), Transition::Tripped);
        assert_eq!(b.state(), BreakerState::Open);
        // Degraded until the submission clock reaches probe_after.
        assert_eq!(b.on_submission(), Dispatch::Degraded);
        assert_eq!(b.on_result(Dispatch::Degraded, true), Transition::None);
        assert_eq!(b.on_submission(), Dispatch::Degraded);
        assert_eq!(b.on_submission(), Dispatch::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent submissions while the probe flies still degrade.
        assert_eq!(b.on_submission(), Dispatch::Degraded);
        assert_eq!(b.on_result(Dispatch::Probe, false), Transition::Recovered);
        assert_eq!(b.state(), BreakerState::Closed);
        // Recovery cleared the window: one failure does not re-trip.
        assert_eq!(b.on_result(Dispatch::Full, true), Transition::None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_clock_restarts() {
        let b = breaker();
        b.on_result(Dispatch::Full, true);
        b.on_result(Dispatch::Full, true);
        b.on_submission();
        b.on_submission();
        assert_eq!(b.on_submission(), Dispatch::Probe);
        assert_eq!(b.on_result(Dispatch::Probe, true), Transition::Reopened);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.on_submission(), Dispatch::Degraded);
        assert_eq!(b.on_submission(), Dispatch::Degraded);
        assert_eq!(b.on_submission(), Dispatch::Probe);
    }

    #[test]
    fn window_rolls_old_failures_out() {
        let b = breaker();
        b.on_result(Dispatch::Full, true);
        for _ in 0..4 {
            assert_eq!(b.on_result(Dispatch::Full, false), Transition::None);
        }
        // The early failure rolled out of the 4-wide window.
        assert_eq!(b.on_result(Dispatch::Full, true), Transition::None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_full_result_cannot_perturb_open_state() {
        let b = breaker();
        b.on_result(Dispatch::Full, true);
        b.on_result(Dispatch::Full, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.on_result(Dispatch::Full, false), Transition::None);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
