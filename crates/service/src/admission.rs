//! Admission control: a bounded submission queue with load shedding and
//! per-tenant concurrency caps.
//!
//! A submission either (a) starts immediately when an execution slot and
//! its tenant's cap allow, (b) queues — bounded in both depth and bytes —
//! until a slot frees or its deadline expires, or (c) is *shed* with a
//! typed [`ServiceError::Rejected`] carrying the queue depth and a
//! back-off hint. Shedding at the front door is what keeps an overloaded
//! service's latency bounded: work that cannot meet its deadline is
//! refused in O(1) instead of timing out after consuming resources.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use aqua_guard::Deadline;

use crate::error::ServiceError;

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Submissions executing concurrently (minimum 1).
    pub max_inflight: usize,
    /// Submissions waiting for a slot before new arrivals are shed.
    pub max_queue_depth: usize,
    /// Total request payload bytes allowed in the queue.
    pub max_queued_bytes: usize,
    /// Concurrent executions per tenant (minimum 1).
    pub max_per_tenant: usize,
    /// Upper bound a queued submission waits for a slot when it has no
    /// deadline of its own.
    pub default_patience: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 8,
            max_queue_depth: 32,
            max_queued_bytes: 1 << 20,
            max_per_tenant: 4,
            default_patience: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    inflight: usize,
    queued: usize,
    queued_bytes: usize,
    per_tenant: HashMap<String, usize>,
}

/// The front door. One per [`QueryService`](crate::QueryService).
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    freed: Condvar,
}

/// RAII execution slot from [`Admission::admit`]; releases on drop and
/// wakes queued submissions.
#[derive(Debug)]
#[must_use = "dropping the permit releases the execution slot"]
pub struct Permit<'a> {
    admission: &'a Admission,
    tenant: String,
}

impl Admission {
    /// A front door with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg: AdmissionConfig {
                max_inflight: cfg.max_inflight.max(1),
                max_per_tenant: cfg.max_per_tenant.max(1),
                ..cfg
            },
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Submissions currently executing.
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Submissions currently queued.
    pub fn queue_depth(&self) -> usize {
        self.lock().queued
    }

    fn runnable(&self, s: &State, tenant: &str) -> bool {
        s.inflight < self.cfg.max_inflight
            && s.per_tenant.get(tenant).copied().unwrap_or(0) < self.cfg.max_per_tenant
    }

    fn reject(&self, s: &State) -> ServiceError {
        // Hint scales with backlog: each queued submission ahead is
        // roughly one execution slot's worth of waiting.
        ServiceError::Rejected {
            queue_depth: s.queued,
            retry_after_hint: Duration::from_millis(1 + s.queued as u64),
        }
    }

    /// Admit a submission of `bytes` payload for `tenant`, queueing up to
    /// the submission's deadline (or the configured patience) for a slot.
    pub fn admit(
        &self,
        tenant: &str,
        bytes: usize,
        deadline: Option<Deadline>,
    ) -> Result<Permit<'_>, ServiceError> {
        let mut s = self.lock();
        if !self.runnable(&s, tenant) {
            // Full queue (by depth or bytes) sheds immediately.
            if s.queued >= self.cfg.max_queue_depth
                || s.queued_bytes.saturating_add(bytes) > self.cfg.max_queued_bytes
            {
                return Err(self.reject(&s));
            }
            s.queued += 1;
            s.queued_bytes += bytes;
            let patience = deadline.map_or(self.cfg.default_patience, |d| d.remaining());
            let gone = std::time::Instant::now() + patience;
            while !self.runnable(&s, tenant) {
                let now = std::time::Instant::now();
                if now >= gone {
                    s.queued -= 1;
                    s.queued_bytes -= bytes;
                    return Err(self.reject(&s));
                }
                let (guard, _timeout) = self
                    .freed
                    .wait_timeout(s, gone - now)
                    .unwrap_or_else(|p| p.into_inner());
                s = guard;
            }
            s.queued -= 1;
            s.queued_bytes -= bytes;
        }
        s.inflight += 1;
        *s.per_tenant.entry(tenant.to_owned()).or_insert(0) += 1;
        Ok(Permit {
            admission: self,
            tenant: tenant.to_owned(),
        })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.admission.lock();
        s.inflight -= 1;
        match s.per_tenant.get_mut(&self.tenant) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                s.per_tenant.remove(&self.tenant);
            }
        }
        drop(s);
        self.admission.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Admission {
        Admission::new(AdmissionConfig {
            max_inflight: 2,
            max_queue_depth: 1,
            max_queued_bytes: 100,
            max_per_tenant: 1,
            default_patience: Duration::from_millis(10),
        })
    }

    #[test]
    fn sheds_when_queue_full() {
        let a = tiny();
        let _p1 = a.admit("alice", 10, None).unwrap();
        let _p2 = a.admit("bob", 10, None).unwrap();
        assert_eq!(a.inflight(), 2);
        // Machine full; a zero-deadline arrival queues then times out.
        let d = Some(Deadline::from_now(Duration::ZERO));
        let err = a.admit("carol", 10, d).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }));
    }

    #[test]
    fn sheds_on_byte_budget() {
        let a = tiny();
        let _p1 = a.admit("alice", 10, None).unwrap();
        let _p2 = a.admit("bob", 10, None).unwrap();
        let err = a.admit("carol", 1000, None).unwrap_err();
        assert!(
            matches!(err, ServiceError::Rejected { .. }),
            "oversized payload cannot even queue"
        );
    }

    #[test]
    fn per_tenant_cap_holds_even_with_free_slots() {
        let a = tiny();
        let _p1 = a.admit("alice", 1, None).unwrap();
        assert_eq!(a.inflight(), 1, "a machine slot remains free");
        let d = Some(Deadline::from_now(Duration::ZERO));
        let err = a.admit("alice", 1, d).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }));
        // A different tenant takes the free slot immediately.
        let _p2 = a.admit("bob", 1, d).unwrap();
    }

    #[test]
    fn queued_submission_runs_when_slot_frees() {
        let a = std::sync::Arc::new(Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue_depth: 4,
            max_queued_bytes: 100,
            max_per_tenant: 1,
            default_patience: Duration::from_secs(10),
        }));
        let p1 = a.admit("alice", 1, None).unwrap();
        let a2 = std::sync::Arc::clone(&a);
        let (tx, rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            let p = a2.admit("bob", 1, None);
            tx.send(p.is_ok()).unwrap();
        });
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "bob waits while alice holds the only slot"
        );
        drop(p1);
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        t.join().unwrap();
        assert_eq!(a.queue_depth(), 0);
    }

    #[test]
    fn rejected_reports_depth_and_hint() {
        let a = tiny();
        let _p1 = a.admit("alice", 1, None).unwrap();
        let _p2 = a.admit("bob", 1, None).unwrap();
        // One queued occupant fills the 1-deep queue...
        let d = Some(Deadline::from_now(Duration::from_millis(200)));
        let a_ref = &a;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _ = a_ref.admit("dave", 1, d);
            });
            while a.queue_depth() == 0 {
                std::thread::yield_now();
            }
            // ...so the next arrival is shed instantly, seeing depth 1.
            match a.admit("erin", 1, None).unwrap_err() {
                ServiceError::Rejected {
                    queue_depth,
                    retry_after_hint,
                } => {
                    assert_eq!(queue_depth, 1);
                    assert!(retry_after_hint >= Duration::from_millis(2));
                }
                other => panic!("expected Rejected, got {other:?}"),
            }
        });
    }
}
