//! Transaction-chaos matrix: kill a cross-shard commit at every phase
//! boundary × shard counts × coordinator-log corruption, and demand
//! all-or-nothing every time.
//!
//! The discipline extends `shard_chaos.rs` to the 2PC tentpole. Each
//! cell populates a [`ShardStorm`] base, buffers one deterministic
//! cross-shard transaction (one extra note per path list), and commits
//! it with a failpoint armed at one phase boundary — prepare (global
//! and per-participant), the decide window, and the outcome phase. The
//! injected fault propagates with no cleanup, exactly like a kill. Some
//! cells then additionally mutilate the coordinator log's newest
//! segment (torn tail, CRC-caught bit flip). After
//! `ShardedStore::open`'s resolution pass the value fingerprint must be
//! **byte-identical to either the pre-transaction or post-transaction
//! reference — never a mix** — and the global root must equal the fold
//! of the per-shard roots. A follow-up transaction must then commit
//! (liveness: resolution leaves no wedged participant).
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); every assertion message
//! echoes the seed so a red CI leg is reproducible from its log alone.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aqua_guard::failpoint;
use aqua_store::{
    fold_shard_roots, participant_probe, DurableConfig, Root, ShardTxn, ShardedConfig,
    ShardedStore, StoreError, TXN_DECIDE_CRASH, TXN_LOG_DIR, TXN_OUTCOME_CRASH, TXN_PREPARE_CRASH,
};
use aqua_workload::ShardStorm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path subtrees the storm populates (spread over the shards).
const PATHS: usize = 6;
/// Base population per path before the transaction.
const TARGET: usize = 20;
/// The shard counts the matrix crosses.
const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// Both tests arm the global phase failpoints; serialize them so one
/// test's armed probe cannot fire inside the other's commit.
static PHASE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-txchaos-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            segment_bytes: 512,
            checkpoint_every: 16,
            prune: true,
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

/// Open + populate the deterministic base state.
fn build_base(dir: &Path, shards: usize, seed: u64) -> (ShardedStore, ShardStorm) {
    let storm = ShardStorm::new(seed ^ 0x7C_17, PATHS);
    let (mut ss, _) = ShardedStore::open(dir, cfg(shards))
        .unwrap_or_else(|e| panic!("seed {seed}: base open at {shards} shards failed: {e}"));
    storm.bootstrap(&mut ss).expect("bootstrap");
    storm.grow(&mut ss, TARGET).expect("grow");
    ss.sync().expect("sync");
    (ss, storm)
}

/// The one deterministic cross-shard transaction every cell attempts:
/// one extra note per path list, values keyed by the path index alone
/// so the committed state is shard-count invariant.
fn buffer_txn(ss: &ShardedStore, storm: &ShardStorm) -> ShardTxn {
    let mut txn = ss.begin();
    for k in 0..storm.paths() {
        let list = storm.list_path(k);
        let class = ss
            .shard(ss.shard_of(&list))
            .store()
            .class_id("Note")
            .expect("bootstrap defined Note");
        let (_, oid) = txn.insert(
            &list,
            class,
            vec![
                aqua_object::Value::str(format!("T{k}")),
                aqua_object::Value::Int(1),
            ],
        );
        txn.list_push(&list, oid);
    }
    txn
}

/// Reference fingerprints: the base state (`fp0`) and the state after
/// the transaction committed cleanly (`fp1`). Values are shard-count
/// invariant, so one single-shard reference serves every cell.
fn reference_fingerprints(seed: u64) -> (String, String) {
    let dir = temp_dir("ref");
    let (mut ss, storm) = build_base(&dir, 1, seed);
    let fp0 = storm.fingerprint(&ss);
    let txn = buffer_txn(&ss, &storm);
    ss.commit(&txn)
        .unwrap_or_else(|e| panic!("seed {seed}: reference commit failed: {e}"));
    let fp1 = storm.fingerprint(&ss);
    assert_ne!(fp0, fp1, "seed {seed}: the transaction must be observable");
    drop(ss);
    std::fs::remove_dir_all(&dir).unwrap();
    (fp0, fp1)
}

/// Coordinator-log corruption styles layered on top of a crash.
#[derive(Clone, Copy, Debug, PartialEq)]
enum LogChaos {
    None,
    TornTail,
    BitFlip,
}

fn txn_log_segments(dir: &Path) -> Vec<PathBuf> {
    let log = dir.join(TXN_LOG_DIR);
    let mut segs: Vec<PathBuf> = match std::fs::read_dir(&log) {
        Ok(rd) => rd
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    segs.sort();
    segs
}

fn corrupt_txn_log(dir: &Path, style: LogChaos, rng: &mut StdRng) {
    let Some(last) = txn_log_segments(dir).into_iter().next_back() else {
        return;
    };
    match style {
        LogChaos::None => {}
        LogChaos::TornTail => {
            let len = std::fs::metadata(&last).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&last)
                .unwrap()
                .set_len(at)
                .unwrap();
        }
        LogChaos::BitFlip => {
            let mut bytes = std::fs::read(&last).unwrap();
            if bytes.is_empty() {
                return;
            }
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
            std::fs::write(&last, bytes).unwrap();
        }
    }
}

/// One cell: crash the commit at `point` (a failpoint name), optionally
/// corrupt the coordinator log, recover, and assert all-or-nothing.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    seed: u64,
    shards: usize,
    label: &str,
    point: &str,
    log_chaos: LogChaos,
    fp0: &str,
    fp1: &str,
    rng: &mut StdRng,
) {
    let dir = temp_dir(&format!("cell{shards}"));
    let (mut ss, storm) = build_base(&dir, shards, seed);
    let txn = buffer_txn(&ss, &storm);

    failpoint::arm_times(point, "chaos kill", 1);
    let outcome = ss.commit(&txn);
    // Single-shard cells take the fast path, which never reaches the
    // phase probes — disarm so nothing leaks into the next cell.
    failpoint::disarm(point);
    match &outcome {
        Ok(receipt) => assert!(
            shards == 1 || receipt.txn_id.is_some(),
            "seed {seed}: {label}@{shards}: multi-shard commit must not take the fast path"
        ),
        Err(e) => assert!(
            matches!(e, StoreError::Injected { .. }),
            "seed {seed}: {label}@{shards}: expected the injected kill, got {e}"
        ),
    }
    drop(ss); // simulated process death: no cleanup runs

    corrupt_txn_log(&dir, log_chaos, rng);

    let (mut back, rep) = ShardedStore::open(&dir, cfg(shards)).unwrap_or_else(|e| {
        panic!("seed {seed}: {label}@{shards} ({log_chaos:?}): recovery must not fail: {e}")
    });
    let fp = storm.fingerprint(&back);
    assert!(
        fp == fp0 || fp == fp1,
        "seed {seed}: {label}@{shards} ({log_chaos:?}): fingerprint is neither the \
         pre-txn nor the post-txn reference — a torn transaction leaked:\n{fp}"
    );
    let per_shard: Vec<Root> = back.shards().iter().map(|s| s.store_root()).collect();
    assert_eq!(
        back.global_root(),
        fold_shard_roots(&per_shard),
        "seed {seed}: {label}@{shards} ({log_chaos:?}): global root is the shard-root fold"
    );
    assert_eq!(
        rep.global_root,
        back.global_root(),
        "seed {seed}: {label}@{shards}: recovery report binds the recovered global root"
    );
    let resolved = rep.txns_committed + rep.txns_aborted;
    assert!(
        rep.txns_resolved_by_presumption <= resolved,
        "seed {seed}: {label}@{shards}: presumption count exceeds resolutions ({rep})"
    );

    // Liveness: whatever the outcome, the next transaction must commit.
    let txn2 = buffer_txn(&back, &storm);
    back.commit(&txn2).unwrap_or_else(|e| {
        panic!("seed {seed}: {label}@{shards} ({log_chaos:?}): follow-up commit wedged: {e}")
    });
    let fp2 = storm.fingerprint(&back);
    assert_ne!(
        fp2, fp,
        "seed {seed}: {label}@{shards}: follow-up transaction was a no-op"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The matrix: every phase boundary × {1,2,4} shards, plus coordinator
/// torn-tail and bit-flip layered on the riskiest windows.
#[test]
fn txn_matrix_is_all_or_nothing() {
    let _serial = PHASE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let seed = chaos_seed();
    let (fp0, fp1) = reference_fingerprints(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37));

    for &shards in SHARD_COUNTS {
        let phases: Vec<(String, String)> = vec![
            ("prepare".into(), TXN_PREPARE_CRASH.to_string()),
            ("prepare-p0".into(), participant_probe(TXN_PREPARE_CRASH, 0)),
            ("prepare-p1".into(), participant_probe(TXN_PREPARE_CRASH, 1)),
            ("decide".into(), TXN_DECIDE_CRASH.to_string()),
            ("outcome".into(), TXN_OUTCOME_CRASH.to_string()),
            ("outcome-p1".into(), participant_probe(TXN_OUTCOME_CRASH, 1)),
        ];
        for (label, point) in &phases {
            run_cell(
                seed,
                shards,
                label,
                point,
                LogChaos::None,
                &fp0,
                &fp1,
                &mut rng,
            );
        }
        // Coordinator-log corruption on the two riskiest windows: after
        // the decision is durable (torn decision must be recovered from
        // participant evidence or presumed abort) and mid-prepare.
        for (label, point, chaos) in [
            ("outcome+torn", TXN_OUTCOME_CRASH, LogChaos::TornTail),
            ("outcome+flip", TXN_OUTCOME_CRASH, LogChaos::BitFlip),
            ("prepare+torn", TXN_PREPARE_CRASH, LogChaos::TornTail),
            ("decide+flip", TXN_DECIDE_CRASH, LogChaos::BitFlip),
        ] {
            run_cell(seed, shards, label, point, chaos, &fp0, &fp1, &mut rng);
        }
    }
}

/// An undecided prepare must not wedge reads or later commits even when
/// the coordinator log is lost *entirely* (the directory removed): the
/// prepare has no decision anywhere, so resolution presumes abort.
#[test]
fn coordinator_log_loss_presumes_abort() {
    let _serial = PHASE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let seed = chaos_seed();
    let dir = temp_dir("logloss");
    let (mut ss, storm) = build_base(&dir, 4, seed);
    let fp0 = storm.fingerprint(&ss);
    let txn = buffer_txn(&ss, &storm);
    failpoint::arm_times(TXN_DECIDE_CRASH, "kill before decision", 1);
    let err = ss.commit(&txn).unwrap_err();
    assert!(
        matches!(err, StoreError::Injected { .. }),
        "seed {seed}: expected the injected kill, got {err}"
    );
    drop(ss);
    std::fs::remove_dir_all(dir.join(TXN_LOG_DIR)).unwrap();

    let (back, rep) = ShardedStore::open(&dir, cfg(4))
        .unwrap_or_else(|e| panic!("seed {seed}: recovery after log loss failed: {e}"));
    assert_eq!(
        storm.fingerprint(&back),
        fp0,
        "seed {seed}: an undecided transaction must roll back"
    );
    assert_eq!(
        rep.txns_resolved_by_presumption, 1,
        "seed {seed}: rollback must be by presumption ({rep})"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
