//! Rebalance-chaos matrix: kill an online shard-count change at every
//! migration phase boundary × layout transitions × log corruption, and
//! demand the store reopens with a byte-identical value fingerprint
//! every time.
//!
//! The discipline extends `txn_chaos.rs` to the PR 10 tentpole. Each
//! cell populates a [`ShardStorm`] base at the transition's source
//! count, starts `rebalance(to)` with a failpoint armed at one phase
//! boundary — the stanza write, a move's prepare (global and
//! per-participant), its decide window, its outcome phase (global and
//! per-participant), the advisory moved frame, the layout commit, and
//! the post-settle cleanup. The injected fault propagates with no
//! cleanup, exactly like a kill. Some cells then additionally mutilate
//! the coordinator log (torn tail, CRC-caught bit flip, wholesale
//! deletion) or the *advisory* migration log, which must never matter.
//! After `ShardedStore::open` resumes the migration, the fingerprint
//! must equal the pre-rebalance reference — subtree moves are
//! value-preserving, so pre- and post-move references are the same
//! bytes — the global root must equal the fold of the per-shard roots,
//! and a follow-up cross-shard transaction must commit (liveness).
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); every assertion message
//! echoes the seed so a red CI leg is reproducible from its log alone.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aqua_guard::failpoint;
use aqua_store::{
    fold_shard_roots, participant_probe, DurableConfig, Root, ShardTxn, ShardedConfig,
    ShardedStore, StoreError, REBALANCE_BEGIN_CRASH, REBALANCE_CLEANUP_CRASH,
    REBALANCE_COMMIT_CRASH, REBALANCE_DECIDE_CRASH, REBALANCE_LOG_DIR, REBALANCE_MOVED_CRASH,
    REBALANCE_OUTCOME_CRASH, REBALANCE_PREPARE_CRASH, TXN_LOG_DIR,
};
use aqua_workload::ShardStorm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path subtrees the storm populates (spread over the shards).
const PATHS: usize = 6;
/// Base population per path before the rebalance.
const TARGET: usize = 12;
/// The layout transitions the matrix crosses: grow from one, grow
/// further, shrink back.
const TRANSITIONS: &[(usize, usize)] = &[(1, 2), (2, 4), (4, 2)];

/// Both tests arm the global phase failpoints; serialize them so one
/// test's armed probe cannot fire inside the other's migration.
static PHASE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-rbchaos-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            segment_bytes: 512,
            checkpoint_every: 16,
            prune: true,
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

/// Open + populate the deterministic base state at `shards` shards.
fn build_base(dir: &Path, shards: usize, seed: u64) -> (ShardedStore, ShardStorm) {
    let storm = ShardStorm::new(seed ^ 0x7C_17, PATHS);
    let (mut ss, _) = ShardedStore::open(dir, cfg(shards))
        .unwrap_or_else(|e| panic!("seed {seed}: base open at {shards} shards failed: {e}"));
    storm.bootstrap(&mut ss).expect("bootstrap");
    storm.grow(&mut ss, TARGET).expect("grow");
    ss.sync().expect("sync");
    (ss, storm)
}

/// The liveness probe every cell runs after recovery: one cross-shard
/// transaction touching every path list must commit and be observable.
fn buffer_txn(ss: &ShardedStore, storm: &ShardStorm) -> ShardTxn {
    let mut txn = ss.begin();
    for k in 0..storm.paths() {
        let list = storm.list_path(k);
        let class = ss
            .shard(ss.shard_of(&list))
            .store()
            .class_id("Note")
            .expect("bootstrap defined Note");
        let (_, oid) = txn.insert(
            &list,
            class,
            vec![
                aqua_object::Value::str(format!("L{k}")),
                aqua_object::Value::Int(1),
            ],
        );
        txn.list_push(&list, oid);
    }
    txn
}

/// Log corruption styles layered on top of a mid-migration crash.
#[derive(Clone, Copy, Debug, PartialEq)]
enum LogChaos {
    None,
    /// Torn tail of the coordinator log's newest segment.
    CoordTorn,
    /// CRC-caught bit flip in the coordinator log's newest segment.
    CoordFlip,
    /// The coordinator log directory removed wholesale.
    CoordLoss,
    /// Torn tail of the *advisory* migration log — must never matter.
    AdvisoryTorn,
    /// Bit flip in the advisory migration log — must never matter.
    AdvisoryFlip,
    /// The advisory migration log removed wholesale — must never matter.
    AdvisoryLoss,
}

fn log_segments(dir: &Path, sub: &str) -> Vec<PathBuf> {
    let log = dir.join(sub);
    let mut segs: Vec<PathBuf> = match std::fs::read_dir(&log) {
        Ok(rd) => rd
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    segs.sort();
    segs
}

fn corrupt_log(dir: &Path, style: LogChaos, rng: &mut StdRng) {
    let (sub, lose) = match style {
        LogChaos::None => return,
        LogChaos::CoordTorn | LogChaos::CoordFlip => (TXN_LOG_DIR, false),
        LogChaos::CoordLoss => (TXN_LOG_DIR, true),
        LogChaos::AdvisoryTorn | LogChaos::AdvisoryFlip => (REBALANCE_LOG_DIR, false),
        LogChaos::AdvisoryLoss => (REBALANCE_LOG_DIR, true),
    };
    if lose {
        let _ = std::fs::remove_dir_all(dir.join(sub));
        return;
    }
    let Some(last) = log_segments(dir, sub).into_iter().next_back() else {
        return;
    };
    match style {
        LogChaos::CoordTorn | LogChaos::AdvisoryTorn => {
            let len = std::fs::metadata(&last).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&last)
                .unwrap()
                .set_len(at)
                .unwrap();
        }
        LogChaos::CoordFlip | LogChaos::AdvisoryFlip => {
            let mut bytes = std::fs::read(&last).unwrap();
            if bytes.is_empty() {
                return;
            }
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
            std::fs::write(&last, bytes).unwrap();
        }
        _ => unreachable!(),
    }
}

/// One cell: crash `rebalance(to)` at `point`, optionally corrupt a
/// log, reopen (which resumes), and assert the value contract.
///
/// `must_fire` pins the cells whose probe sits on the unconditional
/// path (stanza, layout commit, cleanup); per-participant and per-move
/// probes may legitimately never fire when the plan involves neither,
/// in which case the rebalance simply completes.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    seed: u64,
    from: usize,
    to: usize,
    label: &str,
    point: &str,
    must_fire: bool,
    log_chaos: LogChaos,
    rng: &mut StdRng,
) {
    let dir = temp_dir(&format!("cell{from}to{to}"));
    let (mut ss, storm) = build_base(&dir, from, seed);
    let fp0 = storm.fingerprint(&ss);

    failpoint::arm_times(point, "chaos kill", 1);
    let outcome = ss.rebalance(to);
    failpoint::disarm(point);
    match &outcome {
        Ok(rep) => assert!(
            !must_fire,
            "seed {seed}: {label}@{from}→{to}: probe on the unconditional path \
             never fired (rebalance returned {rep})"
        ),
        Err(e) => assert!(
            matches!(e, StoreError::Injected { .. }),
            "seed {seed}: {label}@{from}→{to}: expected the injected kill, got {e}"
        ),
    }
    drop(ss); // simulated process death: no cleanup runs

    corrupt_log(&dir, log_chaos, rng);

    // Reopen without pinning a count: the opener must accept whatever
    // layout state the crash left — settled old, mid-migration, or
    // settled new — and resume to a settled store before serving.
    let (mut back, rep) = ShardedStore::open(&dir, cfg(0)).unwrap_or_else(|e| {
        panic!("seed {seed}: {label}@{from}→{to} ({log_chaos:?}): recovery must not fail: {e}")
    });
    let fp = storm.fingerprint(&back);
    assert_eq!(
        fp, fp0,
        "seed {seed}: {label}@{from}→{to} ({log_chaos:?}): subtree moves are \
         value-preserving — the fingerprint must be byte-identical to the reference"
    );
    let crashed_before_stanza = label == "begin" && outcome.is_err();
    let (want_shards, want_epoch) = if crashed_before_stanza {
        (from, 1)
    } else {
        (to, 2)
    };
    assert_eq!(
        (back.shard_count(), back.layout_epoch()),
        (want_shards, want_epoch),
        "seed {seed}: {label}@{from}→{to} ({log_chaos:?}): reopen must settle the layout"
    );
    assert_eq!(
        rep.layout_epoch, want_epoch,
        "seed {seed}: {label}@{from}→{to}: report carries the settled epoch ({rep})"
    );
    let per_shard: Vec<Root> = back.shards().iter().map(|s| s.store_root()).collect();
    assert_eq!(
        back.global_root(),
        fold_shard_roots(&per_shard),
        "seed {seed}: {label}@{from}→{to} ({log_chaos:?}): global root is the shard-root fold"
    );
    assert_eq!(
        rep.global_root,
        back.global_root(),
        "seed {seed}: {label}@{from}→{to}: recovery report binds the recovered global root"
    );

    // Liveness: the settled store must take a cross-shard transaction.
    let txn = buffer_txn(&back, &storm);
    back.commit(&txn).unwrap_or_else(|e| {
        panic!("seed {seed}: {label}@{from}→{to} ({log_chaos:?}): follow-up commit wedged: {e}")
    });
    assert_ne!(
        storm.fingerprint(&back),
        fp,
        "seed {seed}: {label}@{from}→{to}: follow-up transaction was a no-op"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The matrix: every phase boundary × {1→2, 2→4, 4→2}, plus coordinator
/// and advisory-log corruption layered on the riskiest windows.
#[test]
fn rebalance_matrix_preserves_the_fingerprint() {
    let _serial = PHASE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let seed = chaos_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA11A));

    for &(from, to) in TRANSITIONS {
        let phases: Vec<(String, String, bool)> = vec![
            ("begin".into(), REBALANCE_BEGIN_CRASH.to_string(), true),
            ("prepare".into(), REBALANCE_PREPARE_CRASH.to_string(), false),
            (
                "prepare-p0".into(),
                participant_probe(REBALANCE_PREPARE_CRASH, 0),
                false,
            ),
            (
                "prepare-p1".into(),
                participant_probe(REBALANCE_PREPARE_CRASH, 1),
                false,
            ),
            ("decide".into(), REBALANCE_DECIDE_CRASH.to_string(), false),
            ("outcome".into(), REBALANCE_OUTCOME_CRASH.to_string(), false),
            (
                "outcome-p1".into(),
                participant_probe(REBALANCE_OUTCOME_CRASH, 1),
                false,
            ),
            ("moved".into(), REBALANCE_MOVED_CRASH.to_string(), false),
            ("commit".into(), REBALANCE_COMMIT_CRASH.to_string(), true),
            ("cleanup".into(), REBALANCE_CLEANUP_CRASH.to_string(), true),
        ];
        for (label, point, must_fire) in &phases {
            run_cell(
                seed,
                from,
                to,
                label,
                point,
                *must_fire,
                LogChaos::None,
                &mut rng,
            );
        }
        // Log corruption on the riskiest windows: a decided move whose
        // outcomes never ran (the decision is the only commit evidence),
        // and the advisory trail at the same boundary (which must be
        // ignorable by construction).
        for (label, point, chaos) in [
            ("outcome+torn", REBALANCE_OUTCOME_CRASH, LogChaos::CoordTorn),
            ("outcome+flip", REBALANCE_OUTCOME_CRASH, LogChaos::CoordFlip),
            ("outcome+loss", REBALANCE_OUTCOME_CRASH, LogChaos::CoordLoss),
            ("decide+torn", REBALANCE_DECIDE_CRASH, LogChaos::CoordTorn),
            (
                "moved+adv-torn",
                REBALANCE_MOVED_CRASH,
                LogChaos::AdvisoryTorn,
            ),
            (
                "moved+adv-flip",
                REBALANCE_MOVED_CRASH,
                LogChaos::AdvisoryFlip,
            ),
            (
                "moved+adv-loss",
                REBALANCE_MOVED_CRASH,
                LogChaos::AdvisoryLoss,
            ),
        ] {
            run_cell(seed, from, to, label, point, false, chaos, &mut rng);
        }
    }
}

/// A completed rebalance supersedes the old layout epoch: an opener
/// still pinned to it is refused with a typed [`StoreError::ShardLayout`]
/// before any recovery work, while the new epoch (and an unpinned
/// opener) are accepted.
#[test]
fn stale_epoch_opener_is_refused_after_rebalance() {
    let _serial = PHASE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let seed = chaos_seed();
    let dir = temp_dir("stale");
    let (mut ss, storm) = build_base(&dir, 1, seed);
    let fp0 = storm.fingerprint(&ss);
    ss.rebalance(2)
        .unwrap_or_else(|e| panic!("seed {seed}: rebalance failed: {e}"));
    drop(ss);

    let stale = ShardedConfig {
        pin_epoch: Some(1),
        ..cfg(0)
    };
    match ShardedStore::open(&dir, stale) {
        Err(StoreError::ShardLayout { msg, .. }) => assert!(
            msg.contains("epoch"),
            "seed {seed}: refusal must name the epoch: {msg}"
        ),
        other => panic!(
            "seed {seed}: stale-epoch opener must be refused with ShardLayout, got {:?}",
            other.map(|(_, rep)| rep)
        ),
    }

    let pinned = ShardedConfig {
        pin_epoch: Some(2),
        ..cfg(0)
    };
    let (back, _) = ShardedStore::open(&dir, pinned)
        .unwrap_or_else(|e| panic!("seed {seed}: current-epoch opener refused: {e}"));
    assert_eq!(
        storm.fingerprint(&back),
        fp0,
        "seed {seed}: values survive the rebalance"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
