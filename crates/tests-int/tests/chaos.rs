//! Chaos harness for the `aqua-service` front end: a seeded fault storm
//! flips service failpoints on and off while worker threads submit a
//! randomized mix of queries — clean, step-bounded, deadline-bounded,
//! and pre-cancelled — across a thread-count matrix. Invariants:
//!
//! 1. **No panics** — every worker and the storm thread join cleanly.
//! 2. **Exactly one terminal verdict per submission** — each call
//!    returns one `Ok` or one typed `Err`; nothing hangs or vanishes.
//! 3. **Successful full-fidelity responses are identical to the
//!    unfaulted serial run**; degraded responses are its flagged prefix.
//! 4. **The breaker always recovers** once faults clear, within a
//!    bounded number of clean submissions.
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); the CI matrix crosses that
//! with `AQUA_TEST_THREADS`. Set `AQUA_CHAOS_SNAPSHOT=<path>` to dump
//! the merged service `MetricsSnapshot` JSON for artifact upload.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use aqua_guard::{failpoint, Budget, CancelToken, Deadline};
use aqua_object::AttrId;
use aqua_obs::MetricsSnapshot;
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_service::{
    AdmissionConfig, BreakerConfig, BreakerState, PlanClass, QueryService, Request, RetryPolicy,
    ServiceConfig, ServiceError, SERVICE_COMMIT_PROBE, SERVICE_DISPATCH_PROBE,
};
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Submissions per worker thread, per matrix leg.
const PER_WORKER: usize = 40;

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Same sweep contract as `prop_parallel.rs`: `AQUA_TEST_THREADS=<n>`
/// pins the matrix leg; unset sweeps a spread locally.
fn threads() -> Vec<usize> {
    match std::env::var("AQUA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => vec![1, 4],
    }
}

fn service(seed: u64) -> QueryService {
    QueryService::new(ServiceConfig {
        admission: AdmissionConfig {
            max_inflight: 4,
            max_queue_depth: 2,
            max_per_tenant: 2,
            default_patience: Duration::from_secs(10),
            ..AdmissionConfig::default()
        },
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed,
        },
        breaker: BreakerConfig {
            window: 4,
            failure_threshold: 2,
            probe_after: 2,
        },
        degraded_cap: 4,
        ..ServiceConfig::default()
    })
}

#[test]
fn chaos_storm_absorbed() {
    let seed = chaos_seed();

    // Shared dataset and the unfaulted serial expectations.
    let d = RandomTreeGen::new(seed ^ 0xA0A0)
        .nodes(400)
        .label_weights(&[("u", 1), ("x", 12)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();
    let (plan, _) = Optimizer::new(&cat)
        .plan_tree_sub_select(&pattern, d.tree.len())
        .unwrap();
    let expected_trees = plan
        .execute_guarded(&cat, &d.tree, &cfg, None, &mut Explain::default())
        .unwrap();
    assert!(expected_trees.len() > 1, "fixture needs multiple matches");

    let pred = PredExpr::eq("label", "u");
    let (splan, _) = Optimizer::new(&cat).plan_set_select(&pred).unwrap();
    let expected_oids = splan.execute(&cat).unwrap();
    assert!(!expected_oids.is_empty());

    let mut merged = MetricsSnapshot::default();
    for &t in &threads() {
        let svc = service(seed);
        let submissions = AtomicU64::new(0);
        let storm_done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            // The storm: flip service failpoints with seeded arm counts
            // until every worker has finished, then clear them.
            let storm_ref = &storm_done;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5707);
                while !storm_ref.load(Ordering::Acquire) {
                    let point = if rng.gen_bool(0.5) {
                        SERVICE_DISPATCH_PROBE
                    } else {
                        SERVICE_COMMIT_PROBE
                    };
                    failpoint::arm_times(point, "chaos storm", rng.gen_range(1usize..4));
                    if rng.gen_bool(0.3) {
                        failpoint::reset();
                    }
                    std::thread::sleep(Duration::from_micros(rng.gen_range(50u64..500)));
                }
                failpoint::reset();
            });

            let mut workers = Vec::new();
            for w in 0..t {
                let (svc, cat, tree, pattern, cfg, pred) =
                    (&svc, &cat, &d.tree, &pattern, &cfg, &pred);
                let (expected_trees, expected_oids) = (&expected_trees, &expected_oids);
                let submissions = &submissions;
                workers.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ ((w as u64 + 1) * 0x9E37));
                    let tenant = format!("w{w}");
                    let mut verdicts = 0usize;
                    for _ in 0..PER_WORKER {
                        // A randomized envelope: clean, step-bounded,
                        // deadline-bounded, or pre-cancelled.
                        let mut req = Request::new(&tenant);
                        match rng.gen_range(0u32..8) {
                            0 => {
                                req = req.with_budget(
                                    Budget::unlimited().with_steps(rng.gen_range(50u64..50_000)),
                                );
                            }
                            1 => {
                                req = req.with_budget(Budget::unlimited().with_deadline_at(
                                    Deadline::from_now(Duration::from_micros(
                                        rng.gen_range(0u64..300),
                                    )),
                                ));
                            }
                            2 => {
                                let token = CancelToken::new();
                                token.cancel();
                                req = req.with_cancel(token);
                            }
                            _ => {}
                        }
                        submissions.fetch_add(1, Ordering::Relaxed);
                        if rng.gen_bool(0.3) {
                            match svc.set_select(&req, cat, pred) {
                                Ok(resp) => {
                                    verdicts += 1;
                                    if resp.meta.degraded {
                                        let n = resp.value.len();
                                        assert_eq!(
                                            resp.value[..],
                                            expected_oids[..n],
                                            "seed {seed}: degraded select diverges"
                                        );
                                        assert!(
                                            resp.meta.truncation.truncated
                                                || n == expected_oids.len(),
                                            "seed {seed}: unflagged truncation"
                                        );
                                    } else {
                                        assert_eq!(
                                            &resp.value, expected_oids,
                                            "seed {seed}: select answer diverges"
                                        );
                                    }
                                }
                                Err(e) => {
                                    verdicts += 1;
                                    assert_typed(&e);
                                }
                            }
                        } else {
                            match svc.tree_sub_select(&req, cat, tree, pattern, cfg) {
                                Ok(resp) => {
                                    verdicts += 1;
                                    if resp.meta.degraded {
                                        // A degraded answer is the flagged
                                        // prefix of the serial run.
                                        assert!(
                                            resp.value.len() <= expected_trees.len(),
                                            "seed {seed}: degraded answer exceeds serial"
                                        );
                                        for (a, b) in resp.value.iter().zip(expected_trees) {
                                            assert!(
                                                a.structural_eq(b),
                                                "seed {seed}: degraded sub_select diverges"
                                            );
                                        }
                                    } else {
                                        assert_eq!(
                                            resp.value.len(),
                                            expected_trees.len(),
                                            "seed {seed}: sub_select count diverges"
                                        );
                                        for (a, b) in resp.value.iter().zip(expected_trees) {
                                            assert!(
                                                a.structural_eq(b),
                                                "seed {seed}: sub_select answer diverges"
                                            );
                                        }
                                    }
                                }
                                Err(e) => {
                                    verdicts += 1;
                                    assert_typed(&e);
                                }
                            }
                        }
                    }
                    verdicts
                }));
            }

            let mut total_verdicts = 0usize;
            for w in workers {
                total_verdicts += w.join().expect("no worker may panic");
            }
            storm_done.store(true, Ordering::Release);
            // Invariant 2: one terminal verdict per submission.
            assert_eq!(
                total_verdicts,
                t * PER_WORKER,
                "seed {seed}: every submission gets a terminal verdict ({t} threads)"
            );
        });

        // Invariant 4: with failpoints cleared, every breaker recovers
        // to Closed within a bounded number of clean submissions.
        let req = Request::new("recovery");
        for _ in 0..8 {
            if svc.breaker_state(PlanClass::TreeSubSelect) == BreakerState::Closed {
                break;
            }
            submissions.fetch_add(1, Ordering::Relaxed);
            let _ = svc.tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg);
        }
        for _ in 0..8 {
            if svc.breaker_state(PlanClass::SetSelect) == BreakerState::Closed {
                break;
            }
            submissions.fetch_add(1, Ordering::Relaxed);
            let _ = svc.set_select(&req, &cat, &pred);
        }
        assert_eq!(
            svc.breaker_state(PlanClass::TreeSubSelect),
            BreakerState::Closed,
            "seed {seed}: tree breaker must recover after faults clear ({t} threads)"
        );
        assert_eq!(
            svc.breaker_state(PlanClass::SetSelect),
            BreakerState::Closed,
            "seed {seed}: set breaker must recover after faults clear ({t} threads)"
        );
        // A clean submission now serves full fidelity.
        let clean = svc
            .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
            .expect("recovered service serves clean queries");
        submissions.fetch_add(1, Ordering::Relaxed);
        assert!(!clean.meta.degraded);
        assert_eq!(clean.value.len(), expected_trees.len());

        // Every submission was either admitted or shed — none lost.
        let m = svc.metrics_snapshot();
        assert_eq!(
            m.svc_admitted + m.svc_shed,
            submissions.load(Ordering::Relaxed),
            "seed {seed}: admission accounting must cover every submission ({t} threads)"
        );
        merged.merge(&m);
    }

    if let Ok(path) = std::env::var("AQUA_CHAOS_SNAPSHOT") {
        if !path.is_empty() {
            std::fs::write(&path, merged.to_json()).expect("write chaos snapshot");
        }
    }
}

/// Errors escaping the service are always typed service errors — the
/// storm must never surface a panic or an unclassified failure.
fn assert_typed(e: &ServiceError) {
    match e {
        ServiceError::Rejected { .. } => {}
        ServiceError::Failed { message, .. } => {
            assert!(!message.is_empty(), "failure carries its cause");
        }
        ServiceError::Integrity { extent, detail } => {
            // The storm never requests verification, so this arm should
            // be unreachable — but if it ever fires, the evidence must
            // be present.
            assert!(
                !extent.is_empty() && !detail.is_empty(),
                "integrity error names its extent and cause"
            );
        }
    }
}
