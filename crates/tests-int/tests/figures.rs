//! Experiments F1–F7: executable reproductions of every figure and
//! worked example in the paper (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! The paper has no performance tables; its five figures and two §5/§6
//! walkthroughs are the checkable artifacts. Each test reconstructs the
//! input, runs the paper's query, and asserts the paper's result.

use aqua_algebra::tree::{concat, display, ops, split};
use aqua_algebra::{list, List, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, ClassId, ObjectStore, Oid, Value};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::{CcLabel, ListPattern, PredExpr};
use aqua_workload::{FamilyGen, ParseTreeGen, SongGen};

/// Label-attributed fixture shared by the figure tests.
struct Fx {
    store: ObjectStore,
    class: ClassId,
}

impl Fx {
    fn new() -> Self {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        Fx { store, class }
    }

    fn obj(&mut self, label: &str) -> Oid {
        self.store
            .insert_named("N", &[("label", Value::str(label))])
            .unwrap()
    }

    /// Build a tree from a preorder spec (single-char labels; `@x` = hole).
    fn tree(&mut self, spec: &str) -> Tree {
        let chars: Vec<char> = spec.chars().filter(|c| !c.is_whitespace()).collect();
        let mut b = TreeBuilder::new();
        let mut pos = 0;
        let root = self.parse(&chars, &mut pos, &mut b);
        b.finish(root).unwrap()
    }

    fn parse(
        &mut self,
        chars: &[char],
        pos: &mut usize,
        b: &mut TreeBuilder,
    ) -> aqua_algebra::NodeId {
        let c = chars[*pos];
        *pos += 1;
        if c == '@' {
            let l = chars[*pos];
            *pos += 1;
            return b.hole_node(CcLabel::new(l.to_string()), vec![]);
        }
        let mut kids = Vec::new();
        if *pos < chars.len() && chars[*pos] == '(' {
            *pos += 1;
            while chars[*pos] != ')' {
                let k = self.parse(chars, pos, b);
                kids.push(k);
            }
            *pos += 1;
        }
        let oid = self.obj(&c.to_string());
        b.node(oid, kids)
    }

    fn render(&self, t: &Tree) -> String {
        display::render(t, &|oid| match self.store.attr(oid, AttrId(0)) {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
    }

    fn env(&self) -> PredEnv {
        PredEnv::with_default_attr("label")
    }
}

/// F1 — Figure 1: `a(b(d(f g) e) c)` as the concatenation
/// `[[a(α1 α2) ∘_α1 b(d(f g) e)]] ∘_α2 c`, both on instances (concat of
/// trees with labeled NULLs) and as a pattern (compiled by substitution
/// and matched against the assembled tree).
#[test]
fn f1_concatenation_points() {
    let mut fx = Fx::new();
    // Instance-level concatenation.
    let base = fx.tree("a(@1 @2)");
    let b = fx.tree("b(d(f g) e)");
    let c = fx.tree("c");
    let assembled = concat::concat_at(
        &concat::concat_at(&base, &CcLabel::new("1"), &b),
        &CcLabel::new("2"),
        &c,
    );
    assert_eq!(fx.render(&assembled), "a(b(d(f g) e) c)");

    // Pattern-level concatenation: the same expression as a pattern
    // matches exactly the assembled tree, at the root.
    let tp = parse_tree_pattern("[[a(@1 @2) .@1 b(d(f g) e)]] .@2 c", &fx.env())
        .unwrap()
        .compile(fx.class, fx.store.class(fx.class))
        .unwrap();
    let ms = ops::sub_select(&fx.store, &assembled, &tp, &MatchConfig::default()).unwrap();
    assert_eq!(ms.len(), 1);
    assert_eq!(fx.render(&ms[0]), "a(b(d(f g) e) c)");
    // And it does not match the direct pattern's non-instances.
    let other = fx.tree("a(b(d(f) e) c)");
    assert!(
        ops::sub_select(&fx.store, &other, &tp, &MatchConfig::default())
            .unwrap()
            .is_empty()
    );
}

/// F2 — Figure 2: the first four members of `L([[a(b c α)]]^{*α})` are
/// the self-concatenation chains of depth 1–4, and nothing else of that
/// shape family is.
#[test]
fn f2_self_concatenation_language() {
    let mut fx = Fx::new();
    let cp = parse_tree_pattern("[[a(b c @x)]]*@x", &fx.env())
        .unwrap()
        .compile(fx.class, fx.store.class(fx.class))
        .unwrap();
    let members = [
        "a(b c)",
        "a(b c a(b c))",
        "a(b c a(b c a(b c)))",
        "a(b c a(b c a(b c a(b c))))",
    ];
    for m in members {
        let t = fx.tree(m);
        let mut matcher = aqua_pattern::tree_match::TreeMatcher::new(&cp, &t, &fx.store);
        assert!(
            matcher.matches_at(aqua_pattern::tree_match::TreeAccess::root(&t)),
            "{m}"
        );
    }
    for bad in ["a(b)", "a(b c d)", "a(c b)", "b(b c)", "a(b c a(b))"] {
        let t = fx.tree(bad);
        let mut matcher = aqua_pattern::tree_match::TreeMatcher::new(&cp, &t, &fx.store);
        assert!(
            !matcher.matches_at(aqua_pattern::tree_match::TreeAccess::root(&t)),
            "{bad}"
        );
    }
}

/// F3 — Figure 3: the family tree builds and `select` produces the
/// stable forest §4 describes (ancestry compressed to nearest
/// satisfying ancestor, one tree per maximal satisfying root).
#[test]
fn f3_family_tree_select() {
    let d = FamilyGen::paper_tree();
    let brazil = PredExpr::eq("citizen", "Brazil")
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let forest = ops::select(&d.store, &d.tree, &brazil);
    // Ana(Brazil) is the root and satisfies: single tree Ana(Mat(Lia)).
    assert_eq!(forest.len(), 1);
    let names: Vec<String> = forest[0]
        .iter_preorder()
        .map(|n| {
            let oid = forest[0].oid(n).unwrap();
            match d.store.attr(oid, AttrId(0)) {
                Value::Str(s) => s.clone(),
                _ => unreachable!(),
            }
        })
        .collect();
    assert_eq!(names, vec!["Ana", "Mat", "Lia"]);

    // USA query: roots are maximal American descendants.
    let usa = PredExpr::eq("citizen", "USA")
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let forest = ops::select(&d.store, &d.tree, &usa);
    // Joe, Ed(Tim Ann), Sue — in document order.
    assert_eq!(forest.len(), 3);
    assert_eq!(forest[1].len(), 3);
}

/// F4 — Figure 4: `split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T)`
/// produces, per match, the ancestors-with-context, the match with
/// concatenation points where pieces were cut, and the descendants —
/// with `α_1` a `!?*`-pruned subtree and `α_2` a descendant of the
/// match, exactly as the figure annotates. Reassembly is exact.
#[test]
fn f4_split_three_pieces() {
    let d = FamilyGen::paper_tree();
    let mut env = PredEnv::new();
    env.define("Brazil", PredExpr::eq("citizen", "Brazil"));
    env.define("USA", PredExpr::eq("citizen", "USA"));
    let cp = parse_tree_pattern("Brazil(!?* USA !?*)", &env)
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let results = split::split(&d.store, &d.tree, &cp, &MatchConfig::default(), |p| {
        (
            p.context.clone(),
            p.matched.clone(),
            p.descendants.clone(),
            p.reassemble(),
        )
    })
    .unwrap();
    assert_eq!(results.len(), 3);
    for (x, y, z, roundtrip) in &results {
        // x has exactly one hole (α) where the match was cut out.
        assert_eq!(x.hole_labels().len(), 1);
        // y is Brazil(... USA ...) with one hole per descendant piece.
        assert_eq!(y.hole_labels().len(), z.len());
        // The pieces reassemble to the original tree.
        assert!(roundtrip.structural_eq(&d.tree));
    }
    // The Mat match mirrors the figure: Lia pruned (α1-style), Ed's
    // children cut as descendants (α2-style), Raj pruned (α3-style).
    let mat_match = &results[1].1;
    let name_of = |t: &Tree, n: aqua_algebra::NodeId| -> String {
        t.oid(n)
            .map(|o| match d.store.attr(o, AttrId(0)) {
                Value::Str(s) => s.clone(),
                _ => unreachable!(),
            })
            .unwrap_or_else(|| "@".into())
    };
    let kept: Vec<String> = mat_match
        .iter_preorder()
        .filter(|&n| mat_match.oid(n).is_some())
        .map(|n| name_of(mat_match, n))
        .collect();
    assert_eq!(kept, vec!["Mat", "Ed"]);
    assert_eq!(results[1].2.len(), 4); // Lia-subtree, Tim, Ann, Raj
}

/// F5 — §5: rewrite `select(R, and(p1, p2))` into
/// `select(select(R, p1), p2)` using `split(select(!? and), f)` and
/// reassembly — the parse-tree optimization the paper sketches.
#[test]
fn f5_parse_tree_rewrite() {
    let d = ParseTreeGen::fig5_tree();
    let env = PredEnv::with_default_attr("op");
    let cp = parse_tree_pattern("select(!? and)", &env)
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let pieces = split::split_pieces(&d.store, &d.tree, &cp, &MatchConfig::default()).unwrap();
    assert_eq!(pieces.len(), 1);
    let p = &pieces[0];
    // z = [R, p1, p2] in document order.
    assert_eq!(p.descendants.len(), 3);

    // Build the replacement y' = select(select(@1, p2-copy?) …) — the
    // paper's f builds select(select(R, p1), p2) with the z pieces
    // reattached through the concatenation points. We need two fresh
    // `select` nodes and reuse the three cut labels for R, p1, p2.
    let mut store = d.store.clone();
    let sel_inner = store
        .insert_named("PTNode", &[("op", Value::str("select"))])
        .unwrap();
    let sel_outer = store
        .insert_named("PTNode", &[("op", Value::str("select"))])
        .unwrap();
    let (l_r, l_p1, l_p2) = (
        p.cut_labels[0].clone(),
        p.cut_labels[1].clone(),
        p.cut_labels[2].clone(),
    );
    let mut b = TreeBuilder::new();
    let h_r = b.hole_node(l_r, vec![]);
    let h_p1 = b.hole_node(l_p1, vec![]);
    let inner = b.node(sel_inner, vec![h_r, h_p1]);
    let h_p2 = b.hole_node(l_p2, vec![]);
    let outer = b.node(sel_outer, vec![inner, h_p2]);
    let replacement = b.finish(outer).unwrap();

    let rewritten = p.reassemble_with(&replacement);
    let render = display::render(&rewritten, &|oid| match store.attr(oid, AttrId(0)) {
        Value::Str(s) => s.clone(),
        _ => unreachable!(),
    });
    // Original: join(select(R and(p1 p2)) scan)
    // Rewritten: join(select(select(R p1) p2) scan)
    assert_eq!(render, "join(select(select(R p1) p2) scan)");
    // Same node count: 5 site nodes become 5 (select+select+R+p1+p2).
    assert_eq!(rewritten.len(), d.tree.len());
}

/// F6 — §5's variable-arity query:
/// `sub_select(printf(?* LargeData ?* LargeData ?*))(T)` returns the
/// printf nodes referring to LargeData at least twice, with all their
/// parameters.
#[test]
fn f6_printf_variable_arity() {
    let mut fx = Fx::new();
    // p = printf, L = LargeData; three printfs with 2, 1, and 3 refs.
    let t = fx.tree("m(p(x L y L) p(L z) p(L L L))");
    let cp = parse_tree_pattern("p(?* L ?* L ?*)", &fx.env())
        .unwrap()
        .compile(fx.class, fx.store.class(fx.class))
        .unwrap();
    let ms = ops::sub_select(&fx.store, &t, &cp, &MatchConfig::first_per_root()).unwrap();
    assert_eq!(ms.len(), 2);
    assert_eq!(fx.render(&ms[0]), "p(x L y L)");
    assert_eq!(fx.render(&ms[1]), "p(L L L)");
}

/// F7 — §6's music queries: `sub_select([A??F])(L)` finds the melody
/// phrases; `all_anc([A??F], λ(x,y)⟨x,y⟩)(L)` pairs each with its
/// preceding context.
#[test]
fn f7_melody_queries() {
    let d = SongGen::new(42)
        .notes(400)
        .plant(vec!["A", "D", "E", "F"], 3)
        .generate();
    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A ? ? F]", &env).unwrap();
    let pattern = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();

    let phrases = list::ops::sub_select(
        &d.store,
        &d.song,
        &pattern,
        aqua_pattern::list::MatchMode::All,
    );
    // All planted sites found (chance A??F extras allowed).
    assert!(phrases.len() >= 3);
    for ph in &phrases {
        assert_eq!(ph.len(), 4);
        let pitches: Vec<&Value> = ph
            .iter_objects(&d.store)
            .map(|(_, o)| o.get(AttrId(0)))
            .collect();
        assert_eq!(pitches[0], &Value::str("A"));
        assert_eq!(pitches[3], &Value::str("F"));
    }

    let pairs = list::ops::all_anc(
        &d.store,
        &d.song,
        &pattern,
        aqua_pattern::list::MatchMode::All,
        |x, y| (x.len(), y.len(), x.clone()),
    );
    assert_eq!(pairs.len(), phrases.len());
    for ((xlen, ylen, x), m) in pairs.iter().zip(list::ops::find_matches(
        &d.store,
        &d.song,
        &pattern,
        aqua_pattern::list::MatchMode::All,
    )) {
        // Ancestors piece = everything before the match + the α hole.
        assert_eq!(*xlen, m.start + 1);
        assert_eq!(*ylen, 4);
        assert!(x.elems().last().unwrap().hole().is_some());
    }
}

/// The §2 claim that AQUA sets are trees/lists with empty edge sets:
/// `select` on a single-node tree behaves exactly like set `select` on
/// a singleton, and list select on an order-destroyed list equals set
/// select contents.
#[test]
fn set_compatibility() {
    let mut fx = Fx::new();
    let oids: Vec<Oid> = ["u", "v", "u", "w"].iter().map(|l| fx.obj(l)).collect();
    let pred = PredExpr::eq("label", "u")
        .compile(fx.class, fx.store.class(fx.class))
        .unwrap();

    // Set select.
    let set: aqua_algebra::setops::AquaSet = oids.iter().copied().collect();
    let set_sel = set.select(&fx.store, &pred);

    // List select over the same elements keeps order; contents agree.
    let l = List::from_oids(oids.iter().copied());
    let list_sel = list::ops::select(&fx.store, &l, &pred);
    assert_eq!(list_sel.oids(), set_sel.items());

    // Single-node trees: select returns the node iff the predicate holds.
    for &o in &oids {
        let t = Tree::leaf(o);
        let forest = ops::select(&fx.store, &t, &pred);
        let in_set = set_sel.items().contains(&o);
        assert_eq!(forest.len() == 1, in_set);
    }
}
