//! Property suite: the list ↔ list-like-tree embedding (paper §6).
//!
//! "We can view a list as a tree in which each tree-node has at most
//! one child. As a result, list operators translate to the
//! corresponding tree operators applied to list-like trees." These
//! properties run both sides and compare:
//!
//! * `embed ∘ project = id` on lists; `project ∘ embed = id` on chains.
//! * list `select` = tree `select` on the embedded chain, re-projected.
//! * list `apply` = tree `apply` on the embedded chain, re-projected.
//! * list `sub_select` for a fixed-length pattern `[p₁ … p_k]` = tree
//!   `sub_select` of the chain pattern `p₁(p₂(…(p_k)))` on the embedded
//!   tree (the §6 notation translation).

use aqua_algebra::list::{embed, ops as lops};
use aqua_algebra::tree::ops as tops;
use aqua_object::{AttrId, Oid, Value};
use aqua_pattern::ast::Re;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::tree_ast::{TreePat, TreePattern};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_workload::SongGen;
use proptest::prelude::*;

/// Translate a fixed-length list pattern (sequence of node tests) to
/// the §6 chain tree pattern `p₁(p₂(…))` — each node has exactly one
/// child except the last, which is a pattern leaf (whose frontier cut
/// corresponds to the rest of the list).
fn chain_pattern(tests: &[Option<&str>]) -> TreePat {
    let mk = |t: &Option<&str>| t.as_ref().map(|p| PredExpr::eq("pitch", *p));
    let mut iter = tests.iter().rev();
    let last = iter.next().expect("non-empty pattern");
    let mut pat = match mk(last) {
        None => TreePat::any(),
        Some(p) => TreePat::pred(p),
    };
    for t in iter {
        pat = match mk(t) {
            None => TreePat::any_node(Re::Leaf(pat)),
            Some(p) => TreePat::pred_node(p, Re::Leaf(pat)),
        };
    }
    pat
}

fn list_pattern(tests: &[Option<&str>]) -> Re<Sym> {
    let mut re: Option<Re<Sym>> = None;
    for t in tests {
        let item = match t {
            None => Sym::any(),
            Some(p) => Sym::pred(PredExpr::eq("pitch", *p)),
        };
        re = Some(match re {
            None => item,
            Some(r) => r.then(item),
        });
    }
    re.expect("non-empty pattern")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Round trip through the embedding.
    #[test]
    fn embed_project_roundtrip(seed in 0u64..5000, notes in 1usize..100) {
        let d = SongGen::new(seed).notes(notes).generate();
        let t = embed::to_tree(&d.song).unwrap();
        prop_assert_eq!(t.len(), d.song.len());
        let back = embed::from_tree(&t).unwrap();
        prop_assert_eq!(back, d.song);
    }

    /// select commutes with the embedding.
    #[test]
    fn select_commutes(seed in 0u64..5000, notes in 1usize..100) {
        let d = SongGen::new(seed).notes(notes).generate();
        let pred = PredExpr::eq("pitch", "A")
            .compile(d.class, d.store.class(d.class)).unwrap();
        let list_side = lops::select(&d.store, &d.song, &pred);

        let t = embed::to_tree(&d.song).unwrap();
        let forest = tops::select(&d.store, &t, &pred);
        // The forest of a chain is itself a sequence of chains; their
        // concatenated preorder OIDs equal the filtered list.
        let tree_side: Vec<Oid> = forest.iter()
            .flat_map(|f| f.iter_preorder().filter_map(|n| f.oid(n)).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(list_side.oids(), tree_side);
    }

    /// apply commutes with the embedding.
    #[test]
    fn apply_commutes(seed in 0u64..5000, notes in 1usize..100) {
        let mut d = SongGen::new(seed).notes(notes).generate();
        // One target object to map everything onto.
        let target = d.store
            .insert_named("Note", &[("pitch", Value::str("Z")), ("duration", Value::Int(1))])
            .unwrap();
        let list_side = lops::apply(&d.song, |_| target);
        let t = embed::to_tree(&d.song).unwrap();
        let tree_side = embed::from_tree(&tops::apply(&t, |_| target)).unwrap();
        prop_assert_eq!(list_side, tree_side);
    }

    /// Fixed-length sub_select agrees through the §6 pattern translation.
    #[test]
    fn sub_select_commutes_for_fixed_patterns(
        seed in 0u64..5000,
        notes in 3usize..80,
        shape in prop::collection::vec(prop::option::of("[A-C]"), 1..4),
    ) {
        let d = SongGen::new(seed).notes(notes).generate();
        let tests: Vec<Option<&str>> = shape.iter().map(|o| o.as_deref()).collect();

        // List side.
        let lp = ListPattern::compile(
            list_pattern(&tests), false, false, d.class, d.store.class(d.class),
        ).unwrap();
        let list_matches: Vec<Vec<Oid>> = lops::sub_select(&d.store, &d.song, &lp, MatchMode::All)
            .iter().map(|l| l.oids()).collect();

        // Tree side: chain pattern over the embedded chain.
        let tp = TreePattern::new(chain_pattern(&tests))
            .compile(d.class, d.store.class(d.class)).unwrap();
        let t = embed::to_tree(&d.song).unwrap();
        let tree_matches: Vec<Vec<Oid>> = tops::sub_select(&d.store, &t, &tp, &MatchConfig::default())
            .unwrap()
            .iter()
            .map(|m| m.iter_preorder().filter_map(|n| m.oid(n)).collect())
            .collect();

        prop_assert_eq!(list_matches, tree_matches);
    }

    /// The pitch content survives the embedding (sanity on payloads).
    #[test]
    fn payloads_survive(seed in 0u64..5000, notes in 1usize..60) {
        let d = SongGen::new(seed).notes(notes).generate();
        let t = embed::to_tree(&d.song).unwrap();
        let list_pitches: Vec<Value> = d.song.iter_objects(&d.store)
            .map(|(_, o)| o.get(AttrId(0)).clone()).collect();
        let tree_pitches: Vec<Value> = t.iter_preorder()
            .filter_map(|n| t.oid(n))
            .map(|o| d.store.deref(o).get(AttrId(0)).clone())
            .collect();
        prop_assert_eq!(list_pitches, tree_pitches);
    }
}
