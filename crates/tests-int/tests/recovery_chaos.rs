//! Kill-and-recover chaos harness for the durable store: seeded
//! mutation storms are interrupted at random WAL byte offsets (torn
//! tails, bit flips, whole-segment loss, and CRC-fixed root tampering)
//! and recovered. Invariants:
//!
//! 1. **No panics** — every crash style recovers through the typed
//!    [`RecoveryReport`] path; damage is survived or *detected*, never
//!    thrown.
//! 2. **Self-verification** — there is no never-crashed reference run.
//!    The recovered store proves itself from the data alone: every
//!    replayed WAL frame's bound merkle root must match the recomputed
//!    history (else `open` refuses with a typed `IntegrityMismatch`),
//!    and recomputing each extent's root from the final recovered
//!    state must agree with the incrementally tracked roots the report
//!    certifies. Every injected corruption is either repaired (torn
//!    tails truncate to the last verified frame) or detected (tampered
//!    bytes that survive the CRC are caught by the root chain) — never
//!    silently served.
//! 3. **Index-vs-scan parity** — after every recovery the rebuilt
//!    indexes answer exactly like bare scans, at the recovered epoch.
//! 4. **The store keeps working** — post-recovery mutations continue
//!    the same deterministic storm, and a second crash/recover cycle
//!    holds the same invariants.
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); the CI matrix crosses that
//! with `AQUA_TEST_THREADS` (legs run concurrently). Set
//! `AQUA_CHAOS_SNAPSHOT=<path>` to dump the merged recovery reports and
//! service metrics JSON for artifact upload.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aqua_algebra::{NodeId, Tree};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_service::QueryService;
use aqua_store::{ColumnStats, DurableConfig, DurableStore, RecoveryReport};
use aqua_workload::storm::{MutationStorm, BOOT_OPS, STORM_LIST, STORM_TREE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Storm ops applied before the first crash of each leg.
const STORM_OPS: u64 = BOOT_OPS + 120;
/// Storm ops applied between crash rounds.
const EXTRA_OPS: u64 = 60;
/// Crash/recover rounds per leg.
const ROUNDS: usize = 3;

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Same sweep contract as `chaos.rs`: `AQUA_TEST_THREADS=<n>` pins the
/// matrix leg; unset sweeps a spread locally.
fn threads() -> Vec<usize> {
    match std::env::var("AQUA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => vec![1, 4],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-rchaos-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Canonical rendering of one tree (preorder, by payload OID) — the
/// byte-comparable answer format.
fn render_tree(t: &Tree, node: NodeId, out: &mut String) {
    match t.oid(node) {
        Some(o) => {
            let _ = write!(out, "{}", o.0);
        }
        None => out.push('_'),
    }
    if !t.children(node).is_empty() {
        out.push('(');
        for &c in t.children(node) {
            render_tree(t, c, out);
            out.push(' ');
        }
        out.push(')');
    }
}

/// Run every tier-1 query against `ds` and render the answers into one
/// canonical byte string. `indexed` routes the probes through the
/// recovery-rebuilt indexes (at the recovered epoch); otherwise the
/// catalog is bare and every plan is a scan.
fn fingerprint(ds: &DurableStore, indexed: bool) -> String {
    let store = ds.store();
    let mut out = String::new();
    let class = match store.class_id("Note") {
        Ok(c) => c,
        Err(_) => return "pristine".to_owned(),
    };
    let stats = ColumnStats::build(store, class, AttrId(0));
    let mut cat = Catalog::new(store, class);
    cat.add_stats(&stats);
    if indexed {
        cat.set_epoch(ds.epoch());
        let idx = ds.indexes();
        if let Some(i) = idx.attr_index(class, AttrId(0)) {
            cat.add_attr_index(i);
        }
        if let Some(i) = idx.tree_index(STORM_TREE) {
            cat.add_tree_index(i);
        }
        if let Some(i) = idx.list_index(STORM_LIST) {
            cat.add_list_index(i);
        }
        if let Some(i) = idx.structural_index(STORM_TREE) {
            cat.add_structural_index(i);
        }
    }
    let opt = Optimizer::new(&cat);
    let env = PredEnv::with_default_attr("pitch");

    // Tier-1 `select` over the class extent.
    let pred = PredExpr::eq("pitch", "E");
    let (plan, _) = opt.plan_set_select(&pred).expect("plan select");
    let _ = writeln!(out, "select:{:?}", plan.execute(&cat).expect("select"));

    // Tier-1 `sub_select` and `split` over the storm tree.
    if let Some(tree) = ds.tree(STORM_TREE) {
        let pattern = parse_tree_pattern("E(?*)", &env).unwrap();
        let (tplan, _) = opt
            .plan_tree_sub_select(&pattern, tree.len())
            .expect("plan tree sub_select");
        let cfg = MatchConfig::default();
        out.push_str("sub_select:");
        for m in tplan.execute(&cat, tree, &cfg).expect("tree sub_select") {
            render_tree(&m, m.root(), &mut out);
            out.push(';');
        }
        out.push('\n');
        let cfg = MatchConfig::first_per_root();
        out.push_str("split:");
        for p in tplan.execute_split(&cat, tree, &cfg).expect("tree split") {
            render_tree(&p.matched, p.matched.root(), &mut out);
            out.push('~');
            let whole = p.reassemble();
            render_tree(&whole, whole.root(), &mut out);
            out.push(';');
        }
        out.push('\n');
    }

    // Tier-1 `sub_select` over the storm list.
    if let Some(list) = ds.list(STORM_LIST) {
        let (re, s, e) = parse_list_pattern("[E ? G]", &env).unwrap();
        let (lplan, _) = opt
            .plan_list_sub_select(&re, s, e, list.len())
            .expect("plan list sub_select");
        let _ = writeln!(
            out,
            "list:{:?}",
            lplan.execute(&cat, list).expect("list sub_select")
        );
    }
    out
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

/// What [`crash`] did to the directory.
struct Crash {
    /// Diagnostic label for assertion messages.
    style: &'static str,
    /// The mutilated segment, for the operator-repair paths.
    victim: Option<PathBuf>,
    /// Root-tamper only: byte offset of the tampered frame's start in
    /// `victim` — the runbook truncation point after detection.
    repair_at: Option<u64>,
    /// Root-tamper only: the tampered frame's LSN.
    tampered_lsn: Option<u64>,
}

impl Crash {
    fn plain(style: &'static str, victim: Option<PathBuf>) -> Crash {
        Crash {
            style,
            victim,
            repair_at: None,
            tampered_lsn: None,
        }
    }
}

/// Complete `[len][crc][payload]` frames of one segment, as
/// `(start, end)` byte ranges.
fn segment_frames(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        frames.push((pos, end));
        pos = end;
    }
    frames
}

/// Crash the store directory: mutilate the WAL like a power cut (or a
/// silent-corruption fault the CRC cannot see) would.
fn crash(dir: &Path, rng: &mut StdRng) -> Crash {
    let segs = wal_segments(dir);
    let Some(last) = segs.last() else {
        return Crash::plain("no-wal", None);
    };
    match rng.gen_range(0u32..4) {
        0 => {
            // Torn tail: truncate the newest segment mid-byte.
            let len = std::fs::metadata(last).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(last)
                .unwrap()
                .set_len(at)
                .unwrap();
            Crash::plain("torn-tail", Some(last.clone()))
        }
        1 => {
            // Bit flip somewhere in the newest segment: always caught
            // by the frame CRC, repaired by tail truncation.
            let mut bytes = std::fs::read(last).unwrap();
            if bytes.is_empty() {
                return Crash::plain("empty-seg", None);
            }
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
            std::fs::write(last, bytes).unwrap();
            Crash::plain("bit-flip", Some(last.clone()))
        }
        2 => {
            // Mid-history truncation: tear a random segment; recovery
            // truncates there and drops every later segment — unless
            // the cut lands exactly on a frame boundary, in which case
            // the gap is indistinguishable from lost committed data
            // and recovery must *refuse* with a typed Replay error.
            let victim = &segs[rng.gen_range(0..segs.len())];
            let len = std::fs::metadata(victim).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(victim)
                .unwrap()
                .set_len(at)
                .unwrap();
            Crash::plain("mid-history", Some(victim.clone()))
        }
        _ => {
            // Root tamper: flip one bit in a frame's *bound root* and
            // fix the CRC — the corruption a checksum cannot see. Only
            // the merkle chain (frame root vs recomputed history) can
            // catch this; recovery must refuse with IntegrityMismatch
            // unless a snapshot already covers the frame.
            let victim = segs[rng.gen_range(0..segs.len())].clone();
            let mut bytes = std::fs::read(&victim).unwrap();
            // An authenticated payload is lsn(8) + record(≥1) + root(32).
            let frames: Vec<(usize, usize)> = segment_frames(&bytes)
                .into_iter()
                .filter(|(s, e)| e - s >= 8 + 41)
                .collect();
            let Some(&(start, end)) = frames
                .get(rng.gen_range(0..frames.len().max(1)))
                .or(frames.first())
            else {
                return Crash::plain("no-frames", None);
            };
            let lsn = u64::from_le_bytes(bytes[start + 8..start + 16].try_into().unwrap());
            bytes[end - 32] ^= 1 << rng.gen_range(0..8u32);
            let crc = aqua_store::crc32(&bytes[start + 8..end]);
            bytes[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
            std::fs::write(&victim, bytes).unwrap();
            Crash {
                style: "root-tamper",
                victim: Some(victim),
                repair_at: Some(start as u64),
                tampered_lsn: Some(lsn),
            }
        }
    }
}

/// One leg: storm → crash → recover → prove the recovered store from
/// its own root hashes (no reference run) → keep storming. Returns
/// every round's report.
fn kill_and_recover_leg(seed: u64, leg: usize) -> Vec<RecoveryReport> {
    let dir = temp_dir(&format!("leg{leg}"));
    let mut rng = StdRng::seed_from_u64(seed ^ ((leg as u64 + 1) * 0xC3A5));
    let storm = MutationStorm::new(seed);
    // Small segments + sometimes-on checkpoints: multiple files for the
    // crash to aim at, and snapshot recovery in the mix.
    let cfg = DurableConfig {
        segment_bytes: 512,
        checkpoint_every: if rng.gen_bool(0.5) { 16 } else { 0 },
        prune: true,
        authenticate: true,
    };

    let (mut ds, rep) = DurableStore::open(&dir, cfg.clone()).expect("fresh open");
    assert!(rep.clean(), "a fresh directory recovers clean");
    let mut applied: u64 = storm.apply(&mut ds, 0..STORM_OPS).expect("storm applies");
    let mut reports = Vec::new();

    for round in 0..ROUNDS {
        drop(ds);
        let c = crash(&dir, &mut rng);
        let style = c.style;

        let (recovered, rep) = match DurableStore::open(&dir, cfg.clone()) {
            Ok(ok) => {
                // A root-tamper may survive open only when a snapshot
                // already covers the tampered frame (it was never
                // replayed) — a *replayed* tampered frame must refuse.
                if style == "root-tamper" {
                    let lsn = c.tampered_lsn.unwrap();
                    let first_replayed = ok.1.next_lsn - ok.1.frames_replayed;
                    assert!(
                        lsn < first_replayed,
                        "seed {seed}: round {round} ({style}): tampered frame lsn {lsn} was \
                         replayed without detection (first replayed {first_replayed})"
                    );
                }
                ok
            }
            Err(aqua_store::StoreError::IntegrityMismatch { subtree, .. })
                if style == "root-tamper" =>
            {
                // Detection is the contract: the CRC was valid, only
                // the root chain could catch this. Model the operator
                // runbook — truncate the log at the tampered frame and
                // drop every later segment, then recovery must succeed
                // on the verified prefix.
                assert!(
                    subtree.starts_with("wal frame lsn"),
                    "seed {seed}: round {round} ({style}): mismatch names the frame, got {subtree:?}"
                );
                let victim = c.victim.clone().expect("root-tamper names its victim");
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&victim)
                    .unwrap()
                    .set_len(c.repair_at.unwrap())
                    .unwrap();
                for seg in wal_segments(&dir) {
                    if seg > victim {
                        std::fs::remove_file(&seg).unwrap();
                    }
                }
                DurableStore::open(&dir, cfg.clone()).unwrap_or_else(|e| {
                    panic!("seed {seed}: round {round} ({style}): post-repair recovery must not fail: {e}")
                })
            }
            Err(aqua_store::StoreError::Replay { .. }) if style == "mid-history" => {
                // A mid-history cut on an exact frame boundary leaves
                // whole frames followed by an LSN gap — refusing (not
                // silently dropping committed data) is the contract.
                // Model the operator runbook: remove the post-gap
                // segments, then recovery must succeed.
                let victim = c.victim.clone().expect("mid-history names its victim");
                for seg in wal_segments(&dir) {
                    if seg > victim {
                        std::fs::remove_file(&seg).unwrap();
                    }
                }
                DurableStore::open(&dir, cfg.clone()).unwrap_or_else(|e| {
                    panic!("seed {seed}: round {round} ({style}): post-repair recovery must not fail: {e}")
                })
            }
            Err(e) => panic!("seed {seed}: round {round} ({style}): recovery must not fail: {e}"),
        };
        let survived = rep.next_lsn - 1;
        assert!(
            survived <= applied,
            "seed {seed}: round {round} ({style}): recovery cannot invent ops ({survived} > {applied})"
        );
        assert_eq!(recovered.epoch(), survived, "epoch is the surviving LSN");

        // Invariant 2 (self-verification): the recovered store proves
        // itself from the data alone. Every replayed frame carried a
        // bound root and passed (open refuses otherwise), and
        // recomputing each extent's merkle root from the final state
        // agrees with the incrementally tracked value the report
        // certifies — no never-crashed reference is consulted.
        assert!(
            recovered.authenticated(),
            "seed {seed}: round {round}: tracking is on"
        );
        assert_eq!(
            rep.roots_verified, rep.frames_replayed,
            "seed {seed}: round {round} ({style}): every replayed frame carries and passes its root"
        );
        if let Some(tree) = recovered.tree(STORM_TREE) {
            let actual = aqua_store::tree_root(recovered.store(), tree);
            assert_eq!(
                recovered.tree_extent_root(STORM_TREE),
                Some(actual),
                "seed {seed}: round {round} ({style}): tree extent root recomputes"
            );
            assert!(
                rep.extent_roots
                    .iter()
                    .any(|(l, h)| l == &format!("tree:{STORM_TREE}") && h == &actual.to_hex()),
                "seed {seed}: round {round} ({style}): report certifies the tree root"
            );
        }
        if let Some(list) = recovered.list(STORM_LIST) {
            let actual = aqua_store::list_root(recovered.store(), list);
            assert_eq!(
                recovered.list_extent_root(STORM_LIST),
                Some(actual),
                "seed {seed}: round {round} ({style}): list extent root recomputes"
            );
        }

        // Invariant 3: rebuilt indexes ≡ bare scans at the new epoch.
        assert_eq!(
            fingerprint(&recovered, true),
            fingerprint(&recovered, false),
            "seed {seed}: round {round} ({style}): index-vs-scan parity after recovery"
        );
        if survived >= BOOT_OPS {
            assert!(
                rep.indices_rebuilt >= 4,
                "seed {seed}: round {round}: all four registered indexes rebuild"
            );
        }
        reports.push(rep);

        // Invariant 4: the recovered store keeps taking the same
        // deterministic storm.
        ds = recovered;
        storm
            .apply(&mut ds, survived..survived + EXTRA_OPS)
            .expect("post-recovery storm applies");
        applied = survived + EXTRA_OPS;
    }

    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
    reports
}

#[test]
fn kill_and_recover_matrix() {
    let seed = chaos_seed();
    let all: Mutex<Vec<RecoveryReport>> = Mutex::new(Vec::new());

    for &t in &threads() {
        std::thread::scope(|scope| {
            let mut legs = Vec::new();
            for leg in 0..t {
                let all = &all;
                legs.push(scope.spawn(move || {
                    let reports = kill_and_recover_leg(seed ^ (t as u64) << 32, leg);
                    all.lock().unwrap().extend(reports);
                }));
            }
            for leg in legs {
                leg.join().expect("no leg may panic");
            }
        });
    }

    // Service startup path: recover one more stormed-and-crashed
    // directory *through* the query service and check the report and
    // counters are exposed.
    let dir = temp_dir("svc");
    let storm = MutationStorm::new(seed);
    let cfg = DurableConfig {
        segment_bytes: 512,
        ..DurableConfig::default()
    };
    let mut ds = DurableStore::open(&dir, cfg.clone()).unwrap().0;
    storm.apply(&mut ds, 0..STORM_OPS).unwrap();
    drop(ds);
    // A torn tail on the newest segment: always recoverable in place.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let last = wal_segments(&dir).pop().expect("storm wrote segments");
    let len = std::fs::metadata(&last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .unwrap()
        .set_len(rng.gen_range(0..=len))
        .unwrap();

    let svc = QueryService::default();
    assert!(svc.recovery_report().is_none(), "no report before startup");
    let ds = svc
        .open_durable(&dir, cfg)
        .unwrap_or_else(|e| panic!("seed {seed}: service startup recovery must be typed: {e}"));
    let rep = svc.recovery_report().expect("report retained");
    assert_eq!(
        rep.next_lsn,
        ds.epoch() + 1,
        "seed {seed}: recovered epoch mismatch"
    );
    let m = svc.metrics_snapshot();
    assert_eq!(
        m.recoveries, 1,
        "seed {seed}: report stamped into service metrics"
    );
    assert_eq!(m.recovery_frames_replayed, rep.frames_replayed);
    assert_eq!(m.recovery_bytes_truncated, rep.bytes_truncated);
    assert_eq!(m.integrity_roots_verified, rep.roots_verified);
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();

    let reports = all.into_inner().unwrap();
    assert!(!reports.is_empty());

    if let Ok(path) = std::env::var("AQUA_CHAOS_SNAPSHOT") {
        if !path.is_empty() {
            let mut json = String::from("{\"recovery_reports\":[");
            for (i, r) in reports.iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                json.push_str(&r.to_json());
            }
            let _ = write!(
                json,
                "],\"service_metrics\":{}}}",
                svc.metrics_snapshot().to_json()
            );
            std::fs::write(&path, json).expect("write recovery chaos snapshot");
        }
    }
}
