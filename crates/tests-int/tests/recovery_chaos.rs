//! Kill-and-recover chaos harness for the durable store: seeded
//! mutation storms are interrupted at random WAL byte offsets (torn
//! tails, bit flips, whole-segment loss) and recovered. Invariants:
//!
//! 1. **No panics** — every crash style recovers through the typed
//!    [`RecoveryReport`] path; damage is survived, not thrown.
//! 2. **Prefix semantics** — the recovered store equals a never-crashed
//!    reference that applied exactly the surviving storm prefix
//!    (`next_lsn - 1` ops): every tier-1 query (`select`,
//!    `sub_select` over tree and list, `split`) answers
//!    byte-identically on both.
//! 3. **Index-vs-scan parity** — after every recovery the rebuilt
//!    indexes answer exactly like bare scans, at the recovered epoch.
//! 4. **The store keeps working** — post-recovery mutations continue
//!    the same deterministic storm, and a second crash/recover cycle
//!    holds the same invariants.
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); the CI matrix crosses that
//! with `AQUA_TEST_THREADS` (legs run concurrently). Set
//! `AQUA_CHAOS_SNAPSHOT=<path>` to dump the merged recovery reports and
//! service metrics JSON for artifact upload.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aqua_algebra::{NodeId, Tree};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_service::QueryService;
use aqua_store::{ColumnStats, DurableConfig, DurableStore, RecoveryReport};
use aqua_workload::storm::{MutationStorm, BOOT_OPS, STORM_LIST, STORM_TREE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Storm ops applied before the first crash of each leg.
const STORM_OPS: u64 = BOOT_OPS + 120;
/// Storm ops applied between crash rounds.
const EXTRA_OPS: u64 = 60;
/// Crash/recover rounds per leg.
const ROUNDS: usize = 3;

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// Same sweep contract as `chaos.rs`: `AQUA_TEST_THREADS=<n>` pins the
/// matrix leg; unset sweeps a spread locally.
fn threads() -> Vec<usize> {
    match std::env::var("AQUA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => vec![1, 4],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-rchaos-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Canonical rendering of one tree (preorder, by payload OID) — the
/// byte-comparable answer format.
fn render_tree(t: &Tree, node: NodeId, out: &mut String) {
    match t.oid(node) {
        Some(o) => {
            let _ = write!(out, "{}", o.0);
        }
        None => out.push('_'),
    }
    if !t.children(node).is_empty() {
        out.push('(');
        for &c in t.children(node) {
            render_tree(t, c, out);
            out.push(' ');
        }
        out.push(')');
    }
}

/// Run every tier-1 query against `ds` and render the answers into one
/// canonical byte string. `indexed` routes the probes through the
/// recovery-rebuilt indexes (at the recovered epoch); otherwise the
/// catalog is bare and every plan is a scan.
fn fingerprint(ds: &DurableStore, indexed: bool) -> String {
    let store = ds.store();
    let mut out = String::new();
    let class = match store.class_id("Note") {
        Ok(c) => c,
        Err(_) => return "pristine".to_owned(),
    };
    let stats = ColumnStats::build(store, class, AttrId(0));
    let mut cat = Catalog::new(store, class);
    cat.add_stats(&stats);
    if indexed {
        cat.set_epoch(ds.epoch());
        let idx = ds.indexes();
        if let Some(i) = idx.attr_index(class, AttrId(0)) {
            cat.add_attr_index(i);
        }
        if let Some(i) = idx.tree_index(STORM_TREE) {
            cat.add_tree_index(i);
        }
        if let Some(i) = idx.list_index(STORM_LIST) {
            cat.add_list_index(i);
        }
        if let Some(i) = idx.structural_index(STORM_TREE) {
            cat.add_structural_index(i);
        }
    }
    let opt = Optimizer::new(&cat);
    let env = PredEnv::with_default_attr("pitch");

    // Tier-1 `select` over the class extent.
    let pred = PredExpr::eq("pitch", "E");
    let (plan, _) = opt.plan_set_select(&pred).expect("plan select");
    let _ = writeln!(out, "select:{:?}", plan.execute(&cat).expect("select"));

    // Tier-1 `sub_select` and `split` over the storm tree.
    if let Some(tree) = ds.tree(STORM_TREE) {
        let pattern = parse_tree_pattern("E(?*)", &env).unwrap();
        let (tplan, _) = opt
            .plan_tree_sub_select(&pattern, tree.len())
            .expect("plan tree sub_select");
        let cfg = MatchConfig::default();
        out.push_str("sub_select:");
        for m in tplan.execute(&cat, tree, &cfg).expect("tree sub_select") {
            render_tree(&m, m.root(), &mut out);
            out.push(';');
        }
        out.push('\n');
        let cfg = MatchConfig::first_per_root();
        out.push_str("split:");
        for p in tplan.execute_split(&cat, tree, &cfg).expect("tree split") {
            render_tree(&p.matched, p.matched.root(), &mut out);
            out.push('~');
            let whole = p.reassemble();
            render_tree(&whole, whole.root(), &mut out);
            out.push(';');
        }
        out.push('\n');
    }

    // Tier-1 `sub_select` over the storm list.
    if let Some(list) = ds.list(STORM_LIST) {
        let (re, s, e) = parse_list_pattern("[E ? G]", &env).unwrap();
        let (lplan, _) = opt
            .plan_list_sub_select(&re, s, e, list.len())
            .expect("plan list sub_select");
        let _ = writeln!(
            out,
            "list:{:?}",
            lplan.execute(&cat, list).expect("list sub_select")
        );
    }
    out
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

/// Crash the store directory: mutilate the WAL like a power cut would.
/// Returns a label for diagnostics plus the mutilated segment (for the
/// operator-repair path when recovery detects an LSN gap).
fn crash(dir: &Path, rng: &mut StdRng) -> (&'static str, Option<PathBuf>) {
    let segs = wal_segments(dir);
    let Some(last) = segs.last() else {
        return ("no-wal", None);
    };
    match rng.gen_range(0u32..3) {
        0 => {
            // Torn tail: truncate the newest segment mid-byte.
            let len = std::fs::metadata(last).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(last)
                .unwrap()
                .set_len(at)
                .unwrap();
            ("torn-tail", Some(last.clone()))
        }
        1 => {
            // Bit flip somewhere in the newest segment.
            let mut bytes = std::fs::read(last).unwrap();
            if bytes.is_empty() {
                return ("empty-seg", None);
            }
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
            std::fs::write(last, bytes).unwrap();
            ("bit-flip", Some(last.clone()))
        }
        _ => {
            // Mid-history truncation: tear a random segment; recovery
            // truncates there and drops every later segment — unless
            // the cut lands exactly on a frame boundary, in which case
            // the gap is indistinguishable from lost committed data
            // and recovery must *refuse* with a typed Replay error.
            let victim = &segs[rng.gen_range(0..segs.len())];
            let len = std::fs::metadata(victim).unwrap().len();
            let at = rng.gen_range(0..=len);
            std::fs::OpenOptions::new()
                .write(true)
                .open(victim)
                .unwrap()
                .set_len(at)
                .unwrap();
            ("mid-history", Some(victim.clone()))
        }
    }
}

/// One leg: storm → crash → recover → compare against the surviving
/// prefix's never-crashed reference → keep storming. Returns every
/// round's report.
fn kill_and_recover_leg(seed: u64, leg: usize) -> Vec<RecoveryReport> {
    let dir = temp_dir(&format!("leg{leg}"));
    let mut rng = StdRng::seed_from_u64(seed ^ ((leg as u64 + 1) * 0xC3A5));
    let storm = MutationStorm::new(seed);
    // Small segments + sometimes-on checkpoints: multiple files for the
    // crash to aim at, and snapshot recovery in the mix.
    let cfg = DurableConfig {
        segment_bytes: 512,
        checkpoint_every: if rng.gen_bool(0.5) { 16 } else { 0 },
        prune: true,
    };

    let (mut ds, rep) = DurableStore::open(&dir, cfg.clone()).expect("fresh open");
    assert!(rep.clean(), "a fresh directory recovers clean");
    let mut applied: u64 = storm.apply(&mut ds, 0..STORM_OPS).expect("storm applies");
    let mut reports = Vec::new();

    for round in 0..ROUNDS {
        drop(ds);
        let (style, victim) = crash(&dir, &mut rng);

        let (recovered, rep) = match DurableStore::open(&dir, cfg.clone()) {
            Ok(ok) => ok,
            Err(aqua_store::StoreError::Replay { .. }) if style == "mid-history" => {
                // A mid-history cut on an exact frame boundary leaves
                // whole frames followed by an LSN gap — refusing (not
                // silently dropping committed data) is the contract.
                // Model the operator runbook: remove the post-gap
                // segments, then recovery must succeed.
                let victim = victim.expect("mid-history names its victim");
                for seg in wal_segments(&dir) {
                    if seg > victim {
                        std::fs::remove_file(&seg).unwrap();
                    }
                }
                DurableStore::open(&dir, cfg.clone()).unwrap_or_else(|e| {
                    panic!("round {round} ({style}): post-repair recovery must not fail: {e}")
                })
            }
            Err(e) => panic!("round {round} ({style}): recovery must not fail: {e}"),
        };
        let survived = rep.next_lsn - 1;
        assert!(
            survived <= applied,
            "round {round} ({style}): recovery cannot invent ops ({survived} > {applied})"
        );
        assert_eq!(recovered.epoch(), survived, "epoch is the surviving LSN");

        // Invariant 2: byte-identical tier-1 answers vs the reference
        // that applied exactly the surviving prefix.
        let ref_dir = temp_dir(&format!("ref{leg}-{round}"));
        let mut reference = DurableStore::open(&ref_dir, DurableConfig::default())
            .expect("reference open")
            .0;
        storm
            .apply(&mut reference, 0..survived)
            .expect("reference replay");
        assert_eq!(
            fingerprint(&recovered, false),
            fingerprint(&reference, false),
            "round {round} ({style}, {survived} ops survived): recovered answers diverge"
        );

        // Invariant 3: rebuilt indexes ≡ bare scans at the new epoch.
        assert_eq!(
            fingerprint(&recovered, true),
            fingerprint(&recovered, false),
            "round {round} ({style}): index-vs-scan parity after recovery"
        );
        if survived >= BOOT_OPS {
            assert!(
                rep.indices_rebuilt >= 4,
                "round {round}: all four registered indexes rebuild"
            );
        }
        std::fs::remove_dir_all(&ref_dir).unwrap();
        reports.push(rep);

        // Invariant 4: the recovered store keeps taking the same
        // deterministic storm.
        ds = recovered;
        storm
            .apply(&mut ds, survived..survived + EXTRA_OPS)
            .expect("post-recovery storm applies");
        applied = survived + EXTRA_OPS;
    }

    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();
    reports
}

#[test]
fn kill_and_recover_matrix() {
    let seed = chaos_seed();
    let all: Mutex<Vec<RecoveryReport>> = Mutex::new(Vec::new());

    for &t in &threads() {
        std::thread::scope(|scope| {
            let mut legs = Vec::new();
            for leg in 0..t {
                let all = &all;
                legs.push(scope.spawn(move || {
                    let reports = kill_and_recover_leg(seed ^ (t as u64) << 32, leg);
                    all.lock().unwrap().extend(reports);
                }));
            }
            for leg in legs {
                leg.join().expect("no leg may panic");
            }
        });
    }

    // Service startup path: recover one more stormed-and-crashed
    // directory *through* the query service and check the report and
    // counters are exposed.
    let dir = temp_dir("svc");
    let storm = MutationStorm::new(seed);
    let cfg = DurableConfig {
        segment_bytes: 512,
        ..DurableConfig::default()
    };
    let mut ds = DurableStore::open(&dir, cfg.clone()).unwrap().0;
    storm.apply(&mut ds, 0..STORM_OPS).unwrap();
    drop(ds);
    // A torn tail on the newest segment: always recoverable in place.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let last = wal_segments(&dir).pop().expect("storm wrote segments");
    let len = std::fs::metadata(&last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .unwrap()
        .set_len(rng.gen_range(0..=len))
        .unwrap();

    let svc = QueryService::default();
    assert!(svc.recovery_report().is_none(), "no report before startup");
    let ds = svc
        .open_durable(&dir, cfg)
        .expect("service startup recovery is typed, not fatal");
    let rep = svc.recovery_report().expect("report retained");
    assert_eq!(rep.next_lsn, ds.epoch() + 1);
    let m = svc.metrics_snapshot();
    assert_eq!(m.recoveries, 1, "report stamped into service metrics");
    assert_eq!(m.recovery_frames_replayed, rep.frames_replayed);
    assert_eq!(m.recovery_bytes_truncated, rep.bytes_truncated);
    drop(ds);
    std::fs::remove_dir_all(&dir).unwrap();

    let reports = all.into_inner().unwrap();
    assert!(!reports.is_empty());

    if let Ok(path) = std::env::var("AQUA_CHAOS_SNAPSHOT") {
        if !path.is_empty() {
            let mut json = String::from("{\"recovery_reports\":[");
            for (i, r) in reports.iter().enumerate() {
                if i > 0 {
                    json.push(',');
                }
                json.push_str(&r.to_json());
            }
            let _ = write!(
                json,
                "],\"service_metrics\":{}}}",
                svc.metrics_snapshot().to_json()
            );
            std::fs::write(&path, json).expect("write recovery chaos snapshot");
        }
    }
}
