//! Integration suite for the `aqua-service` front end: the admission →
//! deadline → retry → breaker pipeline must (a) return exactly the
//! answers direct plan execution returns, (b) shed overload with typed
//! rejections, (c) retry only transient faults against one shared step
//! budget, and (d) trip, degrade, probe, and recover its per-class
//! circuit breakers deterministically.

use std::sync::Mutex;
use std::time::Duration;

use aqua_guard::{failpoint, Budget, CancelToken, Deadline, ErrorClass};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_service::{
    AdmissionConfig, BreakerConfig, BreakerState, Dispatch, PlanClass, QueryService, Request,
    RetryPolicy, ServiceConfig, ServiceError, SERVICE_COMMIT_PROBE, SERVICE_DISPATCH_PROBE,
};
use aqua_store::{AttrIndex, ColumnStats, ListPosIndex, TreeNodeIndex};
use aqua_workload::random_tree::{RandomTreeGen, TreeDataset};
use aqua_workload::SongGen;

/// The failpoint registry is process-global; serialize the tests that
/// arm points so parallel test threads don't observe each other's
/// faults.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner())
}

fn tree_fixture() -> (TreeDataset, TreeNodeIndex, ColumnStats) {
    let d = RandomTreeGen::new(8)
        .nodes(600)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    (d, idx, stats)
}

/// Retry policy that never sleeps — the deterministic-test shape.
fn no_sleep_retry(max_attempts: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base: Duration::ZERO,
        cap: Duration::ZERO,
        seed: 1,
    }
}

#[test]
fn tree_answer_matches_direct_execution() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();

    let (plan, _) = Optimizer::new(&cat)
        .plan_tree_sub_select(&pattern, d.tree.len())
        .unwrap();
    let mut direct_explain = Explain::default();
    let direct = plan
        .execute_guarded(&cat, &d.tree, &cfg, None, &mut direct_explain)
        .unwrap();
    assert!(!direct.is_empty());

    let svc = QueryService::default();
    let resp = svc
        .tree_sub_select(&Request::new("alice"), &cat, &d.tree, &pattern, &cfg)
        .expect("healthy service serves the query");
    assert_eq!(resp.value.len(), direct.len());
    for (a, b) in resp.value.iter().zip(&direct) {
        assert!(a.structural_eq(b), "service answer diverged from direct");
    }
    assert_eq!(resp.meta.attempts, 1);
    assert_eq!(resp.meta.retries, 0);
    assert_eq!(resp.meta.dispatch, Dispatch::Full);
    assert!(!resp.meta.degraded);
    assert!(!resp.meta.truncation.truncated);
    assert!(resp.meta.steps > 0, "guard steps surface in the meta");

    let m = svc.metrics_snapshot();
    assert_eq!(m.svc_admitted, 1);
    assert_eq!(m.svc_shed, 0);
    assert_eq!(m.svc_retried, 0);
    assert_eq!(m.svc_tripped, 0);
    assert_eq!(m.svc_degraded, 0);
}

#[test]
fn set_and_list_answers_match_direct_execution() {
    let _serial = lock();
    // Set select over a class extent.
    let mut store = aqua_object::ObjectStore::new();
    let class = store
        .define_class(
            aqua_object::ClassDef::new(
                "P",
                vec![
                    aqua_object::AttrDef::stored("age", aqua_object::AttrType::Int),
                    aqua_object::AttrDef::stored("citizen", aqua_object::AttrType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..300 {
        store
            .insert_named(
                "P",
                &[
                    ("age", aqua_object::Value::Int(i % 90)),
                    (
                        "citizen",
                        aqua_object::Value::str(if i % 7 == 0 { "Brazil" } else { "USA" }),
                    ),
                ],
            )
            .unwrap();
    }
    let idx = AttrIndex::build(&store, class, AttrId(1));
    let stats = ColumnStats::build(&store, class, AttrId(1));
    let mut cat = Catalog::new(&store, class);
    cat.add_attr_index(&idx).add_stats(&stats);

    let pred =
        PredExpr::eq("citizen", "Brazil").and(PredExpr::cmp("age", aqua_pattern::CmpOp::Lt, 40));
    let (plan, _) = Optimizer::new(&cat).plan_set_select(&pred).unwrap();
    let direct = plan.execute(&cat).unwrap();
    assert!(!direct.is_empty());

    let svc = QueryService::default();
    let resp = svc.set_select(&Request::new("alice"), &cat, &pred).unwrap();
    assert_eq!(resp.value, direct);
    assert!(!resp.meta.truncation.truncated);

    // List sub_select over a song.
    let d = SongGen::new(5)
        .notes(800)
        .plant(vec!["A", "B", "C"], 6)
        .generate();
    let lidx = ListPosIndex::build(&d.store, &d.song, d.class, AttrId(0));
    let mut lcat = Catalog::new(&d.store, d.class);
    lcat.add_list_index(&lidx);
    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A B C]", &env).unwrap();
    let (lplan, _) = Optimizer::new(&lcat)
        .plan_list_sub_select(&re, s, e, d.song.len())
        .unwrap();
    let ldirect = lplan.execute(&lcat, &d.song).unwrap();
    assert!(!ldirect.is_empty());

    let resp = svc
        .list_sub_select(&Request::new("alice"), &lcat, &d.song, &re, s, e)
        .unwrap();
    assert_eq!(resp.value, ldirect);
    assert_eq!(svc.metrics_snapshot().svc_admitted, 2);
}

#[test]
fn forest_answer_matches_serial_naive() {
    let _serial = lock();
    let f = RandomTreeGen::new(17)
        .nodes(200)
        .label_weights(&[("u", 1), ("x", 10)])
        .generate_forest(5);
    let set = aqua_algebra::bulk::TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats: Vec<Catalog<'_>> = idxs
        .iter()
        .map(|idx| {
            let mut c = Catalog::new(&f.store, f.class);
            c.add_tree_index(idx).add_stats(&stats);
            c
        })
        .collect();

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let compiled = pattern.compile(f.class, f.store.class(f.class)).unwrap();
    let naive: Vec<(usize, aqua_algebra::Tree)> = set
        .members()
        .iter()
        .enumerate()
        .flat_map(|(i, t)| {
            aqua_algebra::tree::ops::sub_select(&f.store, t, &compiled, &cfg)
                .unwrap()
                .into_iter()
                .map(move |m| (i, m))
        })
        .collect();

    let svc = QueryService::default();
    let resp = svc
        .forest_sub_select(&Request::new("alice"), &cats, &set, &pattern, &cfg)
        .expect("healthy forest query serves");
    assert_eq!(resp.value, naive, "fleet merge must equal the serial loop");
    assert!(!resp.meta.degraded);
}

/// The sharded serving path returns the unsharded answer byte-for-byte
/// at every shard count, and the service guard (deadlines, budgets)
/// propagates into the per-shard sub-plans: an expired deadline or an
/// exhausted step budget fails with `Resource` class no matter how many
/// shards the scatter spans.
#[test]
fn sharded_forest_answers_match_and_guards_propagate() {
    let _serial = lock();
    let f = RandomTreeGen::new(29)
        .nodes(200)
        .label_weights(&[("u", 1), ("x", 10)])
        .generate_forest(6);
    let set = aqua_algebra::bulk::TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats: Vec<Catalog<'_>> = idxs
        .iter()
        .map(|idx| {
            let mut c = Catalog::new(&f.store, f.class);
            c.add_tree_index(idx).add_stats(&stats);
            c
        })
        .collect();

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();

    let svc = QueryService::default();
    let reference = svc
        .forest_sub_select(&Request::new("alice"), &cats, &set, &pattern, &cfg)
        .expect("unsharded reference serves")
        .value;

    for shards in [1usize, 2, 4] {
        let router = aqua_store::ShardRouter::new(shards);
        let route = |i: usize| router.route_name(&format!("m{i}/doc"));
        let resp = svc
            .forest_sub_select_sharded(
                &Request::new("alice"),
                &cats,
                &set,
                &pattern,
                &cfg,
                shards,
                route,
            )
            .expect("sharded query serves");
        assert_eq!(resp.value, reference, "{shards} shards diverged");
        assert!(
            resp.explain.scattered(),
            "explain stamps the dispatched batches"
        );

        // Deadline propagation: an expired deadline reaches every
        // per-shard sub-plan through the one SharedGuard.
        let req = Request::new("bob")
            .with_budget(Budget::unlimited().with_deadline_at(Deadline::from_now(Duration::ZERO)));
        let err = svc
            .forest_sub_select_sharded(&req, &cats, &set, &pattern, &cfg, shards, route)
            .expect_err("expired deadline cannot serve");
        match err {
            ServiceError::Failed { class, .. } => assert_eq!(class, ErrorClass::Resource),
            other => panic!("expected Failed, got {other:?}"),
        }

        // Budget propagation: a step budget far below the forest's cost
        // trips inside the scatter at every shard count.
        let req = Request::new("carol").with_budget(Budget::unlimited().with_steps(8));
        let err = svc
            .forest_sub_select_sharded(&req, &cats, &set, &pattern, &cfg, shards, route)
            .expect_err("8 steps cannot cover a 1200-node forest");
        match err {
            ServiceError::Failed { class, .. } => assert_eq!(class, ErrorClass::Resource),
            other => panic!("expected Failed, got {other:?}"),
        }
    }
    let m = svc.metrics_snapshot();
    assert!(
        m.scatter_queries >= 3,
        "service metrics count scatter executions: {}",
        m.scatter_queries
    );
}

/// `apply_cross_shard` routes a buffered transaction through the full
/// admission → deadline → retry pipeline: an expired deadline and a
/// pre-cancelled token both refuse *before* any prepare frame is
/// written (the global root is untouched), and the very same buffered
/// transaction then commits verbatim once the guard clears.
#[test]
fn cross_shard_txn_respects_deadline_and_cancel() {
    let _serial = lock();
    let dir = std::env::temp_dir().join(format!("aqua-svc-txn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(3),
        ..ServiceConfig::default()
    });
    let mut ss = svc
        .open_sharded(&dir, aqua_store::ShardedConfig::with_shards(2))
        .expect("fresh open");
    let storm = aqua_workload::ShardStorm::new(7, 4);
    storm.bootstrap(&mut ss).expect("bootstrap");
    storm.grow(&mut ss, 6).expect("grow");
    ss.sync().expect("sync");
    let root0 = ss.global_root();

    let mut txn = ss.begin();
    for k in 0..4 {
        let list = storm.list_path(k);
        let class = ss
            .shard(ss.shard_of(&list))
            .store()
            .class_id("Note")
            .expect("bootstrapped");
        let (_, oid) = txn.insert(
            &list,
            class,
            vec![aqua_object::Value::str("S"), aqua_object::Value::Int(1)],
        );
        txn.list_push(&list, oid);
    }
    assert!(txn.participants().len() > 1, "the txn spans both shards");

    // Expired deadline: Resource class, nothing prepared, not retried
    // past the per-attempt deadline check.
    let req = Request::new("alice")
        .with_budget(Budget::unlimited().with_deadline_at(Deadline::from_now(Duration::ZERO)));
    let err = svc
        .apply_cross_shard(&req, &mut ss, &txn)
        .expect_err("expired deadline cannot commit");
    match err {
        ServiceError::Failed { class, .. } => assert_eq!(class, ErrorClass::Resource),
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(ss.global_root(), root0, "deadline refusal applies nothing");

    // Pre-cancelled token: Permanent class, one attempt, store untouched.
    let token = CancelToken::new();
    token.cancel();
    let req = Request::new("bob").with_cancel(token);
    let err = svc
        .apply_cross_shard(&req, &mut ss, &txn)
        .expect_err("cancelled token cannot commit");
    match err {
        ServiceError::Failed {
            class, attempts, ..
        } => {
            assert_eq!(class, ErrorClass::Permanent);
            assert_eq!(attempts, 1, "cancellation must not be retried");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(ss.global_root(), root0, "cancel refusal applies nothing");

    // The identical buffer commits once the guard clears — refusals
    // above left no residue that could poison the retry.
    let resp = svc
        .apply_cross_shard(&Request::new("carol"), &mut ss, &txn)
        .expect("clean commit serves");
    assert!(
        resp.value.txn_id.is_some(),
        "two participants take the full two-phase path"
    );
    assert_ne!(ss.global_root(), root0, "the commit landed");
    let m = svc.metrics_snapshot();
    assert_eq!(m.txn_committed, 1, "service metrics count the commit");
    assert_eq!(
        m.txn_prepared, 2,
        "one prepare per participant, from the clean attempt only"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn transient_fault_retries_to_success() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();

    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(3),
        ..ServiceConfig::default()
    });
    failpoint::arm_times(SERVICE_DISPATCH_PROBE, "dispatch flaking", 2);
    let resp = svc
        .tree_sub_select(&Request::new("alice"), &cat, &d.tree, &pattern, &cfg)
        .expect("two transient faults are inside the attempt budget");
    failpoint::reset();

    assert_eq!(resp.meta.attempts, 3);
    assert_eq!(resp.meta.retries, 2);
    assert!(!resp.value.is_empty());
    assert_eq!(svc.metrics_snapshot().svc_retried, 2);
    assert_eq!(
        svc.breaker_state(PlanClass::TreeSubSelect),
        BreakerState::Closed,
        "a retried-to-success submission never feeds a failure to the breaker"
    );
    assert_eq!(resp.explain.retries, 2);
    let text = resp.explain.to_string();
    assert!(text.contains("retry #1"), "explain records retries: {text}");
    assert!(text.contains("dispatch flaking"), "{text}");
}

#[test]
fn permanent_failure_is_not_retried() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();

    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(5),
        ..ServiceConfig::default()
    });
    let token = CancelToken::new();
    token.cancel();
    let req = Request::new("alice").with_cancel(token);
    let err = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &MatchConfig::default())
        .expect_err("pre-cancelled submission cannot succeed");
    match err {
        ServiceError::Failed {
            class, attempts, ..
        } => {
            assert_eq!(class, ErrorClass::Permanent);
            assert_eq!(attempts, 1, "cancellation must not be retried");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(svc.metrics_snapshot().svc_retried, 0);
}

#[test]
fn expired_deadline_fails_fast_with_resource_class() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();

    let svc = QueryService::default();
    let req = Request::new("alice")
        .with_budget(Budget::unlimited().with_deadline_at(Deadline::from_now(Duration::ZERO)));
    let err = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &MatchConfig::default())
        .expect_err("expired deadline cannot launch an attempt");
    match err {
        ServiceError::Failed {
            class,
            attempts,
            steps,
            ..
        } => {
            assert_eq!(class, ErrorClass::Resource);
            assert_eq!(attempts, 0, "no attempt launched");
            assert_eq!(steps, 0, "no work spent");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}

/// Overload sheds with the typed rejection: while one slow submission
/// holds the single execution slot (pinned there by retry backoff
/// sleeps), a second arrival finds the zero-depth queue full and is
/// refused in O(1) with queue depth and a back-off hint.
#[test]
fn overload_sheds_with_typed_rejection() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();

    let svc = QueryService::new(ServiceConfig {
        admission: AdmissionConfig {
            max_inflight: 1,
            max_queue_depth: 0,
            ..AdmissionConfig::default()
        },
        // Every attempt faults; ~29 × 10ms backoff pins the slot long
        // enough for the shed below to be deterministic.
        retry: RetryPolicy {
            max_attempts: 30,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(10),
            seed: 1,
        },
        ..ServiceConfig::default()
    });
    failpoint::arm(SERVICE_DISPATCH_PROBE, "backend down");

    std::thread::scope(|scope| {
        let svc_ref = &svc;
        let (cat_ref, tree_ref, pat_ref, cfg_ref) = (&cat, &d.tree, &pattern, &cfg);
        let slow = scope.spawn(move || {
            svc_ref.tree_sub_select(&Request::new("alice"), cat_ref, tree_ref, pat_ref, cfg_ref)
        });
        while svc.inflight() == 0 {
            std::thread::yield_now();
        }
        let err = svc
            .tree_sub_select(&Request::new("bob"), &cat, &d.tree, &pattern, &cfg)
            .expect_err("second arrival must be shed, not queued");
        match err {
            ServiceError::Rejected {
                queue_depth,
                retry_after_hint,
            } => {
                assert_eq!(queue_depth, 0, "nothing can queue behind a 0-deep queue");
                assert!(retry_after_hint > Duration::ZERO);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        let slow_result = slow.join().unwrap();
        assert!(
            matches!(
                slow_result,
                Err(ServiceError::Failed {
                    class: ErrorClass::Transient,
                    ..
                })
            ),
            "armed-forever dispatch fault exhausts the attempt budget"
        );
    });
    failpoint::reset();

    let m = svc.metrics_snapshot();
    assert_eq!(m.svc_admitted, 1);
    assert_eq!(m.svc_shed, 1);
}

/// Satellite: a retried submission resumes spending from the *same*
/// step budget. Total steps across attempts never exceed the configured
/// budget — a fresh-budget-per-attempt implementation would pass the
/// generous case below but not fail the tight one.
#[test]
fn step_budget_spans_retry_attempts() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();

    // Calibrate: one clean execution costs `s` guard steps.
    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(3),
        ..ServiceConfig::default()
    });
    let clean = svc
        .tree_sub_select(&Request::new("alice"), &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    let s = clean.meta.steps;
    assert!(s > 100, "fixture must cost real work, got {s} steps");

    // Generous budget (2s + slack): the commit fault burns one full
    // execution, the retry completes inside the remainder, and the
    // reported total is exactly two executions' worth.
    let generous = 2 * s + 16;
    failpoint::arm_times(SERVICE_COMMIT_PROBE, "commit fault", 1);
    let resp = svc
        .tree_sub_select(
            &Request::new("alice").with_budget(Budget::unlimited().with_steps(generous)),
            &cat,
            &d.tree,
            &pattern,
            &cfg,
        )
        .expect("2s+slack covers a retried execution");
    failpoint::reset();
    assert_eq!(resp.meta.attempts, 2);
    assert_eq!(resp.meta.retries, 1);
    assert_eq!(resp.meta.steps, 2 * s, "both attempts billed to one budget");
    assert!(resp.meta.steps <= generous);

    // Tight budget (1.5s): attempt one spends s, the retry gets only
    // s/2 remaining and must trip BudgetExceeded — it may NOT restart
    // from a fresh budget and succeed.
    let tight = s + s / 2;
    failpoint::arm_times(SERVICE_COMMIT_PROBE, "commit fault", 1);
    let err = svc
        .tree_sub_select(
            &Request::new("alice").with_budget(Budget::unlimited().with_steps(tight)),
            &cat,
            &d.tree,
            &pattern,
            &cfg,
        )
        .expect_err("1.5s cannot cover two executions under one budget");
    failpoint::reset();
    match err {
        ServiceError::Failed {
            class,
            attempts,
            steps,
            ..
        } => {
            assert_eq!(class, ErrorClass::Resource);
            assert_eq!(attempts, 2);
            assert!(steps >= s, "first attempt's spend is on the bill");
            // Overshoot is bounded by one guard batch, not by re-running
            // the whole query.
            assert!(
                steps <= tight + 2048,
                "total steps {steps} blew past the {tight}-step budget"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}

/// The full breaker cycle through the service: transient failures trip
/// the class open, degraded dispatches serve partial answers whose
/// truncation is first-class response metadata, the half-open probe
/// runs at full fidelity, and recovery closes the breaker.
#[test]
fn breaker_trips_serves_degraded_and_recovers() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::default();

    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(1),
        breaker: BreakerConfig {
            window: 2,
            failure_threshold: 2,
            probe_after: 2,
        },
        degraded_cap: 1,
        ..ServiceConfig::default()
    });
    let req = Request::new("alice");

    // Full-fidelity answer for later comparison.
    let full = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    assert!(full.value.len() > 1, "fixture needs multiple matches");

    // Two transient failures trip the breaker.
    failpoint::arm(SERVICE_DISPATCH_PROBE, "backend down");
    for _ in 0..2 {
        let err = svc
            .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
            .expect_err("armed dispatch fault with one attempt");
        assert_eq!(err.class(), ErrorClass::Transient);
    }
    failpoint::reset();
    assert_eq!(
        svc.breaker_state(PlanClass::TreeSubSelect),
        BreakerState::Open
    );
    assert_eq!(svc.metrics_snapshot().svc_tripped, 1);
    assert_eq!(
        svc.breaker_state(PlanClass::SetSelect),
        BreakerState::Closed,
        "breakers are per plan class"
    );

    // The fault is gone, but the breaker is open: submission 1 of the
    // probe_after=2 clock serves degraded — a 1-match partial answer
    // with its truncation flagged in the response metadata.
    let degraded = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .expect("degraded dispatch still answers");
    assert_eq!(degraded.meta.dispatch, Dispatch::Degraded);
    assert!(degraded.meta.degraded);
    assert_eq!(degraded.value.len(), 1, "degraded_cap clamps the answer");
    assert!(degraded.value[0].structural_eq(&full.value[0]));
    assert!(degraded.meta.truncation.truncated);
    assert!(degraded.meta.truncation.hit_max_matches);
    assert!(degraded.explain.to_string().contains("degraded dispatch"));
    assert_eq!(svc.metrics_snapshot().svc_degraded, 1);

    // Submission 2 reaches the probe threshold: full fidelity, and its
    // success recovers the breaker.
    let probe = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .expect("half-open probe runs at full fidelity");
    assert_eq!(probe.meta.dispatch, Dispatch::Probe);
    assert!(!probe.meta.degraded);
    assert_eq!(probe.value.len(), full.value.len());
    let text = probe.explain.to_string();
    assert!(text.contains("half-open probe"), "{text}");
    assert!(text.contains("breaker recovered"), "{text}");
    assert_eq!(
        svc.breaker_state(PlanClass::TreeSubSelect),
        BreakerState::Closed
    );

    // Healthy again: the next submission is Full and untruncated.
    let after = svc
        .tree_sub_select(&req, &cat, &d.tree, &pattern, &cfg)
        .unwrap();
    assert_eq!(after.meta.dispatch, Dispatch::Full);
    assert_eq!(after.value.len(), full.value.len());
}

/// A degraded set select is a capped scan; a degraded list answer is a
/// deterministic prefix — both flagged.
#[test]
fn degraded_set_and_list_responses_flag_truncation() {
    let _serial = lock();
    let mut store = aqua_object::ObjectStore::new();
    let class = store
        .define_class(
            aqua_object::ClassDef::new(
                "P",
                vec![aqua_object::AttrDef::stored(
                    "age",
                    aqua_object::AttrType::Int,
                )],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..100 {
        store
            .insert_named("P", &[("age", aqua_object::Value::Int(i % 9))])
            .unwrap();
    }
    let cat = Catalog::new(&store, class);
    let pred = PredExpr::cmp("age", aqua_pattern::CmpOp::Lt, 8);

    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(1),
        breaker: BreakerConfig {
            window: 1,
            failure_threshold: 1,
            probe_after: 100,
        },
        degraded_cap: 3,
        ..ServiceConfig::default()
    });
    let req = Request::new("alice");

    let full = svc.set_select(&req, &cat, &pred).unwrap().value;
    assert!(full.len() > 3);

    failpoint::arm_times(SERVICE_DISPATCH_PROBE, "backend down", 1);
    let _ = svc.set_select(&req, &cat, &pred).expect_err("trips open");
    failpoint::reset();
    assert_eq!(svc.breaker_state(PlanClass::SetSelect), BreakerState::Open);

    let degraded = svc.set_select(&req, &cat, &pred).unwrap();
    assert_eq!(degraded.value.len(), 3, "scan capped at degraded_cap");
    assert_eq!(degraded.value[..], full[..3], "cap keeps the stable prefix");
    assert!(degraded.meta.truncation.truncated);
    assert!(degraded.meta.truncation.hit_max_matches);

    // Same cycle for a list query.
    let d = SongGen::new(5)
        .notes(800)
        .plant(vec!["A", "B"], 10)
        .generate();
    let mut lcat = Catalog::new(&d.store, d.class);
    let lidx = ListPosIndex::build(&d.store, &d.song, d.class, AttrId(0));
    lcat.add_list_index(&lidx);
    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A B]", &env).unwrap();

    let lfull = svc
        .list_sub_select(&req, &lcat, &d.song, &re, s, e)
        .unwrap()
        .value;
    assert!(lfull.len() > 3);

    failpoint::arm_times(SERVICE_DISPATCH_PROBE, "backend down", 1);
    let _ = svc
        .list_sub_select(&req, &lcat, &d.song, &re, s, e)
        .expect_err("trips open");
    failpoint::reset();

    let ldeg = svc
        .list_sub_select(&req, &lcat, &d.song, &re, s, e)
        .unwrap();
    assert_eq!(ldeg.value.len(), 3, "prefix truncation at degraded_cap");
    assert_eq!(ldeg.value[..], lfull[..3]);
    assert!(ldeg.meta.truncation.truncated);
}

/// A verified split emits one certificate per decomposition, the
/// independent checker accepts every one inline, and the same texts
/// round-trip through a second offline `aqua_check::verify` pass.
#[test]
fn verified_split_round_trips_certificates() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(!?*)", &env).unwrap();
    let cfg = MatchConfig::default();
    let root = aqua_store::tree_root(&d.store, &d.tree);

    let svc = QueryService::default();

    // Unverified split: pieces, no certificates, no cert metrics.
    let plain = svc
        .tree_split(
            &Request::new("alice"),
            &cat,
            &d.tree,
            Some(("tree:t", root)),
            &pattern,
            &cfg,
        )
        .expect("healthy unverified split serves");
    assert!(!plain.value.pieces.is_empty(), "fixture must match");
    assert!(plain.value.certificates.is_empty());
    assert_eq!(svc.metrics_snapshot().certs_emitted, 0);

    // Verified split: one accepted certificate per decomposition.
    let resp = svc
        .tree_split(
            &Request::new("alice").with_verify(true),
            &cat,
            &d.tree,
            Some(("tree:t", root)),
            &pattern,
            &cfg,
        )
        .expect("true certificates must verify inline");
    let n = resp.value.pieces.len();
    assert_eq!(resp.value.pieces.len(), plain.value.pieces.len());
    assert_eq!(resp.value.certificates.len(), n);
    for text in &resp.value.certificates {
        let rep = aqua_check::verify(text).expect("served certificate parses");
        assert!(rep.ok(), "offline re-check must agree: {:?}", rep.failures);
        assert_eq!(rep.extent, "tree:t");
    }
    let m = svc.metrics_snapshot();
    assert_eq!(m.certs_emitted, n as u64);
    assert_eq!(m.certs_checked, n as u64);
    assert_eq!(m.certs_failed, 0);
    let text = resp.explain.to_string();
    assert!(
        text.contains("integrity:"),
        "explain records verdicts: {text}"
    );

    // Verification without a committed root is itself an integrity error.
    let err = svc
        .tree_split(
            &Request::new("alice").with_verify(true),
            &cat,
            &d.tree,
            None,
            &pattern,
            &cfg,
        )
        .expect_err("no root, no verified answer");
    assert!(matches!(err, ServiceError::Integrity { .. }), "{err:?}");
}

/// A tampered certificate (the `split.cert.tamper` failpoint flips a
/// piece hash at emission) is rejected inline: the caller gets a typed
/// `Integrity` error instead of the answer, `certs_failed` counts it,
/// and the fault indicts the class breaker even though the error class
/// is Permanent.
#[test]
fn tampered_certificate_is_rejected_and_indicts_breaker() {
    let _serial = lock();
    let (d, idx, stats) = tree_fixture();
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(!?*)", &env).unwrap();
    let cfg = MatchConfig::default();
    let root = aqua_store::tree_root(&d.store, &d.tree);

    let svc = QueryService::new(ServiceConfig {
        retry: no_sleep_retry(3),
        breaker: BreakerConfig {
            window: 1,
            failure_threshold: 1,
            probe_after: 100,
        },
        ..ServiceConfig::default()
    });
    // Tenant registration forces verification without touching the
    // request.
    svc.set_tenant_verify("alice", true);

    failpoint::arm_times(aqua_store::CERT_TAMPER_PROBE, "tampered emission", 1);
    let err = svc
        .tree_split(
            &Request::new("alice"),
            &cat,
            &d.tree,
            Some(("tree:t", root)),
            &pattern,
            &cfg,
        )
        .expect_err("tampered certificate must be withheld");
    failpoint::reset();

    match &err {
        ServiceError::Integrity { extent, detail } => {
            assert_eq!(extent, "tree:t");
            assert!(detail.contains("hash mismatch"), "{detail}");
        }
        other => panic!("expected Integrity, got {other:?}"),
    }
    assert_eq!(err.class(), ErrorClass::Permanent, "never retried");
    assert!(svc.metrics_snapshot().certs_failed >= 1);
    assert_eq!(
        svc.breaker_state(PlanClass::TreeSubSelect),
        BreakerState::Open,
        "integrity violations indict the backend's breaker"
    );
    assert_eq!(
        svc.metrics_snapshot().svc_retried,
        0,
        "permanent integrity failures must not burn retry attempts"
    );

    // De-registering the tenant restores unverified service (the store
    // itself is healthy — only the emission path was tampered).
    svc.set_tenant_verify("alice", false);
    // Breaker is open, so this serves degraded, but it serves.
    let resp = svc
        .tree_split(
            &Request::new("alice"),
            &cat,
            &d.tree,
            Some(("tree:t", root)),
            &pattern,
            &cfg,
        )
        .expect("unverified split serves again");
    assert!(resp.value.certificates.is_empty());
}
