//! Property suite: pattern `Display` output re-parses to the same AST.
//!
//! The paper's notation is the interface; this pins down that our ASCII
//! rendering of it (`Display`) and the parser agree. The generator
//! covers node tests, wildcards, points, closures, concatenation,
//! alternation, child-list stars/pluses and prunes — avoiding only the
//! render-ambiguous prune-of-closure combination (`!x*` parses as
//! `!(x*)`, while `Star(Prune(x))` renders identically; the two are
//! semantically equal but not AST-equal).

use aqua_pattern::ast::Re;
use aqua_pattern::list::Sym;
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_ast::{NodeTest, TreePat, TreePattern};
use aqua_pattern::PredExpr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LABELS: &[&str] = &["aa", "bb", "cc"];

fn rand_test(rng: &mut StdRng) -> NodeTest {
    if rng.gen_bool(0.3) {
        NodeTest::Any
    } else {
        NodeTest::Pred(PredExpr::eq(
            "label",
            LABELS[rng.gen_range(0..LABELS.len())],
        ))
    }
}

fn rand_tree_pat(rng: &mut StdRng, depth: usize, in_closure: bool) -> TreePat {
    let roll = rng.gen_range(0..10);
    if depth == 0 || roll < 3 {
        return TreePat::Leaf(rand_test(rng));
    }
    match roll {
        3 if !in_closure => {
            // Closure around a node pattern containing the point.
            let body = TreePat::Node(
                rand_test(rng),
                Box::new(
                    Re::Leaf(rand_tree_pat(rng, depth - 1, true))
                        .then(Re::Leaf(TreePat::point("x"))),
                ),
            );
            if rng.gen_bool(0.5) {
                body.star_at("x")
            } else {
                body.plus_at("x")
            }
        }
        4 => {
            let left = TreePat::Node(rand_test(rng), Box::new(Re::Leaf(TreePat::point("q"))));
            let right = rand_tree_pat(rng, depth - 1, in_closure);
            left.concat_at("q", right)
        }
        5 => TreePat::Alt(vec![
            rand_tree_pat(rng, depth - 1, in_closure),
            rand_tree_pat(rng, depth - 1, in_closure),
        ]),
        _ => {
            let n = rng.gen_range(1..=3);
            let mut re: Option<Re<TreePat>> = None;
            for _ in 0..n {
                let mut item = Re::Leaf(rand_tree_pat(rng, depth - 1, in_closure));
                match rng.gen_range(0..6) {
                    0 => item = item.star(),
                    1 => item = item.plus(),
                    2 => item = item.prune(),
                    _ => {}
                }
                re = Some(match re {
                    None => item,
                    Some(r) => r.then(item),
                });
            }
            TreePat::Node(rand_test(rng), Box::new(re.unwrap()))
        }
    }
}

fn rand_list_re(rng: &mut StdRng, depth: usize) -> Re<Sym> {
    let leaf = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) {
            Sym::any()
        } else {
            Sym::pred(PredExpr::eq(
                "label",
                LABELS[rng.gen_range(0..LABELS.len())],
            ))
        }
    };
    if depth == 0 || rng.gen_bool(0.4) {
        return leaf(rng);
    }
    match rng.gen_range(0..4) {
        0 => rand_list_re(rng, depth - 1).or(rand_list_re(rng, depth - 1)),
        // Postfix bodies never contain `!`: `!x+` prints identically for
        // `Prune(Plus(x))` and `Plus(Prune(x))` (semantically equal,
        // AST-distinct), so the generator keeps them apart.
        1 => match rng.gen_range(0..3) {
            0 => leaf(rng).star(),
            1 => leaf(rng).plus(),
            _ => leaf(rng).prune(),
        },
        _ => {
            let n = rng.gen_range(2..=3);
            let mut re = rand_list_re(rng, depth - 1);
            for _ in 1..n {
                re = re.then(rand_list_re(rng, depth - 1));
            }
            re
        }
    }
}

/// Normalize the two AST encodings of alternation — a child-list leaf
/// holding `TreePat::Alt` versus a child-list `Re::Alt` of leaves — and
/// flatten nested alternations, so that display → parse comparisons see
/// through the (semantically invisible) difference.
fn norm_tp(tp: &TreePat) -> TreePat {
    match tp {
        TreePat::Leaf(_) | TreePat::Point(_) => tp.clone(),
        TreePat::Node(t, re) => TreePat::Node(t.clone(), Box::new(norm_re(re))),
        TreePat::Alt(xs) => {
            let mut flat = Vec::new();
            for x in xs {
                match norm_tp(x) {
                    TreePat::Alt(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            TreePat::Alt(flat)
        }
        TreePat::Concat { left, label, right } => TreePat::Concat {
            left: Box::new(norm_tp(left)),
            label: label.clone(),
            right: Box::new(norm_tp(right)),
        },
        TreePat::Closure { body, label, plus } => TreePat::Closure {
            body: Box::new(norm_tp(body)),
            label: label.clone(),
            plus: *plus,
        },
    }
}

fn norm_re(re: &Re<TreePat>) -> Re<TreePat> {
    match re {
        Re::Leaf(tp) => match norm_tp(tp) {
            TreePat::Alt(xs) => Re::Alt(xs.into_iter().map(Re::Leaf).collect()),
            other => Re::Leaf(other),
        },
        Re::Empty => Re::Empty,
        Re::Concat(xs) => {
            let mut flat = Vec::new();
            for x in xs {
                match norm_re(x) {
                    Re::Concat(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            Re::Concat(flat)
        }
        Re::Alt(xs) => {
            let mut flat = Vec::new();
            for x in xs {
                match norm_re(x) {
                    Re::Alt(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            Re::Alt(flat)
        }
        Re::Star(x) => Re::Star(Box::new(norm_re(x))),
        Re::Plus(x) => Re::Plus(Box::new(norm_re(x))),
        Re::Prune(x) => Re::Prune(Box::new(norm_re(x))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Tree patterns: display ∘ parse = id (up to the documented
    /// exclusions, which the generator avoids).
    #[test]
    fn tree_pattern_roundtrip(seed in 0u64..100_000, anchors in 0u8..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pat = TreePattern::new(rand_tree_pat(&mut rng, 3, false));
        pat.at_root = anchors & 1 != 0;
        pat.at_leaves = anchors & 2 != 0;
        let text = pat.to_string();
        let env = PredEnv::new();
        let reparsed = parse_tree_pattern(&text, &env)
            .unwrap_or_else(|e| panic!("display output failed to parse: {text:?}: {e}"));
        prop_assert_eq!((reparsed.at_root, reparsed.at_leaves), (pat.at_root, pat.at_leaves));
        prop_assert_eq!(norm_tp(&reparsed.pat), norm_tp(&pat.pat), "text was {}", text);
    }

    /// List patterns: display ∘ parse = id.
    #[test]
    fn list_pattern_roundtrip(seed in 0u64..100_000, anchors in 0u8..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let re = rand_list_re(&mut rng, 3);
        let (s, e) = (anchors & 1 != 0, anchors & 2 != 0);
        let mut text = String::new();
        if s {
            text.push('^');
        }
        text.push('[');
        text.push_str(&re.to_string());
        text.push(']');
        if e {
            text.push('$');
        }
        let env = PredEnv::new();
        let (reparsed, s2, e2) = parse_list_pattern(&text, &env)
            .unwrap_or_else(|err| panic!("display output failed to parse: {text:?}: {err}"));
        prop_assert_eq!((s2, e2), (s, e));
        prop_assert_eq!(&reparsed, &re, "text was {}", text);
    }
}
