//! Shard-chaos matrix: kill-and-recover a [`ShardedStore`] across shard
//! counts × crash styles and demand the same answers everywhere.
//!
//! The discipline extends `recovery_chaos.rs` to the sharded tentpole:
//! every shard owns its own WAL segment stream, so a "power cut" can
//! tear a *different* tail on every shard — the failure mode a single
//! durable directory never sees. Each round mutilates the shard
//! directories (torn tails, CRC-caught bit flips), recovers through
//! `ShardedStore::open` (which replays shards in parallel), and tops the
//! [`ShardStorm`] population back up. Because the storm's final state is
//! a pure function of `(seed, paths, target)` — never of crash points or
//! shard count — the *value* fingerprint after the last round must be
//! byte-identical across every cell of the matrix, and the global merkle
//! root must equal the fold of the per-shard roots at every step.
//!
//! Seeded via `AQUA_CHAOS_SEED` (default 7); every assertion message
//! echoes the seed so a red CI leg is reproducible from its log alone.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aqua_store::{fold_shard_roots, shard_dir_name, ShardedConfig, ShardedStore};
use aqua_store::{DurableConfig, Root};
use aqua_workload::ShardStorm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path subtrees the storm populates (spread over the shards).
const PATHS: usize = 6;
/// List/tree size per path before the first crash.
const TARGET0: usize = 30;
/// Growth between crash rounds.
const STEP: usize = 15;
/// Crash/recover rounds per matrix cell.
const ROUNDS: usize = 3;
/// The shard counts the matrix crosses (CI pins the same pair).
const SHARD_COUNTS: &[usize] = &[1, 4];

fn chaos_seed() -> u64 {
    std::env::var("AQUA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-schaos-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn cfg(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        shard: DurableConfig {
            // Small segments: crashes land mid-stream, not only in a
            // single giant segment.
            segment_bytes: 512,
            checkpoint_every: 16,
            prune: true,
            authenticate: true,
        },
        recovery_threads: 0,
        pin_epoch: None,
    }
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

/// Mutilate one shard directory's newest WAL segment the way a power
/// cut (torn tail) or silent fault caught by the CRC (bit flip) would.
/// Both styles are repairable by tail truncation, so recovery must
/// *succeed* on every cell of the matrix.
fn crash_shard(dir: &Path, rng: &mut StdRng) -> &'static str {
    let segs = wal_segments(dir);
    let Some(last) = segs.last() else {
        return "no-wal";
    };
    if rng.gen_range(0u32..2) == 0 {
        let len = std::fs::metadata(last).unwrap().len();
        let at = rng.gen_range(0..=len);
        std::fs::OpenOptions::new()
            .write(true)
            .open(last)
            .unwrap()
            .set_len(at)
            .unwrap();
        "torn-tail"
    } else {
        let mut bytes = std::fs::read(last).unwrap();
        if bytes.is_empty() {
            return "empty-seg";
        }
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << rng.gen_range(0..8u32);
        std::fs::write(last, bytes).unwrap();
        "bit-flip"
    }
}

/// One matrix cell: populate at `shards`, then crash/recover/regrow
/// `ROUNDS` times — per-shard independent crashes each round — and
/// return the final value fingerprint.
fn run_cell(seed: u64, shards: usize) -> String {
    let dir = temp_dir(&format!("cell{shards}"));
    let storm = ShardStorm::new(seed ^ 0xA9_0A, PATHS);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(shards as u64));

    {
        let (mut ss, rep) = ShardedStore::open(&dir, cfg(shards))
            .unwrap_or_else(|e| panic!("seed {seed}: fresh open at {shards} shards failed: {e}"));
        assert!(
            rep.clean(),
            "seed {seed}: a fresh {shards}-shard directory recovers clean"
        );
        storm.bootstrap(&mut ss).expect("bootstrap");
        storm.grow(&mut ss, TARGET0).expect("grow");
        ss.sync().expect("sync");
    }

    let mut target = TARGET0;
    for round in 0..ROUNDS {
        // Crash every shard independently: each gets its own torn tail
        // or bit flip, the multi-WAL failure mode the matrix exists for.
        let mut styles = Vec::new();
        for i in 0..shards {
            styles.push(crash_shard(&dir.join(shard_dir_name(i)), &mut rng));
        }

        let (mut ss, rep) = ShardedStore::open(&dir, cfg(shards)).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: round {round} ({styles:?}) at {shards} shards: \
                 recovery must not fail: {e}"
            )
        });
        assert_eq!(
            rep.shards.len(),
            shards,
            "seed {seed}: round {round}: one report per shard\n{rep}"
        );
        // Global root = fold of the per-shard roots, at every recovery.
        let per_shard: Vec<Root> = ss.shards().iter().map(|s| s.store_root()).collect();
        assert_eq!(
            ss.global_root(),
            fold_shard_roots(&per_shard),
            "seed {seed}: round {round} ({styles:?}): global root is the shard-root fold\n{rep}"
        );
        assert_eq!(
            rep.global_root,
            ss.global_root(),
            "seed {seed}: round {round}: recovery report binds the recovered global root\n{rep}"
        );
        assert_eq!(
            rep.txns_committed + rep.txns_aborted,
            0,
            "seed {seed}: round {round}: no transactions in flight, none to resolve\n{rep}"
        );

        // Top the population back up past what the crash destroyed.
        target += STEP;
        storm.bootstrap(&mut ss).unwrap_or_else(|e| {
            panic!("seed {seed}: round {round} ({styles:?}): re-bootstrap failed: {e}")
        });
        storm.grow(&mut ss, target).unwrap_or_else(|e| {
            panic!("seed {seed}: round {round} ({styles:?}): regrow failed: {e}")
        });
        ss.sync().expect("sync");
    }

    // A clean reopen must agree with itself: same fingerprint, same
    // global root — recovery is idempotent once the tails are healed.
    let (ss, _) = ShardedStore::open(&dir, cfg(shards))
        .unwrap_or_else(|e| panic!("seed {seed}: final open at {shards} shards failed: {e}"));
    let fp = storm.fingerprint(&ss);
    let root = ss.global_root();
    drop(ss);
    let (ss2, rep2) = ShardedStore::open(&dir, cfg(shards))
        .unwrap_or_else(|e| panic!("seed {seed}: reopen at {shards} shards failed: {e}"));
    assert!(
        rep2.clean(),
        "seed {seed}: a healed {shards}-shard directory reopens clean\n{rep2}"
    );
    assert_eq!(
        storm.fingerprint(&ss2),
        fp,
        "seed {seed}: reopen changes answers at {shards} shards"
    );
    assert_eq!(
        ss2.global_root(),
        root,
        "seed {seed}: reopen changes the global root at {shards} shards"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    fp
}

/// The matrix: every shard count must converge on byte-identical value
/// answers after its own independent crash history.
#[test]
fn shard_matrix_converges_on_identical_answers() {
    let seed = chaos_seed();
    let mut reference: Option<String> = None;
    for &shards in SHARD_COUNTS {
        let fp = run_cell(seed, shards);
        assert!(
            !fp.is_empty(),
            "seed {seed}: empty fingerprint at {shards} shards"
        );
        match &reference {
            None => reference = Some(fp),
            Some(r) => assert_eq!(
                &fp, r,
                "seed {seed}: {shards}-shard answers diverge from the 1-shard reference \
                 after kill-and-recover"
            ),
        }
    }
}

/// Shard-count changes are refused, crash or no crash: a torn 4-shard
/// directory opened as 1-shard must fail with the layout error, not
/// silently re-route extents.
#[test]
fn crashed_directory_still_pins_its_shard_count() {
    let seed = chaos_seed();
    let dir = temp_dir("pin");
    let storm = ShardStorm::new(seed, 3);
    {
        let (mut ss, _) = ShardedStore::open(&dir, cfg(4)).expect("fresh open");
        storm.bootstrap(&mut ss).expect("bootstrap");
        storm.grow(&mut ss, 12).expect("grow");
        ss.sync().expect("sync");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..4 {
        crash_shard(&dir.join(shard_dir_name(i)), &mut rng);
    }
    let err = ShardedStore::open(&dir, cfg(1)).err().unwrap_or_else(|| {
        panic!("seed {seed}: opening a crashed 4-shard dir as 1 shard must fail")
    });
    assert!(
        err.to_string().contains("shard"),
        "seed {seed}: layout refusal names the shard mismatch: {err}"
    );
    // The honest shard count still recovers.
    let (ss, _) = ShardedStore::open(&dir, cfg(4))
        .unwrap_or_else(|e| panic!("seed {seed}: recovery at the pinned count failed: {e}"));
    assert_eq!(ss.shard_count(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}
