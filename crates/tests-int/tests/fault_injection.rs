//! Fault-injection suite: armed failpoints at the store/index probe
//! boundaries must never surface as errors from indexed plans — the
//! executor degrades to the naive path, records the degradation in
//! `Explain`, and returns exactly the naive answer.

use std::sync::Mutex;

use aqua_algebra::tree::ops as tops;
use aqua_guard::failpoint;
use aqua_object::{AttrId, ObjectError, ObjectStore, Value};
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_store::{AttrIndex, ColumnStats, ListPosIndex, StructuralIndex, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;

/// The failpoint registry is process-global; serialize the tests that
/// arm points so parallel test threads don't observe each other's
/// faults.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn tree_plan_survives_index_fault_and_reports_fallback() {
    let _serial = lock();
    let d = RandomTreeGen::new(8)
        .nodes(1500)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let (plan, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(plan.is_indexed(), "skewed labels should favour the index");

    let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
    let naive = tops::sub_select(&d.store, &d.tree, &compiled, &cfg).unwrap();

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::TREE_INDEX_PROBE, "tree index probe down");
    let got = plan
        .execute_guarded(&cat, &d.tree, &cfg, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(got.len(), naive.len());
    for (a, b) in got.iter().zip(&naive) {
        assert!(a.structural_eq(b));
    }
    assert!(explain.fell_back());
    let text = explain.to_string();
    assert!(text.contains("fallback:"), "explain shows it: {text}");
    assert!(text.contains("tree index probe down"), "{text}");
}

#[test]
fn split_plan_survives_index_fault() {
    let _serial = lock();
    let d = RandomTreeGen::new(8)
        .nodes(1500)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let (plan, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(plan.is_indexed());

    let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
    let naive =
        aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &compiled, &cfg).unwrap();

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::TREE_INDEX_PROBE, "tree index probe down");
    let got = plan
        .execute_split_guarded(&cat, &d.tree, &cfg, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(got.len(), naive.len());
    assert!(explain.fell_back());
}

#[test]
fn set_plan_survives_attr_index_fault() {
    let _serial = lock();
    let mut store = ObjectStore::new();
    let class = store
        .define_class(
            aqua_object::ClassDef::new(
                "P",
                vec![
                    aqua_object::AttrDef::stored("age", aqua_object::AttrType::Int),
                    aqua_object::AttrDef::stored("citizen", aqua_object::AttrType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..500 {
        store
            .insert_named(
                "P",
                &[
                    ("age", Value::Int(i % 90)),
                    (
                        "citizen",
                        Value::str(if i % 7 == 0 { "Brazil" } else { "USA" }),
                    ),
                ],
            )
            .unwrap();
    }
    let idx = AttrIndex::build(&store, class, AttrId(1));
    let stats = ColumnStats::build(&store, class, AttrId(1));
    let mut cat = Catalog::new(&store, class);
    cat.add_attr_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);

    let pred =
        PredExpr::eq("citizen", "Brazil").and(PredExpr::cmp("age", aqua_pattern::CmpOp::Lt, 40));
    let (plan, _) = opt.plan_set_select(&pred).unwrap();
    assert!(plan.is_indexed(), "selective conjunct should use the index");
    let expected = plan.execute(&cat).unwrap();
    assert!(!expected.is_empty());

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::ATTR_INDEX_PROBE, "attr index probe down");
    let got = plan
        .execute_guarded(&cat, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(got, expected);
    assert!(explain.fell_back());
    assert!(explain.to_string().contains("extent scan"));
}

#[test]
fn list_plan_survives_positional_index_fault() {
    let _serial = lock();
    let d = SongGen::new(5)
        .notes(2000)
        .plant(vec!["A", "B", "C"], 12)
        .generate();
    let idx = ListPosIndex::build(&d.store, &d.song, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_list_index(&idx);
    let opt = Optimizer::new(&cat);

    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A B C]", &env).unwrap();
    let (plan, _) = opt.plan_list_sub_select(&re, s, e, d.song.len()).unwrap();
    assert!(plan.is_indexed(), "fixed-offset pattern should probe");
    let expected = plan.execute(&cat, &d.song).unwrap();
    assert!(!expected.is_empty());

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::LIST_INDEX_PROBE, "list index probe down");
    let got = plan
        .execute_guarded(&cat, &d.song, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(got, expected);
    assert!(explain.fell_back());
    assert!(explain.to_string().contains("full list scan"));
}

#[test]
fn select_plan_survives_index_fault() {
    let _serial = lock();
    let d = RandomTreeGen::new(8)
        .nodes(1500)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let sidx = StructuralIndex::build(&d.tree);
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx)
        .add_structural_index(&sidx)
        .add_stats(&stats);
    let opt = Optimizer::new(&cat);

    let pred = PredExpr::eq("label", "u");
    let (plan, _) = opt.plan_tree_select(&pred, d.tree.len()).unwrap();
    assert!(plan.is_indexed());
    let expected = plan.execute(&cat, &d.tree).unwrap();
    assert!(!expected.is_empty());

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::TREE_INDEX_PROBE, "tree index probe down");
    let got = plan
        .execute_guarded(&cat, &d.tree, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(got.len(), expected.len());
    for (a, b) in got.iter().zip(&expected) {
        assert!(a.structural_eq(b));
    }
    assert!(explain.fell_back());
    assert!(explain.to_string().contains("full walk"));
}

/// The registry under a concurrent arm/disarm storm: checkers running
/// full tilt on other threads must only ever see fully-formed verdicts —
/// an `Ok`, or an error carrying exactly one of the armed messages
/// (never a torn point/msg pair) — an unrelated point must stay clean
/// throughout, and the final disarm must be promptly observed once the
/// toggler is done.
#[test]
fn registry_survives_concurrent_arm_disarm() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let _serial = lock();
    const POINT: &str = "fp.race.primary";
    const OTHER: &str = "fp.race.unrelated";
    const MSGS: [&str; 2] = ["first cause", "second cause"];
    const TOGGLES: usize = 4000;

    let stop = AtomicBool::new(false);
    let (fired, clean) = std::thread::scope(|scope| {
        let stop = &stop;
        let toggler = scope.spawn(move || {
            for i in 0..TOGGLES {
                if i % 3 == 2 {
                    failpoint::disarm(POINT);
                } else {
                    failpoint::arm(POINT, MSGS[i % 2]);
                }
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
            failpoint::disarm(POINT);
            stop.store(true, Ordering::Release);
        });

        let checkers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let (mut fired, mut clean) = (0u64, 0u64);
                    while !stop.load(Ordering::Acquire) {
                        match failpoint::check(POINT) {
                            Ok(()) => clean += 1,
                            Err(e) => {
                                fired += 1;
                                assert_eq!(e.point, POINT, "error names the right point");
                                assert!(
                                    MSGS.contains(&e.msg.as_str()),
                                    "torn or stale message: {:?}",
                                    e.msg
                                );
                            }
                        }
                        assert!(
                            failpoint::check(OTHER).is_ok(),
                            "arming {POINT} must never fire {OTHER}"
                        );
                    }
                    (fired, clean)
                })
            })
            .collect();

        toggler.join().expect("toggler must not panic");
        checkers
            .into_iter()
            .map(|c| c.join().expect("checkers must not panic"))
            .fold((0, 0), |(f, c), (df, dc)| (f + df, c + dc))
    });
    assert!(fired > 0, "checkers never saw the point armed");
    assert!(clean > 0, "checkers never saw the point disarmed");

    // The toggler's final disarm happened-before its join: every
    // subsequent check observes it, immediately and forever.
    for _ in 0..100 {
        assert!(failpoint::check(POINT).is_ok(), "disarm must stick");
    }
    assert!(failpoint::check(OTHER).is_ok());
}

#[test]
fn one_shot_fault_heals_after_firing() {
    let _serial = lock();
    let mut store = ObjectStore::new();
    store
        .define_class(
            aqua_object::ClassDef::new(
                "N",
                vec![aqua_object::AttrDef::stored(
                    "x",
                    aqua_object::AttrType::Int,
                )],
            )
            .unwrap(),
        )
        .unwrap();
    let oid = store.insert_named("N", &[("x", Value::Int(1))]).unwrap();

    failpoint::arm_times(aqua_object::OBJECT_GET_PROBE, "store briefly down", 1);
    let err = store.get(oid).expect_err("first lookup hits the fault");
    assert!(
        matches!(&err, ObjectError::Injected { point, .. }
            if point == aqua_object::OBJECT_GET_PROBE),
        "typed injected error: {err}"
    );
    assert!(err.to_string().contains("store briefly down"));
    // The one-shot charge is spent; the store works again.
    assert!(store.get(oid).is_ok());
    failpoint::reset();
}

/// Satellite regression: a probe against an index built at an older
/// mutation epoch refuses with `StoreError::StaleIndex`; the plan
/// degrades to the scan, records the staleness in `Explain`, and still
/// answers exactly like the naive operator. Re-declaring the current
/// epoch (a rebuilt index) restores the indexed path.
#[test]
fn stale_epoch_probe_degrades_to_scan() {
    let d = RandomTreeGen::new(8)
        .nodes(1500)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0)); // built at epoch 0
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    cat.set_epoch(7); // the store has since mutated
    let opt = Optimizer::new(&cat);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let (plan, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(plan.is_indexed(), "skewed labels should favour the index");

    let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
    let naive = tops::sub_select(&d.store, &d.tree, &compiled, &cfg).unwrap();

    let mut explain = Explain::default();
    let got = plan
        .execute_guarded(&cat, &d.tree, &cfg, None, &mut explain)
        .expect("staleness must degrade, not fail");
    assert_eq!(got.len(), naive.len());
    for (a, b) in got.iter().zip(&naive) {
        assert!(a.structural_eq(b));
    }
    assert!(explain.fell_back());
    let text = explain.to_string();
    assert!(
        text.contains("stale index"),
        "explain names the cause: {text}"
    );
    assert!(text.contains("built at epoch 0"), "{text}");

    // An index rebuilt at the current epoch answers without fallback.
    let fresh = idx.clone().with_epoch(7);
    let mut cat2 = Catalog::new(&d.store, d.class);
    cat2.add_tree_index(&fresh).add_stats(&stats);
    cat2.set_epoch(7);
    let mut explain2 = Explain::default();
    let got2 = Optimizer::new(&cat2)
        .plan_tree_sub_select(&pattern, d.tree.len())
        .unwrap()
        .0
        .execute_guarded(&cat2, &d.tree, &cfg, None, &mut explain2)
        .unwrap();
    assert!(!explain2.fell_back(), "fresh epoch probes clean");
    assert_eq!(got2.len(), naive.len());
}
