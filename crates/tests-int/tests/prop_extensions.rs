//! Property suite for the extension modules: tree edit distance
//! (metric laws), the lazy DFA (≡ Pike VM), functional updates
//! (validity + locality), and parser robustness (never panics).

use aqua_algebra::tree::distance::{approx_sub_select, edit_distance, EditCosts};
use aqua_algebra::tree::ops;
use aqua_algebra::{Payload, Tree};
use aqua_object::AttrId;
use aqua_pattern::dfa::ListDfa;
use aqua_pattern::list::{ListPattern, MatchMode, Sym};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::{PredExpr, Re};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;

fn label_costs(
    store: &aqua_object::ObjectStore,
) -> EditCosts<impl Fn(&Payload, &Payload) -> u64 + '_> {
    EditCosts {
        insert: 1,
        delete: 1,
        rename: move |a: &Payload, b: &Payload| match (a, b) {
            (Payload::Cell(x), Payload::Cell(y)) => u64::from(
                store.attr(x.contents(), AttrId(0)) != store.attr(y.contents(), AttrId(0)),
            ),
            (Payload::Hole(x), Payload::Hole(y)) => u64::from(x != y),
            _ => 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Edit distance is a metric on random trees (identity via labels,
    /// symmetry, triangle inequality), and bounded by total node count.
    #[test]
    fn edit_distance_is_a_metric(s1 in 0u64..500, s2 in 0u64..500, s3 in 0u64..500,
                                 n in 1usize..14) {
        // One store so label comparisons are uniform.
        let d1 = RandomTreeGen::new(s1).nodes(n).max_arity(3)
            .label_weights(&[("a", 1), ("b", 1), ("c", 1)]).generate();
        let t2 = regen_in(&d1, s2, n);
        let t3 = regen_in(&d1, s3, n);
        let store = &d1.store;
        let costs = label_costs(store);
        let (x, y, z) = (&d1.tree, &t2, &t3);
        let dxy = edit_distance(x, y, &costs);
        let dyx = edit_distance(y, x, &costs);
        prop_assert_eq!(dxy, dyx);
        prop_assert_eq!(edit_distance(x, x, &costs), 0);
        let dxz = edit_distance(x, z, &costs);
        let dzy = edit_distance(z, y, &costs);
        prop_assert!(dxy <= dxz + dzy, "triangle: {dxy} > {dxz} + {dzy}");
        prop_assert!(dxy <= (x.len() + y.len()) as u64);
        // Size difference is a lower bound.
        prop_assert!(dxy >= (x.len() as i64 - y.len() as i64).unsigned_abs());
    }

    /// approx_sub_select with k = 0 agrees with exact structural search.
    #[test]
    fn approx_k0_is_exact(seed in 0u64..2000, n in 2usize..40) {
        let d = RandomTreeGen::new(seed).nodes(n).max_arity(3)
            .label_weights(&[("a", 2), ("b", 1)]).generate();
        // Target: the subtree at the root's first child (if any).
        let root_kids = d.tree.children(d.tree.root());
        prop_assume!(!root_kids.is_empty());
        let target = aqua_algebra::tree::concat::subtree(&d.tree, root_kids[0]);
        let costs = label_costs(&d.store);
        let hits = approx_sub_select(&d.tree, &target, 0, &costs);
        // Every hit's subtree is label-isomorphic to the target: distance
        // says 0, so re-check with a direct comparison.
        for h in &hits {
            let sub = aqua_algebra::tree::concat::subtree(&d.tree, h.root);
            prop_assert_eq!(edit_distance(&sub, &target, &costs), 0);
        }
        // The planted child itself is among the hits.
        prop_assert!(hits.iter().any(|h| h.root == root_kids[0]));
    }

    /// The lazy DFA agrees with the Pike VM on every scan.
    #[test]
    fn dfa_equals_nfa(seed in 0u64..2000, notes in 1usize..200, pi in 0usize..4) {
        let patterns = ["[A ? F]", "[A+ B]", "[[[A|B]]* C]", "[!? A !?]"];
        let d = SongGen::new(seed).notes(notes).generate();
        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern(patterns[pi], &env).unwrap();
        let p = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let oids = d.song.oids();
        let via_nfa = p.find_matches(&d.store, &oids, MatchMode::Nonoverlapping);
        let mut dfa = ListDfa::new(&p).unwrap();
        let via_dfa = dfa.find_nonoverlapping(&d.store, &oids);
        prop_assert_eq!(via_nfa, via_dfa);
        prop_assert_eq!(
            p.is_match(&d.store, &oids),
            ListDfa::new(&p).unwrap().is_match(&d.store, &oids)
        );
    }

    /// Functional updates: the result is valid, the original is
    /// untouched, and untouched regions are preserved.
    #[test]
    fn updates_are_local_and_valid(seed in 0u64..2000, n in 2usize..40, pick in 0u32..40) {
        let d = RandomTreeGen::new(seed).nodes(n).generate();
        let node = aqua_algebra::NodeId(pick % n as u32);
        let before = d.tree.clone();
        let repl = Tree::leaf(aqua_object::Oid(0));

        let replaced = d.tree.replace_subtree(node, &repl).unwrap();
        prop_assert!(d.tree.structural_eq(&before), "input mutated");
        // Node-count arithmetic: everything outside `node`'s subtree
        // survives, plus the replacement's single node.
        let sub = d.tree.iter_preorder_from(node).count();
        prop_assert_eq!(replaced.len(), n - sub + 1);

        if node != d.tree.root() {
            let removed = d.tree.remove_subtree(node).unwrap();
            prop_assert_eq!(removed.len(), n - sub);
        }

        let inserted = d.tree.insert_child(node, 0, &repl).unwrap();
        prop_assert_eq!(inserted.len(), n + 1);
    }

    /// The pattern parsers never panic, whatever the input.
    #[test]
    fn parsers_never_panic(input in "[\\x20-\\x7e]{0,40}") {
        let env = PredEnv::with_default_attr("label");
        let _ = parse_list_pattern(&input, &env);
        let _ = parse_tree_pattern(&input, &env);
    }

    /// Structured-but-mangled pattern text never panics either.
    #[test]
    fn parsers_survive_mangled_patterns(input in "[\\[\\]\\(\\)\\{\\}@!\\*\\+\\|\\^\\$\\?a-d =<>0-9\"]{0,30}") {
        let env = PredEnv::with_default_attr("label");
        let _ = parse_list_pattern(&input, &env);
        let _ = parse_tree_pattern(&input, &env);
    }

    /// Array ops keep the ODMG invariants under random edit scripts.
    #[test]
    fn array_edit_scripts(seed in 0u64..2000, scripts in prop::collection::vec(0u8..4, 0..20)) {
        let d = SongGen::new(seed).notes(8).generate();
        let mut a = aqua_algebra::AquaArray::from_list(d.song.clone()).unwrap();
        let filler = d.song.oids()[0];
        let mut model: Vec<aqua_object::Oid> = d.song.oids();
        for (i, op) in scripts.into_iter().enumerate() {
            let idx = i % (model.len() + 1);
            match op {
                0 => {
                    a.insert(idx, filler).unwrap();
                    model.insert(idx, filler);
                }
                1 if idx < model.len() => {
                    a.remove(idx).unwrap();
                    model.remove(idx);
                }
                2 if idx < model.len() => {
                    a.set(idx, filler).unwrap();
                    model[idx] = filler;
                }
                _ => {
                    a.resize(idx, filler);
                    model.resize(idx, filler);
                }
            }
            prop_assert_eq!(a.as_list().oids(), model.clone());
        }
    }
}

/// Generate a second tree whose objects live in `base`'s store (so label
/// comparisons share one attribute table). Rebuilds by copying the shape
/// of a freshly generated tree into the base store.
fn regen_in(base: &aqua_workload::random_tree::TreeDataset, seed: u64, n: usize) -> Tree {
    let other = RandomTreeGen::new(seed)
        .nodes(n)
        .max_arity(3)
        .label_weights(&[("a", 1), ("b", 1), ("c", 1)])
        .generate();
    // Map each node of `other` to a fresh object in base.store with the
    // same label. We cannot mutate base.store (shared ref), so instead
    // reuse base's own objects for labels — find any OID in base with
    // the right label, or fall back to the root object.
    let mut by_label: std::collections::HashMap<String, aqua_object::Oid> =
        std::collections::HashMap::new();
    for &oid in base.store.extent(base.class) {
        if let aqua_object::Value::Str(l) = base.store.attr(oid, AttrId(0)) {
            by_label.entry(l.clone()).or_insert(oid);
        }
    }
    let fallback = base.store.extent(base.class)[0];
    ops::apply(&other.tree, |oid| match other.store.attr(oid, AttrId(0)) {
        aqua_object::Value::Str(l) => *by_label.get(l).unwrap_or(&fallback),
        _ => fallback,
    })
}

/// Non-proptest spot check: Sym/Re builders round-trip through display.
#[test]
fn list_pattern_display_is_stable() {
    let re: Re<Sym> = Sym::pred(PredExpr::eq("pitch", "A"))
        .then(Sym::any().star())
        .then(Sym::pred(PredExpr::eq("pitch", "F")).prune());
    let text = re.to_string();
    assert!(text.contains('?'));
    assert!(text.contains('!'));
}
