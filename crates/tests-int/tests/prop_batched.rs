//! Property suite: the flat-memory engine is *observationally
//! pointer-walk*. The SoA arenas ([`TreeCols`]/`ListCols`), the fused
//! batched predicate programs, and the chunked pool runs are pure
//! performance moves — every answer must stay byte-identical to the
//! per-element scalar semantics, serial and parallel, and must survive
//! a durable-store recovery (which rebuilds the columnar views from
//! replayed arenas).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aqua_algebra::bulk::{ListSet, TreeSet};
use aqua_algebra::list::ops as lops;
use aqua_algebra::list::List;
use aqua_algebra::tree::ops as tops;
use aqua_algebra::{Tree, TreeCols};
use aqua_guard::{Budget, CancelToken, Deadline, ExecGuard, GuardError};
use aqua_object::Oid;
use aqua_pattern::batch::{BatchProgram, CHUNK};
use aqua_pattern::list::MatchMode;
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::{MatchConfig, NodePayloadRef, TreeAccess, TreeMatcher};
use aqua_pattern::{PatternCache, PredExpr};
use aqua_store::{merkle, DurableConfig, DurableStore};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pointer-walk view of a tree: delegates everything to the real
/// [`Tree`] arena but withholds the preorder hint, forcing the matcher
/// down its on-demand DFS path — the pre-SoA behavior.
struct PtrWalk<'a>(&'a Tree);

impl TreeAccess for PtrWalk<'_> {
    fn node_count(&self) -> usize {
        TreeAccess::node_count(self.0)
    }
    fn root(&self) -> u32 {
        TreeAccess::root(self.0)
    }
    fn children(&self, node: u32) -> &[u32] {
        TreeAccess::children(self.0, node)
    }
    fn payload(&self, node: u32) -> NodePayloadRef<'_> {
        TreeAccess::payload(self.0, node)
    }
    // preorder_hint: default None — the point of this wrapper.
}

/// A song list with labeled holes sprinkled in (lists in queries are
/// rarely ground end to end; the batched select must skip holes and
/// still charge for them).
fn holey_song(seed: u64, notes: usize) -> (aqua_workload::music::SongDataset, List) {
    let d = SongGen::new(seed).notes(notes).generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut l = List::new();
    for oid in d.song.oids() {
        if rng.gen_bool(0.15) {
            l.push_hole(format!("h{}", l.len()).as_str());
        }
        l.push(oid);
    }
    (d, l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched list `select` ≡ the scalar per-element filter, with the
    /// double-negated predicate routed down the postfix (non-conjunction)
    /// path agreeing bit for bit, and guard step totals exact (one step
    /// per element, holes included).
    #[test]
    fn list_select_batched_equals_scalar_filter(
        seed in 0u64..4000,
        notes in 1usize..120,
    ) {
        let (d, list) = holey_song(seed, notes);
        let cls = d.store.class(d.class);
        let expr = PredExpr::eq("pitch", "A")
            .or(PredExpr::cmp("duration", aqua_pattern::CmpOp::Ge, 6));
        let p = expr.clone().compile(d.class, cls).unwrap();
        // Same predicate, forced off the fused conjunction fast path.
        let pnn = expr.not().not().compile(d.class, cls).unwrap();

        let expected = List::from_elems(
            list.elems()
                .iter()
                .filter(|e| e.oid().is_some_and(|o| p.eval(&d.store, o)))
                .cloned()
                .collect(),
        );
        prop_assert_eq!(&lops::select(&d.store, &list, &p), &expected);
        prop_assert_eq!(&lops::select(&d.store, &list, &pnn), &expected);

        let g = ExecGuard::new(Budget::unlimited());
        let guarded = lops::select_guarded(&d.store, &list, &p, Some(&g)).unwrap();
        prop_assert_eq!(&guarded, &expected);
        prop_assert_eq!(g.snapshot().steps, list.len() as u64,
            "exactly one step per element, holes included");
    }

    /// Batched tree `select` ≡ itself under the postfix path, with
    /// exact guard accounting over the node arena.
    #[test]
    fn tree_select_conjunction_equals_postfix(
        seed in 0u64..4000,
        nodes in 1usize..80,
    ) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("a", 2), ("x", 3)])
            .generate();
        let cls = d.store.class(d.class);
        let expr = PredExpr::eq("label", "a");
        let p = expr.clone().compile(d.class, cls).unwrap();
        let pnn = expr.not().not().compile(d.class, cls).unwrap();

        let conj = tops::select(&d.store, &d.tree, &p);
        let postfix = tops::select(&d.store, &d.tree, &pnn);
        prop_assert_eq!(&conj, &postfix, "conjunction vs postfix path");

        let g = ExecGuard::new(Budget::unlimited());
        let guarded = tops::select_guarded(&d.store, &d.tree, &p, Some(&g)).unwrap();
        prop_assert_eq!(&guarded, &conj);
        prop_assert_eq!(g.snapshot().steps, d.tree.len() as u64,
            "one step per node of the arena");
    }

    /// Interval-column candidate generation ≡ the pointer-walk DFS: the
    /// matcher fed by `preorder_hint` finds exactly the matches the
    /// hint-less walk finds, for every match-config shape.
    #[test]
    fn tree_match_hint_equals_pointer_walk(
        seed in 0u64..4000,
        nodes in 1usize..80,
    ) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("d", 1), ("a", 3), ("x", 6)])
            .generate();
        let env = PredEnv::with_default_attr("label");
        for pat in ["d(?*)", "d(?* a ?*)", "?(?* d(?*) ?*)"] {
            let cp = parse_tree_pattern(pat, &env)
                .unwrap()
                .compile(d.class, d.store.class(d.class))
                .unwrap();
            for cfg in [MatchConfig::default(), MatchConfig::first_per_root()] {
                let hinted = TreeMatcher::new(&cp, &d.tree, &d.store).find_matches(&cfg);
                let walk = PtrWalk(&d.tree);
                let walked = TreeMatcher::new(&cp, &walk, &d.store).find_matches(&cfg);
                prop_assert_eq!(&hinted, &walked, "pattern {} diverged", pat);
            }
        }
    }

    /// Chunked pool runs ≡ serial at thread counts 1 and 4, over the
    /// batched member operators.
    #[test]
    fn chunked_parallel_equals_serial(
        seed in 0u64..3000,
        members in 1usize..10,
        notes in 1usize..40,
    ) {
        let ds = SongGen::new(seed).notes(notes).generate_set(members);
        let set = ListSet::from_lists(ds.songs.clone());
        let re = aqua_pattern::list::Sym::pred(PredExpr::eq("pitch", "A"))
            .then(aqua_pattern::list::Sym::any());
        let p = aqua_pattern::list::ListPattern::unanchored(
            re, ds.class, ds.store.class(ds.class)).unwrap();
        let serial = set.sub_select(&ds.store, &p, MatchMode::Nonoverlapping);
        for t in [1usize, 4] {
            let par = set
                .par_sub_select(&ds.store, &p, MatchMode::Nonoverlapping, t, None)
                .unwrap();
            prop_assert_eq!(&par, &serial, "list sub_select diverged at {} threads", t);
        }

        let f = RandomTreeGen::new(seed)
            .nodes(notes.max(2))
            .label_weights(&[("a", 1), ("x", 3)])
            .generate_forest(members);
        let tset = TreeSet::from_trees(f.trees);
        let pred = PredExpr::eq("label", "a")
            .compile(f.class, f.store.class(f.class)).unwrap();
        let serial_sel = tset.select(&f.store, &pred);
        for t in [1usize, 4] {
            let par = tset.par_select(&f.store, &pred, t);
            prop_assert_eq!(&par, &serial_sel, "tree select diverged at {} threads", t);
        }
    }
}

/// Unique scratch directory for durable-store tests.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aqua-batched-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Recovery rebuilds the columnar views from the replayed arenas:
/// intervals, preorder, and merkle roots all match the pre-crash tree,
/// and batched operators over the recovered store answer identically.
#[test]
fn recovery_rebuilds_columnar_views() {
    let dir = temp_dir("cols");
    let cfg = DurableConfig::default();
    let (mut ds, rep) = DurableStore::open(&dir, cfg.clone()).unwrap();
    assert!(rep.clean());

    let class = ds.define_class(SongGen::class_def()).unwrap();
    let oids: Vec<Oid> = (0..40)
        .map(|i| {
            ds.insert(
                class,
                vec![
                    aqua_object::Value::str(["A", "B", "C"][i % 3]),
                    aqua_object::Value::Int((i % 8) as i64 + 1),
                ],
            )
            .unwrap()
        })
        .collect();

    // A small multi-level tree over the first OIDs.
    let mut tree = Tree::leaf(oids[0]);
    for (i, &oid) in oids.iter().enumerate().skip(1).take(12) {
        let parent = aqua_algebra::tree::NodeId(((i - 1) / 2) as u32);
        tree = tree
            .insert_child(parent, usize::MAX, &Tree::leaf(oid))
            .unwrap();
    }
    ds.create_tree("t", tree.clone()).unwrap();
    ds.create_list("l").unwrap();
    for &oid in &oids {
        ds.list_push("l", oid).unwrap();
    }
    ds.sync().unwrap();

    let pred = PredExpr::eq("pitch", "A")
        .compile(class, ds.store().class(class))
        .unwrap();
    let before_cols: Vec<(u32, u32)> = tree.cols().intervals();
    let before_preorder = tree.cols().preorder().to_vec();
    let before_troot = merkle::tree_root(ds.store(), &tree);
    let before_select = lops::select(ds.store(), &ds.lists()["l"], &pred);

    drop(ds);
    let (ds2, rep2) = DurableStore::open(&dir, cfg).unwrap();
    assert!(rep2.clean(), "clean shutdown recovers clean");

    let recovered = &ds2.trees()["t"];
    let rcols: &TreeCols = recovered.cols();
    assert_eq!(rcols.intervals(), before_cols, "interval columns rebuilt");
    assert_eq!(
        rcols.preorder(),
        &before_preorder[..],
        "preorder column rebuilt"
    );
    assert_eq!(
        merkle::tree_root(ds2.store(), recovered),
        before_troot,
        "merkle root unchanged by the columnar layout"
    );
    let pred2 = PredExpr::eq("pitch", "A")
        .compile(class, ds2.store().class(class))
        .unwrap();
    assert_eq!(
        lops::select(ds2.store(), &ds2.lists()["l"], &pred2),
        before_select,
        "batched select identical on the recovered store"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A multi-member `ForestPlan` run performs zero pattern compilations
/// inside the member loop: the cache sees exactly one miss for the
/// pattern, execution adds no lookups, and the predicate's batched
/// program is one shared allocation across calls.
#[test]
fn forest_plan_member_loop_hits_pattern_cache() {
    use aqua_optimizer::{Catalog, Optimizer};

    let members = 6usize;
    let f = RandomTreeGen::new(11)
        .nodes(40)
        .label_weights(&[("d", 1), ("x", 4)])
        .generate_forest(members);
    let set = TreeSet::from_trees(f.trees);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("d(?*)", &env).unwrap();

    let cache = PatternCache::new();
    let _compiled = cache
        .tree(&pattern, f.class, f.store.class(f.class))
        .unwrap();
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.lookups(), 1);

    // Bulk entry points share the cached compilation across members and
    // across serial/parallel calls.
    let cfg = MatchConfig::first_per_root();
    let serial = set
        .sub_select_pattern(&f.store, f.class, &pattern, &cfg, Some(&cache))
        .unwrap();
    let par = set
        .par_sub_select_pattern(&f.store, f.class, &pattern, &cfg, 4, None, Some(&cache))
        .unwrap();
    assert_eq!(serial, par);
    assert_eq!(cache.misses(), 1, "bulk calls never recompile");
    assert_eq!(
        cache.lookups(),
        3,
        "one lookup per bulk call, not per member"
    );
    assert!(cache.hits() >= 2);

    // A ForestPlan execution over all members: plans compile once at
    // plan time; executing N members adds zero cache traffic.
    let catalogs: Vec<Catalog<'_>> = (0..members)
        .map(|_| Catalog::new(&f.store, f.class))
        .collect();
    let opt = Optimizer::new(&catalogs[0]);
    let sizes: Vec<usize> = set.members().iter().map(|t| t.len()).collect();
    let (plan, mut explain) = opt.plan_forest_sub_select(&pattern, &sizes, 4).unwrap();
    let lookups_before = cache.lookups();
    let out = plan
        .execute_guarded(&catalogs, &set, &cfg, None, &mut explain)
        .unwrap();
    assert_eq!(
        cache.lookups(),
        lookups_before,
        "ForestPlan member loop performs no cache lookups or compiles"
    );
    let flat: Vec<(usize, Tree)> = serial;
    assert_eq!(out, flat, "planned forest run ≡ bulk serial run");

    // The predicate-level batch program is compiled once and shared.
    let pred = PredExpr::eq("label", "d")
        .compile(f.class, f.store.class(f.class))
        .unwrap();
    let a = pred.batch().clone();
    let b = pred.batch().clone();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "batch program cached in Pred"
    );
    let pred_clone = pred.clone();
    assert!(
        std::sync::Arc::ptr_eq(&a, pred_clone.batch()),
        "clones share the compiled program"
    );
}

/// Deadline and cancellation verdicts land within one chunk of the
/// batched charge, with progress still exact.
#[test]
fn batched_guard_trips_within_one_chunk() {
    let d = SongGen::new(3).notes(3000).generate();
    let p = PredExpr::eq("pitch", "A")
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let program = BatchProgram::compile(&p);
    let oids = d.song.oids();

    // Pre-cancelled token: the first chunked charge must observe it.
    let token = CancelToken::new();
    token.cancel();
    let g = ExecGuard::with_cancel(Budget::unlimited(), token);
    match program.eval(&d.store, &oids, Some(&g)).unwrap_err() {
        GuardError::Cancelled { progress } => {
            assert!(
                progress.steps <= CHUNK as u64,
                "cancel observed within one chunk: {}",
                progress.steps
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // Already-expired deadline: same bound.
    let g = ExecGuard::new(
        Budget::unlimited().with_deadline_at(Deadline::at(std::time::Instant::now())),
    );
    std::thread::sleep(Duration::from_millis(1));
    match program.eval(&d.store, &oids, Some(&g)).unwrap_err() {
        GuardError::Timeout { progress, .. } => {
            assert!(
                progress.steps <= CHUNK as u64,
                "deadline observed within one chunk: {}",
                progress.steps
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}
