//! Property suite: the parallel bulk operators are *observationally
//! serial*. AQUA stability (§1) fixes result order by input order, so a
//! fleet that shards members over workers and merges by member index
//! must return byte-identical answers at every thread count — including
//! under budget exhaustion, cancellation, and injected index faults.

use std::sync::Mutex;

use aqua_algebra::bulk::{ListSet, TreeSet};
use aqua_algebra::tree::ops as tops;
use aqua_guard::{failpoint, Budget, GuardError, SharedGuard};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, CostModel, Explain, Optimizer};
use aqua_pattern::list::{ListPattern, MatchMode};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;

/// Thread counts swept by every equivalence property: inline serial,
/// fewer workers than members, more workers than members by default.
/// `AQUA_TEST_THREADS=<n>` (the CI matrix) pins the sweep to `[1, n]`
/// so each matrix leg genuinely runs at its advertised degree.
fn threads() -> Vec<usize> {
    match std::env::var("AQUA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => vec![1, 2, 3, 8],
    }
}

/// The failpoint registry is process-global; serialize the tests that
/// arm points so parallel test threads don't observe each other's
/// faults.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAILPOINTS.lock().unwrap_or_else(|e| e.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree fleet ≡ serial loop: `sub_select`, `split`, `select`, and
    /// `apply` over a random forest, at every thread count.
    #[test]
    fn tree_fleet_is_observationally_serial(
        seed in 0u64..5000,
        nodes in 2usize..60,
        members in 1usize..9,
    ) {
        let f = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("u", 1), ("x", 4)])
            .generate_forest(members);
        let set = TreeSet::from_trees(f.trees);
        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
        let compiled = pattern.compile(f.class, f.store.class(f.class)).unwrap();
        let cfg = MatchConfig::default();

        let serial = set.sub_select(&f.store, &compiled, &cfg).unwrap();
        let serial_split = set.split(&f.store, &compiled, &cfg).unwrap();
        let pred = aqua_pattern::PredExpr::eq("label", "u")
            .compile(f.class, f.store.class(f.class)).unwrap();
        let serial_select = set.select(&f.store, &pred);
        let serial_apply = set.apply(|o| o);

        for &t in &threads() {
            prop_assert_eq!(
                &set.par_sub_select(&f.store, &compiled, &cfg, t, None).unwrap(),
                &serial, "sub_select diverged at {} threads", t
            );
            let par_split = set.par_split(&f.store, &compiled, &cfg, t, None).unwrap();
            prop_assert_eq!(par_split.len(), serial_split.len());
            for ((ia, a), (ib, b)) in par_split.iter().zip(&serial_split) {
                prop_assert_eq!(ia, ib);
                prop_assert_eq!(&a.context, &b.context);
                prop_assert_eq!(&a.matched, &b.matched);
                prop_assert_eq!(&a.descendants, &b.descendants);
            }
            prop_assert_eq!(
                &set.par_select(&f.store, &pred, t),
                &serial_select, "select diverged at {} threads", t
            );
            let par_apply = set.par_apply(|o| o, t);
            prop_assert_eq!(
                par_apply.members(),
                serial_apply.members(), "apply diverged at {} threads", t
            );
        }
    }

    /// List fleet ≡ serial loop: `find_matches`, `sub_select`, and
    /// `select_members` over a random song set, at every thread count.
    #[test]
    fn list_fleet_is_observationally_serial(
        seed in 0u64..5000,
        notes in 4usize..80,
        members in 1usize..9,
    ) {
        let d = SongGen::new(seed)
            .notes(notes)
            .plant(vec!["A", "B"], 2)
            .generate_set(members);
        let set = ListSet::from_lists(d.songs);
        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern("[A B]", &env).unwrap();
        let p = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();

        let serial_fm = set.find_matches(&d.store, &p, MatchMode::All);
        let serial_ss = set.sub_select(&d.store, &p, MatchMode::Nonoverlapping);
        let serial_sm = set.select_members(&d.store, &p);

        for &t in &threads() {
            prop_assert_eq!(
                &set.par_find_matches(&d.store, &p, MatchMode::All, t, None).unwrap(),
                &serial_fm, "find_matches diverged at {} threads", t
            );
            prop_assert_eq!(
                &set.par_sub_select(&d.store, &p, MatchMode::Nonoverlapping, t, None).unwrap(),
                &serial_ss, "sub_select diverged at {} threads", t
            );
            prop_assert_eq!(
                &set.par_select_members(&d.store, &p, t),
                &serial_sm, "select_members diverged at {} threads", t
            );
        }
    }

    /// A pre-cancelled fleet terminates with `Cancelled` at every thread
    /// count, and the merged progress snapshot is coherent (bounded by
    /// the total work the forest could ever cost).
    #[test]
    fn cancelled_fleet_terminates_with_typed_error(
        seed in 0u64..1000,
        members in 1usize..7,
        threads in 1usize..9,
    ) {
        let f = RandomTreeGen::new(seed).nodes(40).generate_forest(members);
        let set = TreeSet::from_trees(f.trees);
        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern("a(?*)", &env).unwrap();
        let compiled = pattern.compile(f.class, f.store.class(f.class)).unwrap();

        let token = aqua_guard::CancelToken::new();
        token.cancel();
        let fleet = SharedGuard::cancellable(token);
        let err = set
            .par_sub_select(&f.store, &compiled, &MatchConfig::default(), threads, Some(&fleet))
            .expect_err("pre-cancelled fleet must not produce a result");
        match err.as_guard() {
            Some(GuardError::Cancelled { .. }) => {}
            other => prop_assert!(false, "expected Cancelled, got {:?}", other),
        }
    }

    /// A tiny step budget over a large forest terminates with
    /// `BudgetExceeded`, and the merged progress is coherent: at least
    /// the limit was spent, and the overshoot is bounded by one batched
    /// flush per worker — not by forest size.
    #[test]
    fn exhausted_fleet_reports_merged_progress(
        seed in 0u64..1000,
        threads in 1usize..9,
    ) {
        const LIMIT: u64 = 64;
        let f = RandomTreeGen::new(seed).nodes(400).generate_forest(8);
        let set = TreeSet::from_trees(f.trees);
        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern("?(?*)", &env).unwrap();
        let compiled = pattern.compile(f.class, f.store.class(f.class)).unwrap();

        let fleet = SharedGuard::new(Budget::unlimited().with_steps(LIMIT));
        let err = set
            .par_sub_select(&f.store, &compiled, &MatchConfig::default(), threads, Some(&fleet))
            .expect_err("64 steps cannot cover a 3200-node forest");
        match err.as_guard() {
            Some(GuardError::BudgetExceeded { limit, progress, .. }) => {
                prop_assert_eq!(*limit, LIMIT);
                prop_assert!(progress.steps >= LIMIT, "merged steps {} < limit", progress.steps);
                // Each worker checks its guard at least every
                // `sync_period = min(CHECK_PERIOD, LIMIT)` = 64 steps.
                let bound = LIMIT + 8 * LIMIT;
                prop_assert!(
                    progress.steps <= bound,
                    "overshoot unbounded: {} > {}", progress.steps, bound
                );
            }
            other => prop_assert!(false, "expected BudgetExceeded, got {:?}", other),
        }
    }
}

/// Build one `TreeNodeIndex`-backed catalog per forest member.
fn per_member_catalogs<'a>(
    store: &'a aqua_object::ObjectStore,
    class: aqua_object::ClassId,
    idxs: &'a [TreeNodeIndex],
    stats: &'a ColumnStats,
) -> Vec<Catalog<'a>> {
    idxs.iter()
        .map(|idx| {
            let mut c = Catalog::new(store, class);
            c.add_tree_index(idx).add_stats(stats);
            c
        })
        .collect()
}

/// An indexed forest plan under an injected index fault: every member
/// degrades to the naive scan, the merged answer equals the serial naive
/// answer, and `Explain` records both the parallel degree and the
/// per-member fallbacks.
#[test]
fn parallel_indexed_plan_degrades_on_index_fault() {
    let _serial = lock();
    let f = RandomTreeGen::new(17)
        .nodes(600)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate_forest(6);
    let set = TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats = per_member_catalogs(&f.store, f.class, &idxs, &stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();

    // A near-zero spawn cost forces a real fleet so the fault is hit
    // from worker threads, not the inline path.
    let cost = CostModel {
        worker_spawn: 0.001,
        ..CostModel::default()
    };
    let opt = Optimizer::with_cost_model(&cats[0], cost);
    let sizes: Vec<usize> = set.members().iter().map(|t| t.len()).collect();
    let (plan, planned) = opt.plan_forest_sub_select(&pattern, &sizes, 8).unwrap();
    assert!(
        plan.plan.is_indexed(),
        "skewed labels should favour the index"
    );
    assert!(
        planned.chosen_degree() >= 2,
        "want a fleet: {}",
        planned.chosen_degree()
    );

    let compiled = pattern.compile(f.class, f.store.class(f.class)).unwrap();
    let naive: Vec<(usize, aqua_algebra::Tree)> = set
        .members()
        .iter()
        .enumerate()
        .flat_map(|(i, t)| {
            tops::sub_select(&f.store, t, &compiled, &cfg)
                .unwrap()
                .into_iter()
                .map(move |m| (i, m))
        })
        .collect();

    let mut explain = Explain::default();
    let _fp = failpoint::scoped(aqua_store::TREE_INDEX_PROBE, "tree index probe down");
    let got = plan
        .execute_guarded(&cats, &set, &cfg, None, &mut explain)
        .expect("fault must degrade, not fail");
    assert_eq!(
        got, naive,
        "degraded fleet must equal the serial naive answer"
    );
    assert!(explain.fell_back());
    assert!(
        explain.parallelism >= 2,
        "explain records the fleet: {}",
        explain.parallelism
    );
    // Fallbacks are merged in member order whatever the schedule.
    let tagged: Vec<usize> = explain
        .fallbacks
        .iter()
        .map(|s| {
            s.strip_prefix("member ")
                .and_then(|r| r.split(':').next())
                .and_then(|n| n.parse().ok())
                .expect("fallback tagged with member index")
        })
        .collect();
    let mut sorted = tagged.clone();
    sorted.sort_unstable();
    assert_eq!(tagged, sorted, "fallbacks in member order: {tagged:?}");
    assert_eq!(tagged.len(), set.len(), "every member degraded once");
}

/// The same indexed forest plan without a fault: identical answer, no
/// fallbacks — and re-running it at several degrees never changes a byte.
#[test]
fn forest_plan_is_deterministic_across_degrees() {
    let _serial = lock();
    let f = RandomTreeGen::new(23)
        .nodes(300)
        .label_weights(&[("u", 1), ("x", 20)])
        .generate_forest(5);
    let set = TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats = per_member_catalogs(&f.store, f.class, &idxs, &stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let opt = Optimizer::new(&cats[0]);
    let sizes: Vec<usize> = set.members().iter().map(|t| t.len()).collect();

    let mut reference: Option<Vec<(usize, aqua_algebra::Tree)>> = None;
    for max_threads in [1usize, 2, 8] {
        let (mut plan, _) = opt
            .plan_forest_sub_select(&pattern, &sizes, max_threads)
            .unwrap();
        // Pin the degree directly too, so the sweep covers real fleets
        // even where the cost model would stay serial.
        plan.degree = max_threads;
        let mut explain = Explain::default();
        let got = plan
            .execute_guarded(&cats, &set, &cfg, None, &mut explain)
            .unwrap();
        assert!(!explain.fell_back(), "no fault, no fallback");
        assert_eq!(explain.chosen_degree(), max_threads);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "degree {max_threads} diverged"),
        }
    }
}

/// Scatter-gather execution over a sharded routing is byte-identical to
/// the unsharded fleet (and hence to the serial loop) at every shard
/// count, and `Explain` stamps the dispatched batches.
#[test]
fn scatter_gather_equals_unsharded_at_every_shard_count() {
    let _serial = lock();
    let f = RandomTreeGen::new(41)
        .nodes(250)
        .label_weights(&[("u", 1), ("x", 10)])
        .generate_forest(9);
    let set = TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats = per_member_catalogs(&f.store, f.class, &idxs, &stats);

    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("u(?*)", &env).unwrap();
    let cfg = MatchConfig::first_per_root();
    let opt = Optimizer::new(&cats[0]);
    let sizes: Vec<usize> = set.members().iter().map(|t| t.len()).collect();

    let (plan, _) = opt.plan_forest_sub_select(&pattern, &sizes, 4).unwrap();
    let mut explain = Explain::default();
    let reference = plan
        .execute_guarded(&cats, &set, &cfg, None, &mut explain)
        .unwrap();

    // Members live at paths "m<i>/doc"; the router keys on the top
    // segment, exactly as a ShardedStore would route the extents.
    for shards in [1usize, 2, 4, 8] {
        let router = aqua_store::ShardRouter::new(shards);
        let (plan, _) = opt
            .plan_forest_sub_select_sharded(&pattern, &sizes, 4, shards)
            .unwrap();
        let fleet = SharedGuard::new(Budget::unlimited());
        let sink = aqua_guard::Metrics::new();
        assert!(fleet.attach_metrics(sink.clone()));
        let mut explain = Explain::default();
        let got = plan
            .execute_scatter_gather(
                &cats,
                &set,
                &cfg,
                shards,
                |i| router.route_name(&format!("m{i}/doc")),
                Some(&fleet),
                &mut explain,
            )
            .unwrap();
        assert_eq!(got, reference, "{shards} shards diverged");
        assert!(explain.scattered(), "batches stamped into explain");
        assert!(explain.shard_batches.len() <= shards);
        assert_eq!(sink.scatter_queries.get(), 1);
        assert_eq!(
            sink.scatter_batches.get(),
            explain.shard_batches.len() as u64
        );
        assert!(!explain.fell_back());
    }
}
