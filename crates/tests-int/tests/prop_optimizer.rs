//! Property suite: rewrite correctness — every plan the optimizer can
//! choose returns exactly the naive operator's result (the rewrites of
//! §4 are equivalences, not approximations).

use aqua_algebra::list::ops as lops;
use aqua_algebra::tree::ops as tops;
use aqua_object::{AttrId, ObjectStore, Value};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::list::{ListPattern, MatchMode};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_store::{AttrIndex, ColumnStats, ListPosIndex, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;

const TREE_PATTERNS: &[&str] = &[
    "d",
    "d(?*)",
    "d(!?* a !?*)",
    "a(b ?*)",
    "d(?*)|c(?*)",
    "b(d(?*) ?*)",
];

const LIST_PATTERNS: &[&str] = &["[A]", "[A ? F]", "[A B]", "[A !? F]", "[A [[B|C]] ?]"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree sub_select: indexed plan ≡ full scan ≡ naive operator.
    #[test]
    fn tree_plans_equivalent(seed in 0u64..5000, nodes in 2usize..120, pi in 0usize..TREE_PATTERNS.len()) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("a", 4), ("b", 3), ("c", 2), ("d", 1)])
            .generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx).add_stats(&stats);
        let opt = Optimizer::new(&cat);

        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern(TREE_PATTERNS[pi], &env).unwrap();
        let cfg = MatchConfig::first_per_root();

        let (plan, _explain) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
        let fast = plan.execute(&cat, &d.tree, &cfg).unwrap();

        let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
        let naive = tops::sub_select(&d.store, &d.tree, &compiled, &cfg).unwrap();

        prop_assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            prop_assert!(a.structural_eq(b));
        }
    }

    /// Tree split: the same plans execute as `split` and agree with the
    /// naive `split_pieces` decomposition (pieces reassemble too).
    #[test]
    fn split_plans_equivalent(seed in 0u64..5000, nodes in 2usize..80, pi in 0usize..TREE_PATTERNS.len()) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("a", 4), ("b", 3), ("c", 2), ("d", 1)])
            .generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx).add_stats(&stats);
        let opt = Optimizer::new(&cat);
        let env = PredEnv::with_default_attr("label");
        let pattern = parse_tree_pattern(TREE_PATTERNS[pi], &env).unwrap();
        let cfg = MatchConfig::first_per_root();

        let (plan, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
        let fast = plan.execute_split(&cat, &d.tree, &cfg).unwrap();
        let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
        let naive =
            aqua_algebra::tree::split::split_pieces(&d.store, &d.tree, &compiled, &cfg).unwrap();
        prop_assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            prop_assert!(a.matched.structural_eq(&b.matched));
            prop_assert!(a.reassemble().structural_eq(&d.tree));
        }
    }

    /// Tree select: indexed walk ≡ naive walk (forest-for-forest).
    #[test]
    fn tree_select_plans_equivalent(seed in 0u64..5000, nodes in 2usize..120) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("u", 1), ("x", 6)])
            .generate();
        let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
        let sidx = aqua_store::StructuralIndex::build(&d.tree);
        let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_tree_index(&idx).add_structural_index(&sidx).add_stats(&stats);
        let opt = Optimizer::new(&cat);
        let pred = PredExpr::eq("label", "u");
        let (plan, _) = opt.plan_tree_select(&pred, d.tree.len()).unwrap();
        let fast = plan.execute(&cat, &d.tree).unwrap();
        let compiled = pred.compile(d.class, d.store.class(d.class)).unwrap();
        let naive = tops::select(&d.store, &d.tree, &compiled);
        prop_assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            prop_assert!(a.structural_eq(b));
        }
    }

    /// Set select: indexed plan ≡ extent scan, any conjunct mix.
    #[test]
    fn set_plans_equivalent(seed in 0u64..5000, n in 1usize..300, v1 in 0i64..5, v2 in 0i64..3) {
        let mut store = ObjectStore::new();
        let class = store.define_class(aqua_object::ClassDef::new(
            "P",
            vec![
                aqua_object::AttrDef::stored("a", aqua_object::AttrType::Int),
                aqua_object::AttrDef::stored("b", aqua_object::AttrType::Int),
            ],
        ).unwrap()).unwrap();
        let mut rng_state = seed;
        let mut next = || { rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (rng_state >> 33) as i64 };
        for _ in 0..n {
            let a = next().rem_euclid(5);
            let b = next().rem_euclid(3);
            store.insert_named("P", &[("a", Value::Int(a)), ("b", Value::Int(b))]).unwrap();
        }
        let ia = AttrIndex::build(&store, class, AttrId(0));
        let sa = ColumnStats::build(&store, class, AttrId(0));
        let mut cat = Catalog::new(&store, class);
        cat.add_attr_index(&ia).add_stats(&sa);
        let opt = Optimizer::new(&cat);

        let pred = PredExpr::eq("a", v1).and(PredExpr::eq("b", v2));
        let (plan, _) = opt.plan_set_select(&pred).unwrap();
        let fast = plan.execute(&cat).unwrap();

        let compiled = pred.compile(class, store.class(class)).unwrap();
        let naive: Vec<_> = store.extent(class).iter().copied()
            .filter(|&o| compiled.eval(&store, o)).collect();
        prop_assert_eq!(fast, naive);
    }

    /// List sub_select: positional plan ≡ full scan ≡ naive operator.
    #[test]
    fn list_plans_equivalent(seed in 0u64..5000, notes in 2usize..200, pi in 0usize..LIST_PATTERNS.len()) {
        let d = SongGen::new(seed).notes(notes).generate();
        let idx = ListPosIndex::build(&d.store, &d.song, d.class, AttrId(0));
        let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
        let mut cat = Catalog::new(&d.store, d.class);
        cat.add_list_index(&idx).add_stats(&stats);
        let opt = Optimizer::new(&cat);

        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern(LIST_PATTERNS[pi], &env).unwrap();
        let (plan, _) = opt.plan_list_sub_select(&re, s, e, d.song.len()).unwrap();
        let fast = plan.execute(&cat, &d.song).unwrap();

        let pattern = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let naive = lops::find_matches(&d.store, &d.song, &pattern, MatchMode::All);
        prop_assert_eq!(fast, naive);
    }
}

/// Deterministic check that the rewrites *do* fire when profitable (the
/// property tests above would pass even if the optimizer always chose
/// the naive plan).
#[test]
fn rules_fire_on_selective_workloads() {
    // Large tree, rare root label with statistics: indexed plan must win.
    let d = RandomTreeGen::new(1)
        .nodes(20_000)
        .label_weights(&[("d", 1), ("x", 999)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);
    let env = PredEnv::with_default_attr("label");
    let pattern = parse_tree_pattern("d(?*)", &env).unwrap();
    let (plan, explain) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(plan.is_indexed(), "explain:\n{explain}");
    assert!(explain.used_rule("decompose"));

    // Unselective probe (every node is a `d`): the index narrows
    // nothing, so the full scan must win.
    let dense = RandomTreeGen::new(2)
        .nodes(1000)
        .label_weights(&[("d", 1)])
        .generate();
    let idx2 = TreeNodeIndex::build(&dense.store, &dense.tree, dense.class, AttrId(0));
    let stats2 = ColumnStats::build(&dense.store, dense.class, AttrId(0));
    let mut cat2 = Catalog::new(&dense.store, dense.class);
    cat2.add_tree_index(&idx2).add_stats(&stats2);
    let opt2 = Optimizer::new(&cat2);
    let (plan2, _) = opt2
        .plan_tree_sub_select(&pattern, dense.tree.len())
        .unwrap();
    assert!(!plan2.is_indexed());
}
