//! Property suite for the observability layer: the counters a metrics
//! sink accumulates must cohere with what execution actually did — and
//! with the guard's own progress accounting — at every scale proptest
//! throws at them. Four invariant families:
//!
//! 1. *Engine agreement*: for a pure Pike-VM run, `vm_steps` equals the
//!    guard's `Progress.steps` exactly (the same increments feed both),
//!    and every `obs_snapshot` stamps `engine_steps` from the guard.
//! 2. *Counter sanity*: visits ≥ matches, candidates ≥ pruned,
//!    cache hits + misses == lookups.
//! 3. *Merge algebra*: per-worker snapshots merge field-wise, so any
//!    merge order yields the same total.
//! 4. *Disarmed honesty*: a guard without a sink reports all-zero
//!    detail counters while still stamping engine progress.

use aqua_algebra::tree::ops as tops;
use aqua_guard::{Budget, ExecGuard, Metrics, MetricsSnapshot, SharedGuard};
use aqua_object::AttrId;
use aqua_optimizer::{Catalog, Explain, Optimizer};
use aqua_pattern::nfa::{LeafId, Nfa};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::pike;
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::{PatternCache, PredExpr, Re};
use aqua_store::{ColumnStats, TreeNodeIndex};
use aqua_workload::random_tree::RandomTreeGen;
use proptest::prelude::*;

/// Compile a `Re<char>` the way the pike unit tests do: leaves intern
/// to their index, `?` matches anything.
fn compile_chars(re: &Re<char>) -> (Nfa, Vec<char>) {
    let mut leaves = Vec::new();
    let nfa = Nfa::compile(re, &mut |c: &char| {
        leaves.push(*c);
        (LeafId(leaves.len() as u32 - 1), false)
    });
    (nfa, leaves)
}

/// Run an armed guarded `sub_select` over a random tree and return
/// (snapshot, result size, guard steps).
fn armed_sub_select(seed: u64, nodes: usize) -> (MetricsSnapshot, usize, u64) {
    let d = RandomTreeGen::new(seed)
        .nodes(nodes)
        .label_weights(&[("d", 1), ("a", 3), ("x", 6)])
        .generate();
    let cp = parse_tree_pattern("d(?* a ?*)", &PredEnv::with_default_attr("label"))
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let guard = ExecGuard::new(Budget::unlimited()).with_metrics(Metrics::new());
    let got = tops::sub_select_guarded(
        &d.store,
        &d.tree,
        &cp,
        &MatchConfig::first_per_root(),
        Some(&guard),
    )
    .unwrap();
    (guard.obs_snapshot(), got.len(), guard.snapshot().steps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pure Pike-VM run: the sink's `vm_steps` and the guard's
    /// `Progress.steps` are fed by the very same increments, so they
    /// agree exactly — and `obs_snapshot` stamps that number into
    /// `engine_steps`.
    #[test]
    fn pike_vm_steps_equal_guard_progress(
        picks in proptest::collection::vec(0usize..3, 0..40),
    ) {
        let input: Vec<char> = picks.iter().map(|&i| ['a', 'b', 'x'][i]).collect();
        let re = Re::Leaf('?').star().then(Re::Leaf('a')).then(Re::Leaf('?').star());
        let (nfa, leaves) = compile_chars(&re);
        let guard = ExecGuard::new(Budget::unlimited()).with_metrics(Metrics::new());
        let ends = pike::accepting_ends_guarded(
            &nfa,
            input.len(),
            &mut |l, p| leaves[l.0 as usize] == input[p] || leaves[l.0 as usize] == '?',
            Some(&guard),
        ).unwrap();
        let snap = guard.obs_snapshot();
        let progress = guard.snapshot();
        prop_assert!(progress.steps > 0, "simulation always takes at least one step");
        prop_assert_eq!(snap.vm_steps, progress.steps,
            "vm_steps and guard steps mirror the same increments");
        prop_assert_eq!(snap.engine_steps, progress.steps);
        prop_assert!(snap.vm_state_set.count() > 0);
        prop_assert!(ends.len() <= input.len() + 1);
    }

    /// Tree-matcher counters bound each other: you cannot find more
    /// matches than you made node visits or considered candidates, and
    /// pruning never exceeds the candidate count.
    #[test]
    fn matcher_visits_bound_matches(seed in 0u64..4000, nodes in 2usize..120) {
        let (snap, found, _) = armed_sub_select(seed, nodes);
        prop_assert_eq!(snap.matches_found, found as u64,
            "matches_found counts exactly the emitted matches");
        prop_assert!(snap.match_visits >= snap.matches_found,
            "visits {} < matches {}", snap.match_visits, snap.matches_found);
        prop_assert!(snap.match_candidates >= snap.matches_found);
        prop_assert!(snap.match_candidates >= snap.match_candidates_pruned);
    }

    /// The pattern cache balances its books: hits + misses == lookups,
    /// on its own counters and on the mirrored metrics sink alike.
    #[test]
    fn cache_hits_plus_misses_equal_lookups(
        picks in proptest::collection::vec(0usize..4, 1..24),
    ) {
        let d = RandomTreeGen::new(7).nodes(8).generate();
        let cache = PatternCache::new();
        let sink = Metrics::new();
        prop_assert!(cache.attach_metrics(sink.clone()));
        let env = PredEnv::with_default_attr("label");
        let pool = ["a", "a(?*)", "?(a ?*)", "d(?* a ?*)"];
        for &i in &picks {
            let p = parse_tree_pattern(pool[i], &env).unwrap();
            cache.tree(&p, d.class, d.store.class(d.class)).unwrap();
        }
        prop_assert_eq!(cache.lookups(), picks.len() as u64);
        prop_assert_eq!(cache.hits() + cache.misses(), cache.lookups());
        let snap = sink.snapshot();
        prop_assert_eq!(snap.cache_lookups, cache.lookups());
        prop_assert_eq!(snap.cache_hits + snap.cache_misses, snap.cache_lookups);
    }

    /// Per-worker snapshots merge to the same total whatever the order:
    /// three distinct armed runs, folded forwards and backwards.
    #[test]
    fn snapshot_merge_is_order_independent(
        seeds in proptest::collection::vec(0u64..4000, 3),
        nodes in 2usize..60,
    ) {
        let snaps: Vec<MetricsSnapshot> = seeds
            .iter()
            .map(|&s| armed_sub_select(s, nodes).0)
            .collect();
        let mut fwd = MetricsSnapshot::default();
        for s in &snaps {
            fwd.merge(s);
        }
        let mut rev = MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(&fwd, &rev, "merge must be order-independent");
        let total: u64 = snaps.iter().map(|s| s.match_visits).sum();
        prop_assert_eq!(fwd.match_visits, total, "merge sums, never clamps");
        prop_assert_eq!(
            fwd.vm_state_set.count(),
            snaps.iter().map(|s| s.vm_state_set.count()).sum::<u64>()
        );
    }

    /// A guard without a sink is honest about it: every detail counter
    /// zero, engine progress still stamped from the guard.
    #[test]
    fn disarmed_guard_reports_zero_detail(seed in 0u64..4000, nodes in 2usize..120) {
        let d = RandomTreeGen::new(seed)
            .nodes(nodes)
            .label_weights(&[("d", 1), ("x", 6)])
            .generate();
        let cp = parse_tree_pattern("d(?*)", &PredEnv::with_default_attr("label"))
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let guard = ExecGuard::new(Budget::unlimited());
        tops::sub_select_guarded(
            &d.store, &d.tree, &cp, &MatchConfig::first_per_root(), Some(&guard),
        ).unwrap();
        let snap = guard.obs_snapshot();
        prop_assert!(snap.is_disarmed_zero(), "disarmed run must report zeros: {snap:?}");
        let progress = guard.snapshot();
        prop_assert_eq!(snap.engine_steps, progress.steps);
        prop_assert!(snap.engine_steps > 0, "the guard itself still counted");
    }
}

/// A guarded optimizer execution always carries a `MetricsSnapshot` in
/// its `Explain`, with `engine_steps` equal to the guard's own count —
/// armed or not — alongside the predicted cost it can be compared to.
#[test]
fn explain_carries_snapshot_on_guarded_execution() {
    let d = RandomTreeGen::new(11)
        .nodes(400)
        .label_weights(&[("u", 1), ("x", 9)])
        .generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(0));
    let stats = ColumnStats::build(&d.store, d.class, AttrId(0));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);
    let pattern = parse_tree_pattern("u(?*)", &PredEnv::with_default_attr("label")).unwrap();
    let (plan, mut explain) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(
        explain.predicted_cost.is_some(),
        "planning records the winner's cost"
    );

    let guard = ExecGuard::new(Budget::unlimited()).with_metrics(Metrics::new());
    plan.execute_guarded(
        &cat,
        &d.tree,
        &MatchConfig::first_per_root(),
        Some(&guard),
        &mut explain,
    )
    .unwrap();
    let snap = explain.metrics.as_ref().expect("guarded execution stamps");
    assert_eq!(snap.engine_steps, guard.snapshot().steps);
    assert!(
        !snap.is_disarmed_zero(),
        "armed run must show detail counters"
    );
    let shown = explain.to_string();
    assert!(
        shown.contains("observed:") && shown.contains("predicted cost:"),
        "Explain renders both sides of the predicted-vs-observed story:\n{shown}"
    );

    // The same plan run under a sink-less guard still stamps a snapshot
    // — all-zero detail, real engine progress.
    let plain = ExecGuard::new(Budget::unlimited());
    let mut explain2 = Explain::default();
    let (plan2, _) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    let _ = plan2
        .execute_guarded(
            &cat,
            &d.tree,
            &MatchConfig::first_per_root(),
            Some(&plain),
            &mut explain2,
        )
        .unwrap();
    let snap2 = explain2.metrics.as_ref().expect("disarmed still stamps");
    assert!(snap2.is_disarmed_zero());
    assert_eq!(snap2.engine_steps, plain.snapshot().steps);
}

/// A forest fleet shares one sink: workers minted after `attach_metrics`
/// inherit it, the `Explain` carries the fleet-wide merged snapshot, and
/// its engine numbers equal the `SharedGuard`'s merged progress.
#[test]
fn forest_explain_carries_fleet_snapshot() {
    let f = RandomTreeGen::new(29)
        .nodes(300)
        .label_weights(&[("u", 1), ("x", 9)])
        .generate_forest(6);
    let set = aqua_algebra::bulk::TreeSet::from_trees(f.trees);
    let idxs: Vec<TreeNodeIndex> = set
        .members()
        .iter()
        .map(|t| TreeNodeIndex::build(&f.store, t, f.class, AttrId(0)))
        .collect();
    let stats = ColumnStats::build(&f.store, f.class, AttrId(0));
    let cats: Vec<Catalog<'_>> = idxs
        .iter()
        .map(|idx| {
            let mut c = Catalog::new(&f.store, f.class);
            c.add_tree_index(idx).add_stats(&stats);
            c
        })
        .collect();
    let opt = Optimizer::new(&cats[0]);
    let pattern = parse_tree_pattern("u(?*)", &PredEnv::with_default_attr("label")).unwrap();
    let sizes: Vec<usize> = set.members().iter().map(|t| t.len()).collect();
    let (mut plan, _) = opt.plan_forest_sub_select(&pattern, &sizes, 4).unwrap();
    plan.degree = 4;

    let fleet = SharedGuard::new(Budget::unlimited());
    assert!(fleet.attach_metrics(Metrics::new()), "first attach wins");
    let mut explain = Explain::default();
    plan.execute_guarded(
        &cats,
        &set,
        &MatchConfig::first_per_root(),
        Some(&fleet),
        &mut explain,
    )
    .unwrap();

    let snap = explain.metrics.as_ref().expect("fleet execution stamps");
    assert_eq!(snap.engine_steps, fleet.snapshot().steps);
    assert!(snap.match_visits > 0, "workers fed the shared sink");
    assert!(snap.pool_workers >= 1, "the pool accounted its workers");
    // The sink the fleet carries is the very one we attached.
    assert_eq!(fleet.metrics().unwrap().snapshot().vm_steps, snap.vm_steps);
}

/// Alphabet-predicate compile check kept alive so the imports above stay
/// honest about what this suite exercises.
#[test]
fn predicate_counters_survive_json_round_trip() {
    let d = RandomTreeGen::new(3).nodes(40).generate();
    let _ = PredExpr::eq("label", "a").compile(d.class, d.store.class(d.class));
    let (snap, _, _) = armed_sub_select(5, 50);
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for field in [
        "\"engine_steps\":",
        "\"vm_steps\":",
        "\"match_visits\":",
        "\"cache_lookups\":",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    assert!(!json.contains('\n'), "snapshot JSON is single-line");
}
