//! Property suite: `split` exactness and `sub_select` derivability on
//! random trees × random patterns.
//!
//! The paper's formal definition of `split` (§4) requires
//! `x ∘_α y ∘_{α_1} t_1 ⋯ ∘_{α_n} t_n = T` with `y ∘ nil… ∈ L(tp)`.
//! These properties check both halves on generated inputs, plus the §4
//! claim that `sub_select` is the `split`-derived operator.

use aqua_algebra::tree::{ops, split};
use aqua_algebra::Tree;
use aqua_pattern::ast::Re;
use aqua_pattern::tree_ast::{NodeTest, TreePat, TreePattern};
use aqua_pattern::tree_match::{MatchConfig, TreeAccess, TreeMatcher};
use aqua_pattern::PredExpr;
use aqua_workload::random_tree::{RandomTreeGen, TreeDataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LABELS: &[&str] = &["a", "b", "c", "d"];

fn dataset(seed: u64, nodes: usize) -> TreeDataset {
    RandomTreeGen::new(seed)
        .nodes(nodes)
        .max_arity(3)
        .label_weights(&[("a", 3), ("b", 3), ("c", 2), ("d", 1)])
        .generate()
}

/// A random tree pattern without free concatenation points: node tests
/// over the generator's label alphabet, child regexes with wildcards,
/// stars, prunes, and alternation, bounded depth.
fn random_pattern(rng: &mut StdRng, depth: usize) -> TreePat {
    fn test(rng: &mut StdRng) -> NodeTest {
        if rng.gen_bool(0.3) {
            NodeTest::Any
        } else {
            NodeTest::Pred(PredExpr::eq(
                "label",
                LABELS[rng.gen_range(0..LABELS.len())],
            ))
        }
    }
    // Closures over points are exercised separately (they need chain-
    // shaped data to be non-trivial); here: leaves and node patterns.
    if depth == 0 || rng.gen_bool(0.35) {
        return TreePat::Leaf(test(rng));
    }
    let n_items = rng.gen_range(1..=3);
    let mut re: Option<Re<TreePat>> = None;
    for _ in 0..n_items {
        let mut item = Re::Leaf(random_pattern(rng, depth - 1));
        match rng.gen_range(0..5) {
            0 => item = item.star(),
            1 => item = item.prune(),
            2 => item = item.prune().star(),
            _ => {}
        }
        re = Some(match re {
            None => item,
            Some(r) => r.then(item),
        });
    }
    // Occasionally allow trailing wildcard slack so internal nodes match.
    let mut children = re.unwrap();
    if rng.gen_bool(0.6) {
        children = children.then(Re::Leaf(TreePat::any()).star());
    }
    TreePat::Node(test(rng), Box::new(children))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Split round-trip: every match's pieces reassemble to the tree.
    #[test]
    fn split_roundtrip(seed in 0u64..5000, nodes in 2usize..60, pseed in 0u64..5000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let pat = TreePattern::new(random_pattern(&mut rng, 2));
        let cp = pat.compile(d.class, d.store.class(d.class)).unwrap();
        let pieces =
            split::split_pieces(&d.store, &d.tree, &cp, &MatchConfig::first_per_root()).unwrap();
        for p in pieces {
            prop_assert!(p.reassemble().structural_eq(&d.tree));
        }
    }

    /// Formal-language membership: the nil-reduced match piece is in the
    /// pattern's language (bool-matches at its root) — for matches with
    /// no `!`-pruned cuts. Pruning deliberately removes *required*
    /// structure from the returned piece (the paper's own §5 example
    /// `select(!? and)` prunes a required child), so pruned matches are
    /// outside this law; their exactness is covered by the round-trip
    /// property instead.
    #[test]
    fn match_piece_in_pattern_language(seed in 0u64..5000, nodes in 2usize..60, pseed in 0u64..5000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let pat = TreePattern::new(random_pattern(&mut rng, 2));
        let cp = pat.compile(d.class, d.store.class(d.class)).unwrap();
        let mut matcher0 = TreeMatcher::new(&cp, &d.tree, &d.store);
        let cfg = MatchConfig::first_per_root();
        for m in matcher0.find_matches(&cfg) {
            if m.cuts
                .iter()
                .any(|c| c.origin == aqua_pattern::tree_match::CutOrigin::Pruned)
            {
                continue;
            }
            let pieces = split::pieces_for_match(&d.tree, m).unwrap();
            let mut reduced = pieces.matched.clone();
            for label in &pieces.cut_labels {
                reduced = aqua_algebra::tree::concat::concat_nil(&reduced, label).unwrap();
            }
            let mut matcher = TreeMatcher::new(&cp, &reduced, &d.store);
            let root = TreeAccess::root(&reduced);
            prop_assert!(matcher.matches_at(root), "reduced match must re-match");
        }
    }

    /// Derivability: direct sub_select equals the split-derived form.
    #[test]
    fn sub_select_equals_derivation(seed in 0u64..5000, nodes in 2usize..60, pseed in 0u64..5000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let pat = TreePattern::new(random_pattern(&mut rng, 2));
        let cp = pat.compile(d.class, d.store.class(d.class)).unwrap();
        let cfg = MatchConfig::first_per_root();
        let direct = ops::sub_select(&d.store, &d.tree, &cp, &cfg).unwrap();
        let derived = ops::sub_select_via_split(&d.store, &d.tree, &cp, &cfg).unwrap();
        prop_assert_eq!(direct.len(), derived.len());
        for (a, b) in direct.iter().zip(&derived) {
            prop_assert!(a.structural_eq(b));
        }
    }

    /// Partition: for each match, {context minus hole} ∪ {match kept
    /// nodes} ∪ {descendant pieces} has exactly the original node count.
    #[test]
    fn pieces_partition_the_tree(seed in 0u64..5000, nodes in 2usize..60, pseed in 0u64..5000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let pat = TreePattern::new(random_pattern(&mut rng, 2));
        let cp = pat.compile(d.class, d.store.class(d.class)).unwrap();
        for p in split::split_pieces(&d.store, &d.tree, &cp, &MatchConfig::first_per_root()).unwrap() {
            let ctx_objs = count_objects(&p.context);
            let match_objs = count_objects(&p.matched);
            let desc_objs: usize = p.descendants.iter().map(count_objects).sum();
            prop_assert_eq!(ctx_objs + match_objs + desc_objs, d.tree.len());
        }
    }

    /// Anchored ⊤-patterns only match at the root; ⊥-patterns never cut
    /// a frontier.
    #[test]
    fn anchors_hold(seed in 0u64..5000, nodes in 2usize..60, pseed in 0u64..5000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let base = random_pattern(&mut rng, 2);
        let rooted = TreePattern::new(base.clone()).anchored_root()
            .compile(d.class, d.store.class(d.class)).unwrap();
        let mut m = TreeMatcher::new(&rooted, &d.tree, &d.store);
        for tm in m.find_matches(&MatchConfig::first_per_root()) {
            prop_assert_eq!(tm.root, TreeAccess::root(&d.tree));
        }
        let leafy = TreePattern::new(base).anchored_leaves()
            .compile(d.class, d.store.class(d.class)).unwrap();
        let mut m = TreeMatcher::new(&leafy, &d.tree, &d.store);
        for tm in m.find_matches(&MatchConfig::first_per_root()) {
            prop_assert!(tm
                .cuts
                .iter()
                .all(|c| c.origin != aqua_pattern::tree_match::CutOrigin::Frontier));
        }
    }

    /// Memoization is semantically invisible.
    #[test]
    fn memo_ablation_equal(seed in 0u64..2000, nodes in 2usize..40, pseed in 0u64..2000) {
        let d = dataset(seed, nodes);
        let mut rng = StdRng::seed_from_u64(pseed);
        let pat = TreePattern::new(random_pattern(&mut rng, 2));
        let cp = pat.compile(d.class, d.store.class(d.class)).unwrap();
        let cfg = MatchConfig::first_per_root();
        let mut with = TreeMatcher::new(&cp, &d.tree, &d.store);
        let r1 = with.find_matches(&cfg);
        let mut without = TreeMatcher::new(&cp, &d.tree, &d.store);
        without.memoize = false;
        let r2 = without.find_matches(&cfg);
        prop_assert_eq!(r1, r2);
    }
}

fn count_objects(t: &Tree) -> usize {
    t.iter_preorder().filter(|&n| t.oid(n).is_some()).count()
}
