//! Property suite: operator *stability* (the paper's headline design
//! criterion, §1): "the relative orderings between all pairs of
//! elements are preserved in the result."
//!
//! For trees, `select`'s definition (§4) is checked literally: `n₁` is
//! an ancestor of `n₂` in the result iff it is in the input, and an
//! edge exists iff no satisfying node lies strictly between. For lists,
//! surviving elements keep their relative order.

use aqua_algebra::list::ops as lops;
use aqua_algebra::tree::ops as tops;
use aqua_algebra::{List, Tree};
use aqua_object::{AttrId, Oid};
use aqua_pattern::PredExpr;
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;
use std::collections::HashMap;

const WEIGHTS: &[(&str, u32)] = &[("u", 3), ("x", 5), ("y", 2)];

/// Map result-tree nodes back to source OIDs (node objects are unique
/// per node in the generators, so OIDs identify source positions).
fn oids_preorder(t: &Tree) -> Vec<Oid> {
    t.iter_preorder().filter_map(|n| t.oid(n)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Tree select: ancestry preserved and compressed correctly.
    #[test]
    fn tree_select_is_stable(seed in 0u64..5000, nodes in 2usize..80) {
        let d = RandomTreeGen::new(seed).nodes(nodes).label_weights(WEIGHTS).generate();
        let pred = PredExpr::eq("label", "u")
            .compile(d.class, d.store.class(d.class)).unwrap();
        let satisfies = |oid: Oid| d.store.attr(oid, AttrId(0)) == &aqua_object::Value::str("u");
        let forest = tops::select(&d.store, &d.tree, &pred);

        // Source positions of every OID.
        let mut src_node: HashMap<Oid, aqua_algebra::NodeId> = HashMap::new();
        for n in d.tree.iter_preorder() {
            src_node.insert(d.tree.oid(n).unwrap(), n);
        }

        // (1) Exactly the satisfying nodes survive.
        let kept: Vec<Oid> = forest.iter().flat_map(oids_preorder).collect();
        let expected: Vec<Oid> = d.tree.iter_preorder()
            .filter_map(|n| d.tree.oid(n))
            .filter(|&o| satisfies(o))
            .collect();
        // (2) …in document order (roots and subtrees are emitted in
        // preorder of the source).
        prop_assert_eq!(&kept, &expected);

        // (3) Result edges: parent in result == nearest satisfying
        // strict ancestor in source.
        for t in &forest {
            for n in t.iter_preorder() {
                let oid = t.oid(n).unwrap();
                let src = src_node[&oid];
                let nearest = d.tree.ancestors(src).into_iter()
                    .map(|a| d.tree.oid(a).unwrap())
                    .find(|&a| satisfies(a));
                let result_parent = t.parent(n).map(|p| t.oid(p).unwrap());
                prop_assert_eq!(result_parent, if t.parent(n).is_some() { nearest } else {
                    // a result root has no satisfying ancestor
                    prop_assert!(nearest.is_none());
                    None
                });
            }
        }
    }

    /// Tree apply: isomorphism (same shape, mapped payloads in place).
    #[test]
    fn tree_apply_is_isomorphic(seed in 0u64..5000, nodes in 1usize..80) {
        let d = RandomTreeGen::new(seed).nodes(nodes).generate();
        // Identity-shaped map: tag each OID by adding a fixed offset into
        // a parallel store is overkill; map to itself and check shape.
        let mapped = tops::apply(&d.tree, |o| o);
        prop_assert!(mapped.structural_eq(&d.tree));
        prop_assert_eq!(mapped.len(), d.tree.len());
    }

    /// List select: surviving elements keep their relative order and are
    /// exactly the satisfying ones.
    #[test]
    fn list_select_is_stable(seed in 0u64..5000, notes in 1usize..200) {
        let d = SongGen::new(seed).notes(notes).generate();
        let pred = PredExpr::eq("pitch", "A")
            .compile(d.class, d.store.class(d.class)).unwrap();
        let out = lops::select(&d.store, &d.song, &pred);
        let expected: Vec<Oid> = d.song.oids().into_iter()
            .filter(|&o| d.store.attr(o, AttrId(0)) == &aqua_object::Value::str("A"))
            .collect();
        prop_assert_eq!(out.oids(), expected);
    }

    /// List sub_select results are contiguous, in-order slices.
    #[test]
    fn list_sub_select_returns_sublists(seed in 0u64..5000, notes in 4usize..150) {
        let d = SongGen::new(seed).notes(notes).plant(vec!["A", "B"], 3).generate();
        let env = aqua_pattern::parser::PredEnv::with_default_attr("pitch");
        let (re, s, e) = aqua_pattern::parser::parse_list_pattern("[A B]", &env).unwrap();
        let p = aqua_pattern::ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let all = d.song.oids();
        for m in lops::find_matches(&d.store, &d.song, &p, aqua_pattern::list::MatchMode::All) {
            // The match is a contiguous embedded slice.
            prop_assert!(m.end <= all.len() && m.start < m.end);
        }
        for sub in lops::sub_select(&d.store, &d.song, &p, aqua_pattern::list::MatchMode::All) {
            let oids = sub.oids();
            // Each result appears as a contiguous window of the source.
            let found = all.windows(oids.len()).any(|w| w == oids.as_slice());
            prop_assert!(found);
        }
    }

    /// List split round-trip on random songs and a pruning pattern.
    #[test]
    fn list_split_roundtrip(seed in 0u64..5000, notes in 4usize..120) {
        let d = SongGen::new(seed).notes(notes).plant(vec!["C", "D", "E"], 2).generate();
        let env = aqua_pattern::parser::PredEnv::with_default_attr("pitch");
        let (re, s, e) = aqua_pattern::parser::parse_list_pattern("[C !? E]", &env).unwrap();
        let p = aqua_pattern::ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let rs: Vec<List> = lops::split(
            &d.store, &d.song, &p, aqua_pattern::list::MatchMode::All,
            |pieces| pieces.reassemble(),
        );
        for r in rs {
            prop_assert_eq!(&r, &d.song);
        }
    }
}
