//! Property suite: bounded execution. Adversarial patterns — nested
//! closures and ambiguous alternations like `(a|a)*` whose parse space
//! is exponential — must always *terminate* under a tiny step budget,
//! returning `BudgetExceeded` with meaningful progress counters instead
//! of panicking or hanging. Exercised across the three engines: the
//! pike VM (list patterns), the recursive tree matcher, and `split`.

use aqua_algebra::list::ops as lops;
use aqua_algebra::tree::{ops as tops, split};
use aqua_guard::{Budget, CancelToken, ExecGuard, GuardError, Resource, SharedGuard};
use aqua_pattern::list::{ListPattern, MatchMode};
use aqua_pattern::parser::{parse_list_pattern, parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::{MatchConfig, TreeMatcher};
use aqua_workload::random_tree::RandomTreeGen;
use aqua_workload::SongGen;
use proptest::prelude::*;

/// Ambiguity bombs for the pike VM: `(A|A)*`-shaped alternations and
/// nested closures multiply the viable thread set at every position.
const EVIL_LIST_PATTERNS: &[&str] = &[
    "[[[A|A]]* [[A|A]]* F]",
    "[[[A|A]]+ [[A|A]]+]",
    "[[[[[A|A]]*|A]]*]",
    "[[[A [[B|B]]*]]* F]",
    "[!A* [[A|A]]* !A*]",
];

/// The same idea for the tree matcher: closures over wildcard children
/// nested inside closures, and duplicated alternation arms.
const EVIL_TREE_PATTERNS: &[&str] = &[
    "?(?* a !?*)",
    "?(?* ?(?* a ?*) ?*)",
    "a(?*)|a(?*)",
    "?(!?* ?(!?* a !?*) !?*)",
];

fn expect_step_exhaustion(res: Result<(), GuardError>, limit: u64) {
    let err = res.expect_err("tiny budget over a large input must trip");
    match err {
        GuardError::BudgetExceeded {
            resource: Resource::Steps,
            limit: l,
            progress,
        } => {
            assert_eq!(l, limit);
            assert!(progress.steps > limit, "counted past the line: {progress}");
        }
        other => panic!("expected step exhaustion, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pike VM: every evil list pattern stops with `BudgetExceeded`.
    #[test]
    fn pike_vm_always_terminates_under_budget(
        seed in 0u64..1000,
        pi in 0usize..EVIL_LIST_PATTERNS.len(),
        steps in 1u64..200,
    ) {
        let d = SongGen::new(seed).notes(1500).plant(vec!["A", "A", "A", "A"], 20).generate();
        let env = PredEnv::with_default_attr("pitch");
        let (re, s, e) = parse_list_pattern(EVIL_LIST_PATTERNS[pi], &env).unwrap();
        let lp = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
        let guard = ExecGuard::new(Budget::unlimited().with_steps(steps));
        let res = lops::find_matches_guarded(&d.store, &d.song, &lp, MatchMode::All, Some(&guard));
        expect_step_exhaustion(res.map(drop).map_err(|e| *e.as_guard().unwrap()), steps);
    }

    /// Tree matcher: every evil tree pattern stops with `BudgetExceeded`.
    #[test]
    fn tree_matcher_always_terminates_under_budget(
        seed in 0u64..1000,
        pi in 0usize..EVIL_TREE_PATTERNS.len(),
        steps in 1u64..150,
    ) {
        let d = RandomTreeGen::new(seed)
            .nodes(400)
            .label_weights(&[("a", 5), ("b", 3), ("c", 1)])
            .generate();
        let env = PredEnv::with_default_attr("label");
        let cp = parse_tree_pattern(EVIL_TREE_PATTERNS[pi], &env)
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let guard = ExecGuard::new(Budget::unlimited().with_steps(steps));
        let res = TreeMatcher::new(&cp, &d.tree, &d.store)
            .with_guard(&guard)
            .find_matches_outcome(&MatchConfig::default());
        expect_step_exhaustion(res.map(drop), steps);
    }

    /// `split` (and through it `sub_select`): same guarantee one layer up.
    #[test]
    fn split_always_terminates_under_budget(
        seed in 0u64..1000,
        pi in 0usize..EVIL_TREE_PATTERNS.len(),
        steps in 1u64..150,
    ) {
        let d = RandomTreeGen::new(seed)
            .nodes(400)
            .label_weights(&[("a", 5), ("b", 3), ("c", 1)])
            .generate();
        let env = PredEnv::with_default_attr("label");
        let cp = parse_tree_pattern(EVIL_TREE_PATTERNS[pi], &env)
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let guard = ExecGuard::new(Budget::unlimited().with_steps(steps));
        let res =
            split::split_pieces_guarded(&d.store, &d.tree, &cp, &MatchConfig::default(), Some(&guard));
        expect_step_exhaustion(res.map(drop).map_err(|e| *e.as_guard().unwrap()), steps);
    }

    /// A result cap truncates output without error-free overshoot: the
    /// error carries exactly the cap's worth of results.
    #[test]
    fn result_cap_stops_enumeration(seed in 0u64..1000, cap in 1u64..5) {
        let d = RandomTreeGen::new(seed).nodes(300).generate();
        let env = PredEnv::with_default_attr("label");
        let cp = parse_tree_pattern("?(?*)", &env)
            .unwrap()
            .compile(d.class, d.store.class(d.class))
            .unwrap();
        let guard = ExecGuard::new(Budget::unlimited().with_results(cap));
        let res = tops::sub_select_guarded(
            &d.store,
            &d.tree,
            &cp,
            &MatchConfig::first_per_root(),
            Some(&guard),
        );
        let err = res.expect_err("every node matches; the cap must trip");
        match err.as_guard().unwrap() {
            GuardError::BudgetExceeded {
                resource: Resource::Results,
                limit,
                progress,
            } => {
                prop_assert_eq!(*limit, cap);
                prop_assert_eq!(progress.results, cap + 1);
            }
            other => panic!("expected result exhaustion, got {other}"),
        }
    }
}

#[test]
fn pre_cancelled_token_stops_promptly() {
    let d = SongGen::new(7)
        .notes(5000)
        .plant(vec!["A", "B"], 10)
        .generate();
    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[A B]", &env).unwrap();
    let lp = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let guard = ExecGuard::cancellable(token);
    let err = lops::find_matches_guarded(&d.store, &d.song, &lp, MatchMode::All, Some(&guard))
        .expect_err("cancellation must be observed");
    assert!(matches!(
        err.as_guard().unwrap(),
        GuardError::Cancelled { .. }
    ));
}

#[test]
fn expired_deadline_times_out() {
    let d = RandomTreeGen::new(7).nodes(3000).generate();
    let env = PredEnv::with_default_attr("label");
    let cp = parse_tree_pattern("?(?* a ?*)", &env)
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let guard = ExecGuard::new(Budget::unlimited().with_deadline_ms(0));
    let err = split::split_pieces_guarded(
        &d.store,
        &d.tree,
        &cp,
        &MatchConfig::default(),
        Some(&guard),
    )
    .expect_err("an already-expired deadline must trip");
    assert!(matches!(
        err.as_guard().unwrap(),
        GuardError::Timeout { .. }
    ));
}

/// First-trip-wins under a budget/cancellation race: whatever verdict
/// any fleet worker reaches first is the fleet's verdict forever.
/// Sibling trips, repeated reads, and even a *late* cancellation after
/// the budget already tripped must never change its discriminant.
#[test]
fn shared_guard_verdict_is_first_trip_wins_under_race() {
    const WORKERS: usize = 4;
    for round in 0..200u64 {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_steps(64 + round % 192);
        let fleet = SharedGuard::with_cancel(budget, token.clone());
        let cancel_early = round % 2 == 0;

        let worker_errors: Vec<GuardError> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let fleet = fleet.clone();
                    scope.spawn(move || {
                        let guard = fleet.worker();
                        loop {
                            if let Err(e) = guard.step() {
                                return e;
                            }
                        }
                    })
                })
                .collect();
            if cancel_early {
                // Race the signal against the budget from outside.
                token.cancel();
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("workers must not panic"))
                .collect()
        });

        let verdict = fleet.verdict().expect("a tripped fleet has a verdict");
        let d0 = std::mem::discriminant(&verdict);
        assert!(
            worker_errors
                .iter()
                .any(|e| std::mem::discriminant(e) == d0),
            "fleet verdict {verdict} must be one a worker actually saw"
        );
        if !cancel_early {
            // No signal was ever sent while workers ran: the budget won.
            assert!(
                matches!(verdict, GuardError::BudgetExceeded { .. }),
                "round {round}: {verdict}"
            );
        }

        // A late cancellation plus a fresh worker adopting the verdict
        // must replay the original trip, not manufacture a new one.
        token.cancel();
        let late = fleet
            .worker()
            .checkpoint()
            .expect_err("tripped fleet stays dead");
        assert_eq!(
            std::mem::discriminant(&late),
            d0,
            "round {round}: late worker adopted {late}, first trip was {verdict}"
        );
        for _ in 0..4 {
            let again = fleet.verdict().expect("verdict cannot vanish");
            assert_eq!(
                std::mem::discriminant(&again),
                d0,
                "round {round}: verdict drifted from {verdict} to {again}"
            );
        }
    }
}

/// The same shareable token cancels concurrent queries on other threads.
#[test]
fn token_cancels_across_threads() {
    let d = SongGen::new(9).notes(8000).generate();
    let env = PredEnv::with_default_attr("pitch");
    let (re, s, e) = parse_list_pattern("[[[A|A]]* [[A|A]]* F]", &env).unwrap();
    let lp = ListPattern::compile(re, s, e, d.class, d.store.class(d.class)).unwrap();
    let token = CancelToken::new();
    let worker_token = token.clone();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let guard = ExecGuard::cancellable(worker_token);
            lops::find_matches_guarded(&d.store, &d.song, &lp, MatchMode::All, Some(&guard))
        });
        token.cancel();
        let res = handle.join().expect("worker must not panic");
        // Either it finished before the signal landed or it was cut
        // short — but it must never hang or die.
        if let Err(e) = res {
            assert!(matches!(
                e.as_guard().unwrap(),
                GuardError::Cancelled { .. }
            ));
        }
    });
}
