//! End-to-end scenarios spanning all crates: object store → patterns →
//! algebra → indices → optimizer, on each of the paper's motivating
//! domains.

use aqua_algebra::tree::{display, ops, split};
use aqua_algebra::TreeBuilder;
use aqua_object::{AttrId, Value};
use aqua_optimizer::{Catalog, Optimizer};
use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
use aqua_pattern::tree_match::MatchConfig;
use aqua_pattern::PredExpr;
use aqua_store::{ColumnStats, StructuralIndex, TreeNodeIndex};
use aqua_workload::{DocumentGen, FamilyGen, ParseTreeGen};

/// Family-tree analytics: build a 5 000-person genealogy, index it,
/// plan and run the §4 query both ways, and cross-check contexts with
/// the structural index.
#[test]
fn family_database_workflow() {
    let d = FamilyGen::new(77).people(5000).generate();
    let idx = TreeNodeIndex::build(&d.store, &d.tree, d.class, AttrId(1)); // citizen
    let stats = ColumnStats::build(&d.store, d.class, AttrId(1));
    let mut cat = Catalog::new(&d.store, d.class);
    cat.add_tree_index(&idx).add_stats(&stats);
    let opt = Optimizer::new(&cat);

    let mut env = PredEnv::new();
    env.define("Brazil", PredExpr::eq("citizen", "Brazil"));
    env.define("USA", PredExpr::eq("citizen", "USA"));
    let pattern = parse_tree_pattern("Brazil(!?* USA !?*)", &env).unwrap();

    let (plan, explain) = opt.plan_tree_sub_select(&pattern, d.tree.len()).unwrap();
    assert!(plan.is_indexed(), "{explain}");
    let cfg = MatchConfig::first_per_root();
    let fast = plan.execute(&cat, &d.tree, &cfg).unwrap();

    let compiled = pattern.compile(d.class, d.store.class(d.class)).unwrap();
    let naive = ops::sub_select(&d.store, &d.tree, &compiled, &cfg).unwrap();
    assert_eq!(fast.len(), naive.len());
    assert!(!fast.is_empty(), "workload should contain matches");

    // Context sanity via split + structural index: each match's
    // descendants really are descendants of the match root.
    let sidx = StructuralIndex::build(&d.tree);
    for p in split::split_pieces(&d.store, &d.tree, &compiled, &cfg).unwrap() {
        let root = aqua_algebra::NodeId(p.raw.root);
        for c in &p.raw.cuts {
            assert!(sidx.is_ancestor(root, aqua_algebra::NodeId(c.root)));
        }
        // Pieces reassemble.
        assert!(p.reassemble().structural_eq(&d.tree));
    }
}

/// Compiler-style rewriting (§5): push one conjunct of every
/// `select(R, and(p1, p2))` into a cascade, across all planted sites of
/// a random parse tree, rewriting iteratively through `split`.
#[test]
fn parse_tree_rewriter_workflow() {
    let d = ParseTreeGen::new(5)
        .operators(120)
        .rewrite_sites(6)
        .generate();
    let env = PredEnv::with_default_attr("op");
    let compiled = parse_tree_pattern("select(!? and)", &env)
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();

    let mut store = d.store.clone();
    let mut tree = d.tree.clone();
    let mut rewrites = 0;
    // Rewrite one site at a time until none remain (each rewrite
    // invalidates node ids, so re-split each round).
    loop {
        let pieces =
            split::split_pieces(&store, &tree, &compiled, &MatchConfig::first_per_root()).unwrap();
        let Some(p) = pieces.into_iter().next() else {
            break;
        };
        assert_eq!(p.descendants.len(), 3); // R, p1, p2
        let sel_inner = store
            .insert_named("PTNode", &[("op", Value::str("select"))])
            .unwrap();
        let sel_outer = store
            .insert_named("PTNode", &[("op", Value::str("select"))])
            .unwrap();
        let mut b = TreeBuilder::new();
        let h_r = b.hole_node(p.cut_labels[0].clone(), vec![]);
        let h_p1 = b.hole_node(p.cut_labels[1].clone(), vec![]);
        let inner = b.node(sel_inner, vec![h_r, h_p1]);
        let h_p2 = b.hole_node(p.cut_labels[2].clone(), vec![]);
        let outer = b.node(sel_outer, vec![inner, h_p2]);
        let replacement = b.finish(outer).unwrap();
        tree = p.reassemble_with(&replacement);
        rewrites += 1;
        assert!(rewrites <= d.planted_sites, "rewriting must terminate");
    }
    assert_eq!(rewrites, d.planted_sites);
    // No `and` nodes remain under a select in the rewritten tree…
    assert!(
        split::split_pieces(&store, &tree, &compiled, &MatchConfig::first_per_root())
            .unwrap()
            .is_empty()
    );
    // …and the tree grew by exactly one node per site
    // (select+select replaces select+and, plus nothing else changes —
    // net zero; the two fresh selects replace select+and).
    assert_eq!(tree.len(), d.tree.len());
    // The rendering contains the cascade shape somewhere.
    let rendered = display::render(&tree, &|oid| match store.attr(oid, AttrId(0)) {
        Value::Str(s) => s.clone(),
        _ => unreachable!(),
    });
    assert!(rendered.contains("select(select(R p1) p2)"));
}

/// Document outlines (§1 motivation): select section/figure skeleton,
/// then find deeply nested sections via a chain pattern.
#[test]
fn document_outline_workflow() {
    let d = DocumentGen::new(3).sections(6).depth(4).generate();
    let kind = |name: &str| {
        PredExpr::eq("kind", name)
            .compile(d.class, d.store.class(d.class))
            .unwrap()
    };
    // Outline: keep only sections; stability keeps the nesting.
    let outline = ops::select(&d.store, &d.tree, &kind("section"));
    let total_sections: usize = outline.iter().map(|t| t.len()).sum();
    let source_sections = d
        .tree
        .iter_preorder()
        .filter(|&n| {
            d.tree
                .oid(n)
                .is_some_and(|o| d.store.attr(o, AttrId(0)) == &Value::str("section"))
        })
        .count();
    assert_eq!(total_sections, source_sections);
    assert!(total_sections >= 6);

    // Sections that directly contain a section that contains a figure.
    let env = PredEnv::with_default_attr("kind");
    let cp = parse_tree_pattern("section(!?* section(!?* figure !?*) !?*)", &env)
        .unwrap()
        .compile(d.class, d.store.class(d.class))
        .unwrap();
    let nested = ops::sub_select(&d.store, &d.tree, &cp, &MatchConfig::first_per_root()).unwrap();
    for m in &nested {
        // Shape: section(section(figure)) after pruning.
        let kinds: Vec<String> = m
            .iter_preorder()
            .filter_map(|n| m.oid(n))
            .map(|o| match d.store.attr(o, AttrId(0)) {
                Value::Str(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, vec!["section", "section", "figure"]);
    }
}

/// Word-count analytics across bulk types: an `apply` that re-tags
/// paragraphs by size, then a set-level rollup — exercising the
/// set/tree interplay of §2.
#[test]
fn mixed_bulk_type_workflow() {
    let d = DocumentGen::new(9).sections(5).generate();
    let mut store = d.store.clone();

    // apply: map every node to a fresh summary object (kind, size class).
    let summarized = ops::apply(&d.tree, |oid| {
        let words = match store.deref(oid).get(AttrId(2)) {
            Value::Int(w) => *w,
            _ => 0,
        };
        let class = if words > 200 { "big" } else { "small" };
        store
            .insert_named(
                "DocNode",
                &[
                    ("kind", store.deref(oid).get(AttrId(0)).clone()),
                    ("title", Value::str(class)),
                    ("words", Value::Int(words)),
                ],
            )
            .unwrap()
    });
    assert_eq!(summarized.len(), d.tree.len());

    // Rollup: fold the node set into a (big, small) census.
    let set: aqua_algebra::setops::AquaSet = summarized
        .iter_preorder()
        .filter_map(|n| summarized.oid(n))
        .collect();
    let (big, small) = set.fold((0usize, 0usize), |(b, s), oid| {
        match store.attr(oid, AttrId(1)) {
            Value::Str(t) if t == "big" => (b + 1, s),
            _ => (b, s + 1),
        }
    });
    assert_eq!(big + small, d.tree.len());
}
