//! Host crate for cross-crate integration and property test suites.
//!
//! The suites live in `tests/`; this library only re-exports the
//! workspace crates so the tests have a single import root.

pub use aqua_algebra as algebra;
pub use aqua_object as object;
pub use aqua_optimizer as optimizer;
pub use aqua_pattern as pattern;
pub use aqua_store as store;
pub use aqua_workload as workload;
