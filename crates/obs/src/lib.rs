//! # aqua-obs — lightweight execution observability
//!
//! Zero-dependency metrics primitives for the AQUA engine: relaxed
//! atomic [`Counter`]s, log2-bucketed [`Histogram`]s, and a bounded
//! [`SpanEvent`] log, gathered behind one shareable [`Metrics`] handle.
//!
//! The design contract mirrors how `aqua-guard` batches step
//! accounting: instrumentation is **disarmed by default**. Hot paths
//! hold an `Option<&Metrics>`; when it is `None` the cost of a probe is
//! one branch, and a [`MetricsSnapshot`] taken from nowhere reports
//! zeros. When armed, every probe is a single relaxed atomic add —
//! never a lock, never an allocation (spans excepted, and spans sit on
//! cold paths only).
//!
//! Counter taxonomy (who increments what):
//!
//! | counter                  | incremented by                               |
//! |--------------------------|----------------------------------------------|
//! | `vm_steps`               | Pike-VM state-set sweeps (`pike.rs`)         |
//! | `vm_state_set` (hist)    | NFA state-set size per input position        |
//! | `vm_path_visits`         | parse-DAG node visits (`dfs`/`enum_dfs`)     |
//! | `match_visits`           | tree-matcher node visits (`tree_match.rs`)   |
//! | `match_memo_hits`        | memoized `pat_matches` answers reused        |
//! | `match_candidates`       | candidate roots examined                     |
//! | `match_candidates_pruned`| candidates rejected before emitting a match  |
//! | `matches_found`          | tree matches emitted                         |
//! | `split_pieces`           | split pieces assembled (`split.rs`)          |
//! | `split_cuts` (hist)      | concatenation points α per piece             |
//! | `cache_lookups/hits/misses` | `PatternCache` traffic                    |
//! | `pool_items/steals/flushes/workers` | work-stealing pool (`pool.rs`)    |
//! | `svc_admitted/shed/retried/tripped/degraded` | `aqua-service` front end |
//! | `wal_appends/wal_bytes`  | WAL frame appends (`aqua-store::wal`)        |
//! | `snapshots_written`      | checkpoints completed (`aqua-store`)         |
//! | `recoveries`             | successful `DurableStore` opens              |
//! | `shard_recoveries`       | per-shard opens inside a `ShardedStore` open |
//! | `scatter_queries`        | scatter-gather forest executions             |
//! | `scatter_batches`        | per-shard batches dispatched by scatter      |
//! | `recovery_frames_replayed` | WAL frames re-applied during recovery      |
//! | `recovery_bytes_truncated` | torn-tail bytes discarded during recovery  |
//! | `recovery_indices_rebuilt` | indices rebuilt from specs after replay    |
//! | `integrity_roots_verified` | WAL frame roots verified during recovery   |
//! | `certs_emitted`          | split reassembly certificates emitted        |
//! | `certs_checked`          | certificates revalidated (inline or offline) |
//! | `certs_failed`           | certificate checks that found a mismatch     |
//! | `txn_prepared`           | participant prepares logged (2PC phase 1)    |
//! | `txn_committed`          | cross-shard transactions committed           |
//! | `txn_aborted`            | cross-shard transactions aborted cleanly     |
//! | `txn_presumed_abort`     | orphaned prepares aborted by presumption     |
//! | `txn_decide_us` (hist)   | prepare→decision latency per commit, µs      |
//! | `rebalance_runs`         | shard-count changes completed                |
//! | `rebalance_moves`        | subtree moves committed during rebalance     |
//! | `rebalance_resumed`      | moves completed by resume-on-open            |
//! | `rebalance_move_us` (hist) | per-subtree move latency, µs               |
//!
//! Snapshots [`merge`](MetricsSnapshot::merge) field-wise (sums and
//! bucket-wise histogram sums), which is commutative and associative:
//! merging per-worker snapshots is order-independent by construction.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)`. 65 buckets cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Spans kept per [`Metrics`] sink; later spans bump `spans_dropped`.
pub const SPAN_CAP: usize = 256;

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The log2 bucket a value falls in.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A log2-bucketed histogram of `u64` observations (sizes, latencies).
///
/// Recording is one relaxed atomic add on the owning bucket — no locks,
/// so concurrent workers may record freely.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot (trailing empty buckets trimmed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot { buckets }
    }
}

/// A frozen [`Histogram`]: bucket `k` counts observations in
/// `[2^(k-1), 2^k)` (bucket 0 counts zeros). Trailing zero buckets are
/// trimmed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exclusive upper bound on the largest observation (`None` when
    /// empty).
    pub fn max_bound(&self) -> Option<u64> {
        let top = self.buckets.iter().rposition(|&c| c > 0)?;
        Some(if top == 0 { 1 } else { 1u64 << top })
    }

    /// Bucket-wise sum with `other` (commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    fn json_into(&self, out: &mut String) {
        use fmt::Write;
        let _ = write!(out, "{{\"count\":{},\"buckets\":[", self.count());
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
}

/// One timed phase: a name and its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanEvent {
    /// Phase name (static so recording never allocates for the name).
    pub name: &'static str,
    /// Wall-clock nanoseconds spent in the phase.
    pub nanos: u64,
}

/// The shared counter registry behind a [`Metrics`] handle. All fields
/// are public: instrumentation sites poke them directly.
#[derive(Debug, Default)]
pub struct Registry {
    /// Pike-VM simulation steps (one per live NFA state per position).
    pub vm_steps: Counter,
    /// NFA state-set size, sampled once per input position.
    pub vm_state_set: Histogram,
    /// Parse-DAG node visits during path extraction/enumeration.
    pub vm_path_visits: Counter,
    /// Tree-matcher node visits.
    pub match_visits: Counter,
    /// Memoized sub-pattern answers reused instead of re-derived.
    pub match_memo_hits: Counter,
    /// Candidate roots examined for a full-pattern match.
    pub match_candidates: Counter,
    /// Candidates rejected before any match was emitted.
    pub match_candidates_pruned: Counter,
    /// Tree matches emitted.
    pub matches_found: Counter,
    /// Split pieces assembled.
    pub split_pieces: Counter,
    /// Concatenation points (α) per assembled piece.
    pub split_cuts: Histogram,
    /// Compiled-pattern cache lookups.
    pub cache_lookups: Counter,
    /// Compiled-pattern cache hits.
    pub cache_hits: Counter,
    /// Compiled-pattern cache misses (compilations performed).
    pub cache_misses: Counter,
    /// Items processed by pool workers (own shard + stolen).
    pub pool_items: Counter,
    /// Successful steals of a victim's back half.
    pub pool_steals: Counter,
    /// Worker guard flushes into the fleet core.
    pub pool_flushes: Counter,
    /// Workers minted (1 for the inline serial path).
    pub pool_workers: Counter,
    /// Submissions admitted past the service front door.
    pub svc_admitted: Counter,
    /// Submissions shed (rejected) by admission control.
    pub svc_shed: Counter,
    /// Retry attempts launched after a transient failure.
    pub svc_retried: Counter,
    /// Circuit-breaker trips (closed → open transitions).
    pub svc_tripped: Counter,
    /// Degraded (partial/bounded) responses served while a breaker was
    /// open.
    pub svc_degraded: Counter,
    /// WAL frames appended by the durability layer.
    pub wal_appends: Counter,
    /// WAL bytes appended (frame headers included).
    pub wal_bytes: Counter,
    /// Checkpoints (snapshots) written to completion.
    pub snapshots_written: Counter,
    /// Successful durable-store opens (each one is a recovery).
    pub recoveries: Counter,
    /// Per-shard opens performed inside a sharded-store recovery.
    pub shard_recoveries: Counter,
    /// Scatter-gather forest executions (one per sharded query).
    pub scatter_queries: Counter,
    /// Per-shard batches dispatched by scatter-gather execution.
    pub scatter_batches: Counter,
    /// WAL frames re-applied while recovering.
    pub recovery_frames_replayed: Counter,
    /// Torn-tail bytes discarded while recovering.
    pub recovery_bytes_truncated: Counter,
    /// Indices rebuilt from registered specs after replay.
    pub recovery_indices_rebuilt: Counter,
    /// WAL-frame-bound merkle roots verified during recovery.
    pub integrity_roots_verified: Counter,
    /// Split reassembly certificates emitted by guarded execution.
    pub certs_emitted: Counter,
    /// Certificates revalidated (inline by the service or offline).
    pub certs_checked: Counter,
    /// Certificate checks that found a mismatch.
    pub certs_failed: Counter,
    /// Participant prepare frames logged (2PC phase 1).
    pub txn_prepared: Counter,
    /// Cross-shard transactions committed (decision + all outcomes).
    pub txn_committed: Counter,
    /// Cross-shard transactions aborted cleanly (decision logged).
    pub txn_aborted: Counter,
    /// Orphaned prepares resolved by presumed abort during recovery.
    pub txn_presumed_abort: Counter,
    /// Prepare→decision latency per 2PC commit, microseconds.
    pub txn_decide_us: Histogram,
    /// Shard-count changes (rebalances) run to completion.
    pub rebalance_runs: Counter,
    /// Subtree moves committed while rebalancing.
    pub rebalance_moves: Counter,
    /// Subtree moves completed by resume-on-open after an interruption.
    pub rebalance_resumed: Counter,
    /// Per-subtree move latency (prepare→outcome), microseconds.
    pub rebalance_move_us: Histogram,
    spans: Mutex<Vec<SpanEvent>>,
    spans_dropped: Counter,
}

/// A cheaply cloneable handle on a shared [`Registry`]. Clones observe
/// the same counters, so a fleet of workers can all record into one
/// sink. Derefs to [`Registry`] for direct counter access.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Arc<Registry>);

impl std::ops::Deref for Metrics {
    type Target = Registry;
    fn deref(&self) -> &Registry {
        &self.0
    }
}

impl Metrics {
    /// A fresh sink with all counters at zero.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Whether two handles share one registry.
    pub fn same_sink(&self, other: &Metrics) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Record a completed span. Beyond [`SPAN_CAP`] the event is
    /// dropped and counted in `spans_dropped`.
    pub fn record_span(&self, name: &'static str, nanos: u64) {
        let mut spans = self.0.spans.lock().unwrap_or_else(|p| p.into_inner());
        if spans.len() < SPAN_CAP {
            spans.push(SpanEvent { name, nanos });
        } else {
            self.0.spans_dropped.inc();
        }
    }

    /// Time `f` as a span named `name` and return its value.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let r = f();
        self.record_span(
            name,
            start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        r
    }

    /// Freeze every counter into a [`MetricsSnapshot`]. The engine
    /// progress fields (`engine_steps`, `engine_results`,
    /// `engine_elapsed_nanos`) stay zero — the guard layer stamps them
    /// from its own `Progress`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = &*self.0;
        let mut spans = r.spans.lock().unwrap_or_else(|p| p.into_inner()).clone();
        spans.sort();
        MetricsSnapshot {
            engine_steps: 0,
            engine_results: 0,
            engine_elapsed_nanos: 0,
            vm_steps: r.vm_steps.get(),
            vm_state_set: r.vm_state_set.snapshot(),
            vm_path_visits: r.vm_path_visits.get(),
            match_visits: r.match_visits.get(),
            match_memo_hits: r.match_memo_hits.get(),
            match_candidates: r.match_candidates.get(),
            match_candidates_pruned: r.match_candidates_pruned.get(),
            matches_found: r.matches_found.get(),
            split_pieces: r.split_pieces.get(),
            split_cuts: r.split_cuts.snapshot(),
            cache_lookups: r.cache_lookups.get(),
            cache_hits: r.cache_hits.get(),
            cache_misses: r.cache_misses.get(),
            pool_items: r.pool_items.get(),
            pool_steals: r.pool_steals.get(),
            pool_flushes: r.pool_flushes.get(),
            pool_workers: r.pool_workers.get(),
            svc_admitted: r.svc_admitted.get(),
            svc_shed: r.svc_shed.get(),
            svc_retried: r.svc_retried.get(),
            svc_tripped: r.svc_tripped.get(),
            svc_degraded: r.svc_degraded.get(),
            wal_appends: r.wal_appends.get(),
            wal_bytes: r.wal_bytes.get(),
            snapshots_written: r.snapshots_written.get(),
            recoveries: r.recoveries.get(),
            shard_recoveries: r.shard_recoveries.get(),
            scatter_queries: r.scatter_queries.get(),
            scatter_batches: r.scatter_batches.get(),
            recovery_frames_replayed: r.recovery_frames_replayed.get(),
            recovery_bytes_truncated: r.recovery_bytes_truncated.get(),
            recovery_indices_rebuilt: r.recovery_indices_rebuilt.get(),
            integrity_roots_verified: r.integrity_roots_verified.get(),
            certs_emitted: r.certs_emitted.get(),
            certs_checked: r.certs_checked.get(),
            certs_failed: r.certs_failed.get(),
            txn_prepared: r.txn_prepared.get(),
            txn_committed: r.txn_committed.get(),
            txn_aborted: r.txn_aborted.get(),
            txn_presumed_abort: r.txn_presumed_abort.get(),
            txn_decide_us: r.txn_decide_us.snapshot(),
            rebalance_runs: r.rebalance_runs.get(),
            rebalance_moves: r.rebalance_moves.get(),
            rebalance_resumed: r.rebalance_resumed.get(),
            rebalance_move_us: r.rebalance_move_us.snapshot(),
            spans,
            spans_dropped: r.spans_dropped.get(),
        }
    }
}

/// A frozen, mergeable view of one execution's metrics. Everything is
/// plain data; [`to_json`](MetricsSnapshot::to_json) renders the
/// single-line hand-rolled JSON the bench harness already speaks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Guard-accounted steps (stamped from `Progress` by the guard
    /// layer; equals the guard's step count exactly).
    pub engine_steps: u64,
    /// Guard-accounted results emitted.
    pub engine_results: u64,
    /// Wall-clock nanoseconds since the guard started.
    pub engine_elapsed_nanos: u64,
    /// See [`Registry::vm_steps`].
    pub vm_steps: u64,
    /// See [`Registry::vm_state_set`].
    pub vm_state_set: HistogramSnapshot,
    /// See [`Registry::vm_path_visits`].
    pub vm_path_visits: u64,
    /// See [`Registry::match_visits`].
    pub match_visits: u64,
    /// See [`Registry::match_memo_hits`].
    pub match_memo_hits: u64,
    /// See [`Registry::match_candidates`].
    pub match_candidates: u64,
    /// See [`Registry::match_candidates_pruned`].
    pub match_candidates_pruned: u64,
    /// See [`Registry::matches_found`].
    pub matches_found: u64,
    /// See [`Registry::split_pieces`].
    pub split_pieces: u64,
    /// See [`Registry::split_cuts`].
    pub split_cuts: HistogramSnapshot,
    /// See [`Registry::cache_lookups`].
    pub cache_lookups: u64,
    /// See [`Registry::cache_hits`].
    pub cache_hits: u64,
    /// See [`Registry::cache_misses`].
    pub cache_misses: u64,
    /// See [`Registry::pool_items`].
    pub pool_items: u64,
    /// See [`Registry::pool_steals`].
    pub pool_steals: u64,
    /// See [`Registry::pool_flushes`].
    pub pool_flushes: u64,
    /// See [`Registry::pool_workers`].
    pub pool_workers: u64,
    /// See [`Registry::svc_admitted`].
    pub svc_admitted: u64,
    /// See [`Registry::svc_shed`].
    pub svc_shed: u64,
    /// See [`Registry::svc_retried`].
    pub svc_retried: u64,
    /// See [`Registry::svc_tripped`].
    pub svc_tripped: u64,
    /// See [`Registry::svc_degraded`].
    pub svc_degraded: u64,
    /// See [`Registry::wal_appends`].
    pub wal_appends: u64,
    /// See [`Registry::wal_bytes`].
    pub wal_bytes: u64,
    /// See [`Registry::snapshots_written`].
    pub snapshots_written: u64,
    /// See [`Registry::recoveries`].
    pub recoveries: u64,
    /// See [`Registry::shard_recoveries`].
    pub shard_recoveries: u64,
    /// See [`Registry::scatter_queries`].
    pub scatter_queries: u64,
    /// See [`Registry::scatter_batches`].
    pub scatter_batches: u64,
    /// See [`Registry::recovery_frames_replayed`].
    pub recovery_frames_replayed: u64,
    /// See [`Registry::recovery_bytes_truncated`].
    pub recovery_bytes_truncated: u64,
    /// See [`Registry::recovery_indices_rebuilt`].
    pub recovery_indices_rebuilt: u64,
    /// See [`Registry::integrity_roots_verified`].
    pub integrity_roots_verified: u64,
    /// See [`Registry::certs_emitted`].
    pub certs_emitted: u64,
    /// See [`Registry::certs_checked`].
    pub certs_checked: u64,
    /// See [`Registry::certs_failed`].
    pub certs_failed: u64,
    /// See [`Registry::txn_prepared`].
    pub txn_prepared: u64,
    /// See [`Registry::txn_committed`].
    pub txn_committed: u64,
    /// See [`Registry::txn_aborted`].
    pub txn_aborted: u64,
    /// See [`Registry::txn_presumed_abort`].
    pub txn_presumed_abort: u64,
    /// See [`Registry::txn_decide_us`].
    pub txn_decide_us: HistogramSnapshot,
    /// See [`Registry::rebalance_runs`].
    pub rebalance_runs: u64,
    /// See [`Registry::rebalance_moves`].
    pub rebalance_moves: u64,
    /// See [`Registry::rebalance_resumed`].
    pub rebalance_resumed: u64,
    /// See [`Registry::rebalance_move_us`].
    pub rebalance_move_us: HistogramSnapshot,
    /// Completed spans, canonically sorted.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded past [`SPAN_CAP`].
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Field-wise sum with `other` — commutative and associative, so
    /// merging per-worker snapshots is order-independent. Spans
    /// concatenate and re-sort canonically. Only merge snapshots taken
    /// from *distinct* sinks, or counts double.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.engine_steps += other.engine_steps;
        self.engine_results += other.engine_results;
        self.engine_elapsed_nanos += other.engine_elapsed_nanos;
        self.vm_steps += other.vm_steps;
        self.vm_state_set.merge(&other.vm_state_set);
        self.vm_path_visits += other.vm_path_visits;
        self.match_visits += other.match_visits;
        self.match_memo_hits += other.match_memo_hits;
        self.match_candidates += other.match_candidates;
        self.match_candidates_pruned += other.match_candidates_pruned;
        self.matches_found += other.matches_found;
        self.split_pieces += other.split_pieces;
        self.split_cuts.merge(&other.split_cuts);
        self.cache_lookups += other.cache_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pool_items += other.pool_items;
        self.pool_steals += other.pool_steals;
        self.pool_flushes += other.pool_flushes;
        self.pool_workers += other.pool_workers;
        self.svc_admitted += other.svc_admitted;
        self.svc_shed += other.svc_shed;
        self.svc_retried += other.svc_retried;
        self.svc_tripped += other.svc_tripped;
        self.svc_degraded += other.svc_degraded;
        self.wal_appends += other.wal_appends;
        self.wal_bytes += other.wal_bytes;
        self.snapshots_written += other.snapshots_written;
        self.recoveries += other.recoveries;
        self.shard_recoveries += other.shard_recoveries;
        self.scatter_queries += other.scatter_queries;
        self.scatter_batches += other.scatter_batches;
        self.recovery_frames_replayed += other.recovery_frames_replayed;
        self.recovery_bytes_truncated += other.recovery_bytes_truncated;
        self.recovery_indices_rebuilt += other.recovery_indices_rebuilt;
        self.integrity_roots_verified += other.integrity_roots_verified;
        self.certs_emitted += other.certs_emitted;
        self.certs_checked += other.certs_checked;
        self.certs_failed += other.certs_failed;
        self.txn_prepared += other.txn_prepared;
        self.txn_committed += other.txn_committed;
        self.txn_aborted += other.txn_aborted;
        self.txn_presumed_abort += other.txn_presumed_abort;
        self.txn_decide_us.merge(&other.txn_decide_us);
        self.rebalance_runs += other.rebalance_runs;
        self.rebalance_moves += other.rebalance_moves;
        self.rebalance_resumed += other.rebalance_resumed;
        self.rebalance_move_us.merge(&other.rebalance_move_us);
        self.spans.extend(other.spans.iter().cloned());
        self.spans.sort();
        self.spans_dropped += other.spans_dropped;
    }

    /// Whether every counter is zero — what a disarmed run reports
    /// (engine progress fields excluded; the guard stamps those whether
    /// or not detailed metrics are armed).
    pub fn is_disarmed_zero(&self) -> bool {
        self.vm_steps == 0
            && self.vm_state_set.count() == 0
            && self.vm_path_visits == 0
            && self.match_visits == 0
            && self.match_memo_hits == 0
            && self.match_candidates == 0
            && self.match_candidates_pruned == 0
            && self.matches_found == 0
            && self.split_pieces == 0
            && self.split_cuts.count() == 0
            && self.cache_lookups == 0
            && self.cache_hits == 0
            && self.cache_misses == 0
            && self.pool_items == 0
            && self.pool_steals == 0
            && self.pool_flushes == 0
            && self.pool_workers == 0
            && self.svc_admitted == 0
            && self.svc_shed == 0
            && self.svc_retried == 0
            && self.svc_tripped == 0
            && self.svc_degraded == 0
            && self.wal_appends == 0
            && self.wal_bytes == 0
            && self.snapshots_written == 0
            && self.recoveries == 0
            && self.shard_recoveries == 0
            && self.scatter_queries == 0
            && self.scatter_batches == 0
            && self.recovery_frames_replayed == 0
            && self.recovery_bytes_truncated == 0
            && self.recovery_indices_rebuilt == 0
            && self.integrity_roots_verified == 0
            && self.certs_emitted == 0
            && self.certs_checked == 0
            && self.certs_failed == 0
            && self.txn_prepared == 0
            && self.txn_committed == 0
            && self.txn_aborted == 0
            && self.txn_presumed_abort == 0
            && self.txn_decide_us.count() == 0
            && self.rebalance_runs == 0
            && self.rebalance_moves == 0
            && self.rebalance_resumed == 0
            && self.rebalance_move_us.count() == 0
            && self.spans.is_empty()
            && self.spans_dropped == 0
    }

    /// Single-line JSON in the bench harness's hand-rolled style.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"engine_steps\":{},\"engine_results\":{},\"engine_elapsed_nanos\":{}",
            self.engine_steps, self.engine_results, self.engine_elapsed_nanos
        );
        let _ = write!(out, ",\"vm_steps\":{}", self.vm_steps);
        out.push_str(",\"vm_state_set\":");
        self.vm_state_set.json_into(&mut out);
        let _ = write!(
            out,
            ",\"vm_path_visits\":{},\"match_visits\":{},\"match_memo_hits\":{}",
            self.vm_path_visits, self.match_visits, self.match_memo_hits
        );
        let _ = write!(
            out,
            ",\"match_candidates\":{},\"match_candidates_pruned\":{},\"matches_found\":{}",
            self.match_candidates, self.match_candidates_pruned, self.matches_found
        );
        let _ = write!(out, ",\"split_pieces\":{}", self.split_pieces);
        out.push_str(",\"split_cuts\":");
        self.split_cuts.json_into(&mut out);
        let _ = write!(
            out,
            ",\"cache_lookups\":{},\"cache_hits\":{},\"cache_misses\":{}",
            self.cache_lookups, self.cache_hits, self.cache_misses
        );
        let _ = write!(
            out,
            ",\"pool_items\":{},\"pool_steals\":{},\"pool_flushes\":{},\"pool_workers\":{}",
            self.pool_items, self.pool_steals, self.pool_flushes, self.pool_workers
        );
        let _ = write!(
            out,
            ",\"svc_admitted\":{},\"svc_shed\":{},\"svc_retried\":{},\"svc_tripped\":{},\"svc_degraded\":{}",
            self.svc_admitted, self.svc_shed, self.svc_retried, self.svc_tripped, self.svc_degraded
        );
        let _ = write!(
            out,
            ",\"wal_appends\":{},\"wal_bytes\":{},\"snapshots_written\":{}",
            self.wal_appends, self.wal_bytes, self.snapshots_written
        );
        let _ = write!(
            out,
            ",\"shard_recoveries\":{},\"scatter_queries\":{},\"scatter_batches\":{}",
            self.shard_recoveries, self.scatter_queries, self.scatter_batches
        );
        let _ = write!(
            out,
            ",\"recoveries\":{},\"recovery_frames_replayed\":{},\"recovery_bytes_truncated\":{},\"recovery_indices_rebuilt\":{}",
            self.recoveries,
            self.recovery_frames_replayed,
            self.recovery_bytes_truncated,
            self.recovery_indices_rebuilt
        );
        let _ = write!(
            out,
            ",\"integrity_roots_verified\":{},\"certs_emitted\":{},\"certs_checked\":{},\"certs_failed\":{}",
            self.integrity_roots_verified, self.certs_emitted, self.certs_checked, self.certs_failed
        );
        let _ = write!(
            out,
            ",\"txn_prepared\":{},\"txn_committed\":{},\"txn_aborted\":{},\"txn_presumed_abort\":{}",
            self.txn_prepared, self.txn_committed, self.txn_aborted, self.txn_presumed_abort
        );
        out.push_str(",\"txn_decide_us\":");
        self.txn_decide_us.json_into(&mut out);
        let _ = write!(
            out,
            ",\"rebalance_runs\":{},\"rebalance_moves\":{},\"rebalance_resumed\":{}",
            self.rebalance_runs, self.rebalance_moves, self.rebalance_resumed
        );
        out.push_str(",\"rebalance_move_us\":");
        self.rebalance_move_us.json_into(&mut out);
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"nanos\":{}}}",
                escape(s.name),
                s.nanos
            );
        }
        let _ = write!(out, "],\"spans_dropped\":{}}}", self.spans_dropped);
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Human-oriented multi-line rendering (zero rows elided).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} steps, {} results, {:.3}ms",
            self.engine_steps,
            self.engine_results,
            self.engine_elapsed_nanos as f64 / 1e6
        )?;
        let rows: [(&str, u64); 40] = [
            ("pike-vm steps", self.vm_steps),
            ("parse-dag visits", self.vm_path_visits),
            ("tree visits", self.match_visits),
            ("memo hits", self.match_memo_hits),
            ("candidates", self.match_candidates),
            ("candidates pruned", self.match_candidates_pruned),
            ("matches", self.matches_found),
            ("split pieces", self.split_pieces),
            ("cache lookups", self.cache_lookups),
            ("cache hits", self.cache_hits),
            ("cache misses", self.cache_misses),
            ("pool items", self.pool_items),
            ("pool steals", self.pool_steals),
            ("pool workers", self.pool_workers),
            ("service admitted", self.svc_admitted),
            ("service shed", self.svc_shed),
            ("service retried", self.svc_retried),
            ("service tripped", self.svc_tripped),
            ("service degraded", self.svc_degraded),
            ("wal appends", self.wal_appends),
            ("wal bytes", self.wal_bytes),
            ("snapshots written", self.snapshots_written),
            ("recoveries", self.recoveries),
            ("shard recoveries", self.shard_recoveries),
            ("scatter queries", self.scatter_queries),
            ("scatter batches", self.scatter_batches),
            ("recovery frames replayed", self.recovery_frames_replayed),
            ("recovery bytes truncated", self.recovery_bytes_truncated),
            ("recovery indices rebuilt", self.recovery_indices_rebuilt),
            ("integrity roots verified", self.integrity_roots_verified),
            ("certs emitted", self.certs_emitted),
            ("certs checked", self.certs_checked),
            ("certs failed", self.certs_failed),
            ("txns prepared", self.txn_prepared),
            ("txns committed", self.txn_committed),
            ("txns aborted", self.txn_aborted),
            ("txns presumed abort", self.txn_presumed_abort),
            ("rebalance runs", self.rebalance_runs),
            ("rebalance moves", self.rebalance_moves),
            ("rebalance moves resumed", self.rebalance_resumed),
        ];
        for (name, v) in rows {
            if v > 0 {
                writeln!(f, "{name}: {v}")?;
            }
        }
        if self.vm_state_set.count() > 0 {
            writeln!(
                f,
                "state-set sizes: {} samples, max < {}",
                self.vm_state_set.count(),
                self.vm_state_set.max_bound().unwrap_or(0)
            )?;
        }
        if self.txn_decide_us.count() > 0 {
            writeln!(
                f,
                "txn decide latency: {} commits, max < {}µs",
                self.txn_decide_us.count(),
                self.txn_decide_us.max_bound().unwrap_or(0)
            )?;
        }
        if self.rebalance_move_us.count() > 0 {
            writeln!(
                f,
                "rebalance move latency: {} moves, max < {}µs",
                self.rebalance_move_us.count(),
                self.rebalance_move_us.max_bound().unwrap_or(0)
            )?;
        }
        for s in &self.spans {
            writeln!(f, "span {}: {:.3}ms", s.name, s.nanos as f64 / 1e6)?;
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        // 0→b0, 1→b1, {2,3}→b2, {4,7}→b3, 8→b4, 1024→b11.
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 2);
        assert_eq!(s.buckets[4], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.buckets.len(), 12, "trailing zeros trimmed");
        assert_eq!(s.count(), 8);
        assert_eq!(s.max_bound(), Some(2048));
        assert!(u64::MAX.leading_zeros() == 0, "top bucket exists");
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let a = Metrics::new();
        a.vm_steps.add(10);
        a.vm_state_set.record(3);
        a.record_span("scan", 5);
        let b = Metrics::new();
        b.vm_steps.add(7);
        b.matches_found.add(2);
        b.record_span("probe", 9);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.vm_steps, 17);
        assert_eq!(ab.spans.len(), 2);
    }

    #[test]
    fn disarmed_zero_detection() {
        let fresh = Metrics::new().snapshot();
        assert!(fresh.is_disarmed_zero());
        let mut stamped = fresh.clone();
        stamped.engine_steps = 99;
        assert!(
            stamped.is_disarmed_zero(),
            "engine progress does not arm detailed counters"
        );
        let armed = {
            let m = Metrics::new();
            m.match_visits.inc();
            m.snapshot()
        };
        assert!(!armed.is_disarmed_zero());
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let m = Metrics::new();
        for _ in 0..(SPAN_CAP + 3) {
            m.record_span("x", 1);
        }
        let s = m.snapshot();
        assert_eq!(s.spans.len(), SPAN_CAP);
        assert_eq!(s.spans_dropped, 3);
    }

    #[test]
    fn json_is_single_line_and_balanced() {
        let m = Metrics::new();
        m.vm_steps.add(5);
        m.vm_state_set.record(2);
        m.record_span("phase \"q\"", 123);
        let mut s = m.snapshot();
        s.engine_steps = 5;
        let j = s.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
        assert!(j.contains("\"engine_steps\":5"));
        assert!(j.contains("\\\"q\\\""), "span names escaped: {j}");
    }

    #[test]
    fn clones_share_a_sink() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.pool_items.add(4);
        assert!(m.same_sink(&m2));
        assert_eq!(m.snapshot().pool_items, 4);
        assert!(!m.same_sink(&Metrics::new()));
    }

    #[test]
    fn time_records_a_span() {
        let m = Metrics::new();
        let v = m.time("work", || 7);
        assert_eq!(v, 7);
        let s = m.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "work");
    }
}
