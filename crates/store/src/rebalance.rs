//! # Online shard rebalancing
//!
//! Crash-safe shard-count changes for a [`ShardedStore`]: grow N→M or
//! shrink M→N while the store stays openable at every intermediate
//! byte. The unit of migration is a whole **top-segment subtree** —
//! every extent sharing one top path segment moves together, so the
//! co-location invariant the router guarantees (same top segment, same
//! shard) holds before, during, and after the relayout.
//!
//! ## Protocol
//!
//! 1. **Pin the stanza.** `shards.meta` gains a `migrating_to M` line
//!    while keeping the old count and epoch. The stanza is the ground
//!    truth: any opener that sees it resumes the migration before
//!    serving queries; an opener that does not is guaranteed the layout
//!    is settled.
//! 2. **Grow the fleet** (grow only): the target shards are opened
//!    (created empty) and the schema — class definitions in id order
//!    plus class-wide [`IndexSpec::Attr`] specs — is replicated onto
//!    them, idempotently.
//! 3. **Move subtrees**, one coordinator-logged transaction each. The
//!    move plan is derived by *state inspection* — every extent whose
//!    current shard disagrees with the target layout's owner nominates
//!    its top segment — so a fresh run and a resume plan identically
//!    with no extra bookkeeping. Each move prepares fsync'd
//!    [`WalRecord::TxnPrepare`] frames in both the source WAL (extent
//!    drops) and the destination WAL (object inserts, extent
//!    re-creates, per-extent index specs), logs one decision frame in
//!    `txn.log/`, then applies both outcomes — the exact
//!    presumed-abort machinery of [`ShardedStore::commit_gated`],
//!    reused via the shared two-phase-commit core with `rebalance.*`
//!    failpoints at its phase boundaries.
//! 4. **Commit the layout.** After the last move, `shards.meta` is
//!    atomically rewritten to the new count at **epoch + 1**, and only
//!    then are drained shard directories (shrink) and the migration
//!    log removed.
//!
//! A crash before step 4's meta rewrite resumes under the stanza
//! (moves already decided roll forward, undecided prepares presumed
//! abort, the plan re-derives what is left); a crash after it leaves a
//! settled store whose next open merely sweeps leftovers. The value
//! fingerprint never changes: objects are copied before the extents
//! that reference them and OIDs are remapped in creation order, so
//! every extent renders the same values from its new home. Orphaned
//! objects (unreachable from any extent) stay behind — identity is
//! shard-local and never part of the value contract.
//!
//! The migration log (`rebalance.log/`, [`WalRecord::RebalanceBegin`] /
//! [`WalRecord::RebalanceMoved`] / [`WalRecord::RebalanceCommit`]) is
//! an **advisory** progress trail for operators and tests: it is
//! scanned leniently on resume and reset wholesale on any corruption,
//! because the stanza plus shard state already determine exactly what
//! remains to move.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

use aqua_guard::failpoint;
use aqua_object::{Oid, Value};

use crate::codec::{IndexSpec, WalRecord};
use crate::error::{Result, StoreError, TxnError};
use crate::recovery::DurableStore;
use crate::shard::{
    read_meta, shard_dir_name, write_meta, ExtentPath, PhaseProbes, ShardLayoutMeta, ShardRouter,
    ShardedStore, REBALANCE_LOG_DIR,
};
use crate::wal::{list_segments, scan_segment, Wal, WalConfig};

/// Failpoint before the migration stanza is pinned (crash ⇒ settled
/// store, nothing started).
pub const REBALANCE_BEGIN_CRASH: &str = "rebalance.begin.crash";
/// Failpoint inside a move's prepare phase (also armable per
/// participant as `rebalance.prepare.crash.<shard>`).
pub const REBALANCE_PREPARE_CRASH: &str = "rebalance.prepare.crash";
/// Failpoint between a move's prepares and its decision frame.
pub const REBALANCE_DECIDE_CRASH: &str = "rebalance.decide.crash";
/// Failpoint inside a move's outcome phase (also armable per
/// participant as `rebalance.outcome.crash.<shard>`).
pub const REBALANCE_OUTCOME_CRASH: &str = "rebalance.outcome.crash";
/// Failpoint after a move committed, before its advisory log frame.
pub const REBALANCE_MOVED_CRASH: &str = "rebalance.moved.crash";
/// Failpoint after every move, before the final layout commit.
pub const REBALANCE_COMMIT_CRASH: &str = "rebalance.commit.crash";
/// Failpoint after the layout commit, before leftover cleanup.
pub const REBALANCE_CLEANUP_CRASH: &str = "rebalance.cleanup.crash";

/// Probe names a rebalance subtree move checks at its 2PC boundaries.
const REBALANCE_PROBES: PhaseProbes = PhaseProbes {
    prepare: REBALANCE_PREPARE_CRASH,
    decide: REBALANCE_DECIDE_CRASH,
    outcome: REBALANCE_OUTCOME_CRASH,
};

/// What a completed [`ShardedStore::rebalance`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// The layout epoch the store now serves at (old epoch + 1).
    pub epoch: u64,
    /// Subtree moves committed by this call.
    pub moves: u64,
    /// Whether this call picked up an already-pinned migration stanza
    /// instead of starting fresh.
    pub resumed: bool,
}

impl std::fmt::Display for RebalanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rebalanced {} → {} shards (epoch {}): {} subtree moves{}",
            self.from,
            self.to,
            self.epoch,
            self.moves,
            if self.resumed { ", resumed" } else { "" }
        )
    }
}

/// The top path segment an extent name migrates under (`""` for the
/// root path).
fn top_key(name: &str) -> String {
    ExtentPath::parse(name)
        .segments()
        .first()
        .map(|s| String::from_utf8_lossy(s).into_owned())
        .unwrap_or_default()
}

impl ShardedStore {
    /// Change the shard count online. See the [module docs](self) for
    /// the protocol; this is the ungated spelling of
    /// [`rebalance_gated`](Self::rebalance_gated).
    pub fn rebalance(&mut self, to: usize) -> Result<RebalanceReport> {
        self.rebalance_gated(to, || true)
    }

    /// Change the shard count online, polling `gate` before every
    /// subtree move and once more before the final layout commit. A
    /// gate refusal (or a clean per-move abort) surfaces as the
    /// *transient* [`StoreError::Rebalance`]: the stanza stays pinned,
    /// nothing is lost, and either calling again or reopening the store
    /// resumes the migration where it stopped. Calling with the
    /// currently settled count is a no-op; calling with a target that
    /// disagrees with an already-pinned migration is refused.
    pub fn rebalance_gated(
        &mut self,
        to: usize,
        mut gate: impl FnMut() -> bool,
    ) -> Result<RebalanceReport> {
        let epoch = self.router.epoch();
        if to == 0 {
            return Err(StoreError::Rebalance {
                epoch,
                msg: "target shard count must be ≥ 1".to_string(),
            });
        }
        let meta = read_meta(&self.dir)?.ok_or_else(|| StoreError::Rebalance {
            epoch,
            msg: format!("{} has no pinned layout to rebalance", self.dir.display()),
        })?;
        let resumed = match meta.migrating_to {
            Some(pinned) if pinned != to => {
                return Err(StoreError::Rebalance {
                    epoch: meta.epoch,
                    msg: format!(
                        "a migration to {pinned} shards is already pinned; it must finish \
                         (or resume) before a rebalance to {to} can begin"
                    ),
                });
            }
            Some(_) => true,
            None if to == meta.shards => {
                return Ok(RebalanceReport {
                    from: to,
                    to,
                    epoch: meta.epoch,
                    moves: 0,
                    resumed: false,
                });
            }
            None => {
                failpoint::check(REBALANCE_BEGIN_CRASH)?;
                // Pin the stanza *before* any shard sees a byte of the
                // migration: from here every opener resumes.
                write_meta(
                    &self.dir,
                    ShardLayoutMeta {
                        shards: meta.shards,
                        epoch: meta.epoch,
                        migrating_to: Some(to),
                    },
                )?;
                false
            }
        };
        let (from, epoch) = (meta.shards, meta.epoch);
        self.ensure_target_shards(from.max(to))?;
        self.replicate_schema(from, to)?;
        self.router = ShardRouter::migrating(from, to, epoch);
        let moves = self.complete_rebalance(from, to, epoch, &mut gate)?;
        Ok(RebalanceReport {
            from,
            to,
            epoch: epoch + 1,
            moves,
            resumed,
        })
    }

    /// Resume the migration a pinned stanza describes — called by
    /// [`ShardedStore::open`] after transaction resolution, before the
    /// global-root fold. Returns how many subtree moves this resume
    /// completed.
    pub(crate) fn resume_rebalance(&mut self, meta: ShardLayoutMeta, to: usize) -> Result<u64> {
        let from = meta.shards;
        self.replicate_schema(from, to)?;
        self.complete_rebalance(from, to, meta.epoch, &mut || true)
    }

    /// Remove what a completed rebalance may have left behind when it
    /// died between the layout commit and cleanup: the advisory
    /// migration log, and (after a shrink) drained shard directories
    /// past the settled count. Idempotent; called on every settled
    /// open and at the tail of every rebalance.
    pub(crate) fn sweep_rebalance_leftovers(&mut self) -> Result<()> {
        let log_dir = self.dir.join(REBALANCE_LOG_DIR);
        if log_dir.is_dir() {
            std::fs::remove_dir_all(&log_dir)
                .map_err(|e| StoreError::io("remove_dir", log_dir.display(), e))?;
        }
        // Shard directories are created in order, so the first missing
        // index past the settled count ends the sweep.
        let mut k = self.shards.len();
        loop {
            let dir = self.dir.join(shard_dir_name(k));
            if !dir.is_dir() {
                return Ok(());
            }
            std::fs::remove_dir_all(&dir)
                .map_err(|e| StoreError::io("remove_dir", dir.display(), e))?;
            k += 1;
        }
    }

    /// Open (creating empty) every shard up to `count`, arming each
    /// with this store's metrics sink. Grow-only; a shrink keeps the
    /// full fleet open until the layout commit.
    fn ensure_target_shards(&mut self, count: usize) -> Result<()> {
        while self.shards.len() < count {
            let dir = self.dir.join(shard_dir_name(self.shards.len()));
            let (mut ds, _report) = DurableStore::open(&dir, self.shard_cfg.clone())?;
            if let Some(m) = &self.metrics {
                ds.set_metrics(m.clone());
            }
            self.shards.push(ds);
        }
        Ok(())
    }

    /// Replicate the global schema onto the shards a grow added: class
    /// definitions in id order (so the deterministic [`aqua_object::ClassId`]
    /// assignment agrees fleet-wide), then class-wide attribute index
    /// specs. Idempotent — a resumed grow re-runs it harmlessly.
    fn replicate_schema(&mut self, from: usize, to: usize) -> Result<()> {
        if to <= from || from == 0 {
            return Ok(());
        }
        let defs: Vec<aqua_object::ClassDef> = (0..self.shards[0].store().class_count())
            .map(|id| {
                self.shards[0]
                    .store()
                    .class(aqua_object::ClassId(id as u32))
                    .clone()
            })
            .collect();
        let attr_specs: Vec<IndexSpec> = self.shards[0]
            .specs()
            .iter()
            .filter(|s| matches!(s, IndexSpec::Attr { .. }))
            .cloned()
            .collect();
        for sh in self.shards[from..to].iter_mut() {
            for def in &defs {
                if sh.store().class_id(def.name()).is_err() {
                    sh.define_class(def.clone())?;
                }
            }
            for spec in &attr_specs {
                if !sh.specs().contains(spec) {
                    sh.register_index(spec.clone())?;
                }
            }
        }
        Ok(())
    }

    /// The sorted move plan, derived from state: every extent whose
    /// current shard disagrees with the target layout's owner nominates
    /// `(top segment, current shard, owner)`. Identical whether the
    /// migration is fresh or resumed — committed moves no longer
    /// disagree, so they drop out on their own.
    fn plan_moves(&self) -> Vec<(String, usize, usize)> {
        let mut plan = BTreeSet::new();
        for (s, store) in self.shards.iter().enumerate() {
            for name in store.trees().keys().chain(store.lists().keys()) {
                let dest = self.router.route_name(name);
                if dest != s {
                    plan.insert((top_key(name), s, dest));
                }
            }
        }
        plan.into_iter().collect()
    }

    /// Build one subtree move's per-participant buffers. Destination:
    /// inserts for every object the moving extents reach (closed over
    /// `Ref`-valued attributes, first-seen order, OIDs predicted from
    /// the destination's next slot), then list re-creates with pushes
    /// in position order, tree re-creates with payload OIDs remapped,
    /// and the per-extent index specs. Source: one drop per moved
    /// extent. Orphans — objects no extent reaches — stay behind.
    fn move_buffers(&self, src: usize, dest: usize, top: &str) -> BTreeMap<u32, Vec<WalRecord>> {
        let src_store = &self.shards[src];
        let list_names: Vec<String> = src_store
            .lists()
            .keys()
            .filter(|n| top_key(n) == top)
            .cloned()
            .collect();
        let tree_names: Vec<String> = src_store
            .trees()
            .keys()
            .filter(|n| top_key(n) == top)
            .cloned()
            .collect();

        // Reachable-object closure, first-seen order. Dangling OIDs (an
        // extent may legally reference a never-inserted slot) stay
        // unmapped and move verbatim.
        let base = self.shards[dest].store().len() as u64;
        let mut order: Vec<Oid> = Vec::new();
        let mut remap: BTreeMap<Oid, Oid> = BTreeMap::new();
        let mut queue: VecDeque<Oid> = VecDeque::new();
        for n in &list_names {
            queue.extend(src_store.list(n).expect("planned list exists").oids());
        }
        for n in &tree_names {
            let t = src_store.tree(n).expect("planned tree exists");
            queue.extend(t.iter_preorder().filter_map(|node| t.oid(node)));
        }
        while let Some(oid) = queue.pop_front() {
            if remap.contains_key(&oid) {
                continue;
            }
            let Ok(obj) = src_store.store().get(oid) else {
                continue;
            };
            remap.insert(oid, Oid(base + order.len() as u64));
            order.push(oid);
            for v in obj.values() {
                if let Value::Ref(r) = v {
                    queue.push_back(*r);
                }
            }
        }
        let moved = |oid: Oid| remap.get(&oid).copied().unwrap_or(oid);

        let mut dest_recs = Vec::new();
        for &old in &order {
            let obj = src_store.store().get(old).expect("walked object exists");
            let row: Vec<Value> = obj
                .values()
                .iter()
                .map(|v| match v {
                    Value::Ref(r) => Value::Ref(moved(*r)),
                    other => other.clone(),
                })
                .collect();
            dest_recs.push(WalRecord::Insert {
                class: obj.class(),
                row,
            });
        }
        for n in &list_names {
            dest_recs.push(WalRecord::ListCreate { name: n.clone() });
            for e in src_store.list(n).expect("planned list exists").elems() {
                if let Some(oid) = e.oid() {
                    dest_recs.push(WalRecord::ListPush {
                        name: n.clone(),
                        oid: moved(oid),
                    });
                } else if let Some(label) = e.hole() {
                    dest_recs.push(WalRecord::ListPushHole {
                        name: n.clone(),
                        label: label.0.clone(),
                    });
                }
            }
        }
        for n in &tree_names {
            let mut tree = src_store.tree(n).expect("planned tree exists").clone();
            let nodes: Vec<_> = tree.iter_preorder().collect();
            for node in nodes {
                if let Some(old) = tree.oid(node) {
                    if let Some(&new) = remap.get(&old) {
                        tree = tree
                            .set_oid(node, new)
                            .expect("node ids stay valid under payload updates");
                    }
                }
            }
            dest_recs.push(WalRecord::TreeCreate {
                name: n.clone(),
                tree,
            });
        }
        for spec in src_store.specs() {
            let rides_along = match spec {
                IndexSpec::TreeNode { tree, .. } | IndexSpec::Structural { tree } => {
                    tree_names.contains(tree)
                }
                IndexSpec::ListPos { list, .. } => list_names.contains(list),
                IndexSpec::Attr { .. } => false,
            };
            if rides_along && !self.shards[dest].specs().contains(spec) {
                dest_recs.push(WalRecord::RegisterIndex { spec: spec.clone() });
            }
        }

        let mut src_recs = Vec::new();
        for n in &list_names {
            src_recs.push(WalRecord::ListDrop { name: n.clone() });
        }
        for n in &tree_names {
            src_recs.push(WalRecord::TreeDrop { name: n.clone() });
        }

        BTreeMap::from([(src as u32, src_recs), (dest as u32, dest_recs)])
    }

    /// Open (or reset) the advisory migration log positioned to append.
    /// The scan is lenient by design: lsn gaps, unexpected record
    /// shapes, epoch mismatches, torn tails, or undecodable segments
    /// all reset the log wholesale — the stanza and shard state are the
    /// ground truth, the log is narration.
    fn open_rebalance_log(&self, from: usize, to: usize, epoch: u64) -> Result<Wal> {
        let dir = self.dir.join(REBALANCE_LOG_DIR);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
        let mut next_lsn = 1u64;
        let mut saw_begin = false;
        let mut valid = true;
        let segs = list_segments(&dir).unwrap_or_default();
        'scan: for (i, (_, path)) in segs.iter().enumerate() {
            let Ok(scan) = scan_segment(path) else {
                valid = false;
                break;
            };
            for (lsn, rec, _) in &scan.frames {
                let shaped = match rec {
                    WalRecord::RebalanceBegin {
                        epoch: e,
                        from: f,
                        to: t,
                    } => {
                        let first = !saw_begin;
                        saw_begin = true;
                        first && *e == epoch && *f == from as u32 && *t == to as u32
                    }
                    WalRecord::RebalanceMoved { epoch: e, .. }
                    | WalRecord::RebalanceCommit { epoch: e } => saw_begin && *e == epoch,
                    _ => false,
                };
                if *lsn != next_lsn || !shaped {
                    valid = false;
                    break 'scan;
                }
                next_lsn += 1;
            }
            if scan.torn() {
                // Truncate the tear and drop any later segments so the
                // surviving prefix is appendable again.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io("open", path.display(), e))?;
                f.set_len(scan.valid_len)
                    .map_err(|e| StoreError::io("truncate", path.display(), e))?;
                f.sync_data()
                    .map_err(|e| StoreError::io("fsync", path.display(), e))?;
                for (_, later) in &segs[i + 1..] {
                    std::fs::remove_file(later)
                        .map_err(|e| StoreError::io("remove", later.display(), e))?;
                }
                break;
            }
        }
        if !valid {
            for (_, path) in list_segments(&dir).unwrap_or_default() {
                std::fs::remove_file(&path)
                    .map_err(|e| StoreError::io("remove", path.display(), e))?;
            }
            next_lsn = 1;
            saw_begin = false;
        }
        let mut wal = Wal::open(
            &dir,
            next_lsn,
            WalConfig {
                segment_bytes: self.shard_cfg.segment_bytes,
            },
        )?;
        if !saw_begin {
            wal.append_with_root(
                &WalRecord::RebalanceBegin {
                    epoch,
                    from: from as u32,
                    to: to as u32,
                },
                None,
            )?;
            wal.sync()?;
        }
        Ok(wal)
    }

    /// Drive the pinned migration to a settled layout: move every
    /// disagreeing subtree through the shared 2PC core, then commit the
    /// new count at epoch + 1 and clean up. Returns the number of moves
    /// this call committed.
    fn complete_rebalance(
        &mut self,
        from: usize,
        to: usize,
        epoch: u64,
        gate: &mut impl FnMut() -> bool,
    ) -> Result<u64> {
        let mut log = self.open_rebalance_log(from, to, epoch)?;
        let mut moves = 0u64;
        for (top, src, dest) in self.plan_moves() {
            if !gate() {
                return Err(StoreError::Rebalance {
                    epoch,
                    msg: format!("interrupted before moving subtree '{top}'"),
                });
            }
            let buffers = self.move_buffers(src, dest, &top);
            let started = Instant::now();
            match self.two_phase_commit(&buffers, &mut *gate, &REBALANCE_PROBES) {
                Ok(_txn_id) => {}
                Err(StoreError::Txn(TxnError::Aborted { reason, .. })) => {
                    return Err(StoreError::Rebalance {
                        epoch,
                        msg: format!("move of subtree '{top}' aborted: {reason}"),
                    });
                }
                Err(e) => return Err(e),
            }
            failpoint::check(REBALANCE_MOVED_CRASH)?;
            log.append_with_root(&WalRecord::RebalanceMoved { epoch, top }, None)?;
            log.sync()?;
            if let Some(m) = &self.metrics {
                m.rebalance_moves.inc();
                m.rebalance_move_us
                    .record(started.elapsed().as_micros() as u64);
            }
            moves += 1;
        }
        if !gate() {
            return Err(StoreError::Rebalance {
                epoch,
                msg: "interrupted before the layout commit".to_string(),
            });
        }
        failpoint::check(REBALANCE_COMMIT_CRASH)?;
        log.append_with_root(&WalRecord::RebalanceCommit { epoch }, None)?;
        log.sync()?;
        // The decision point for the layout itself: once the settled
        // meta is durable the migration is over — everything after is
        // idempotent cleanup the next open re-runs if we die here.
        write_meta(&self.dir, ShardLayoutMeta::settled(to, epoch + 1))?;
        failpoint::check(REBALANCE_CLEANUP_CRASH)?;
        drop(log);
        self.router = ShardRouter::at_epoch(to, epoch + 1);
        self.shards.truncate(to.max(1));
        self.sweep_rebalance_leftovers()?;
        self.refresh_indexes()?;
        if let Some(m) = &self.metrics {
            m.rebalance_runs.inc();
        }
        Ok(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedConfig;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-rebalance-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn note_class() -> ClassDef {
        ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap()
    }

    /// Populate `n` list subtrees plus one tree subtree and return the
    /// value rendering every layout must preserve.
    fn populate(ss: &mut ShardedStore, n: usize) -> Vec<String> {
        let class = ss.define_class(note_class()).unwrap();
        let mut names = Vec::new();
        for i in 0..n {
            let name = format!("p{i}/song");
            ss.create_list(&name).unwrap();
            for p in ["E", "F", "G"] {
                let (_, oid) = ss
                    .insert(&name, class, vec![Value::str(format!("{p}{i}"))])
                    .unwrap();
                ss.list_push(&name, oid).unwrap();
            }
            names.push(name);
        }
        let tname = "arbor/doc".to_string();
        let (_, leaf) = ss.insert(&tname, class, vec![Value::str("root")]).unwrap();
        ss.create_tree(&tname, aqua_algebra::Tree::leaf(leaf))
            .unwrap();
        names.push(tname);
        ss.sync().unwrap();
        names
    }

    /// Render every extent's attr-0 values from its owning shard — the
    /// value fingerprint rebalancing must keep byte-identical.
    fn render(ss: &ShardedStore, names: &[String]) -> Vec<String> {
        names
            .iter()
            .map(|name| {
                let sh = ss.shard(ss.shard_of(name));
                if let Some(l) = sh.list(name) {
                    let vals: Vec<String> = l
                        .elems()
                        .iter()
                        .map(|e| match e.oid() {
                            Some(o) => format!("{:?}", sh.store().deref(o).get(AttrId(0))),
                            None => "∅".to_string(),
                        })
                        .collect();
                    format!("{name}=[{}]", vals.join(","))
                } else if let Some(t) = sh.tree(name) {
                    let vals: Vec<String> = t
                        .iter_preorder()
                        .map(|node| match t.oid(node) {
                            Some(o) => format!("{:?}", sh.store().deref(o).get(AttrId(0))),
                            None => "∅".to_string(),
                        })
                        .collect();
                    format!("{name}=({})", vals.join(","))
                } else {
                    format!("{name}=MISSING")
                }
            })
            .collect()
    }

    #[test]
    fn grow_preserves_values_and_bumps_epoch() {
        let dir = temp_dir("grow");
        let cfg = ShardedConfig::with_shards(1);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let names = populate(&mut ss, 8);
        let before = render(&ss, &names);

        let rep = ss.rebalance(4).unwrap();
        assert_eq!((rep.from, rep.to, rep.epoch), (1, 4, 2));
        assert!(rep.moves > 0, "8 subtrees over 4 shards must move some");
        assert!(!rep.resumed);
        assert_eq!(ss.shard_count(), 4);
        assert_eq!(ss.layout_epoch(), 2);
        assert!(!ss.router().is_migrating());
        assert_eq!(render(&ss, &names), before, "values survive the grow");
        for name in &names {
            assert_eq!(
                ss.shard_of(name),
                ss.router().route_name(name),
                "{name} settled on its new-layout owner"
            );
        }
        assert!(
            !dir.join(REBALANCE_LOG_DIR).exists(),
            "migration log cleaned up"
        );

        // Reopen settles identically; the old cfg (1 shard) is stale now.
        drop(ss);
        let err = ShardedStore::open(&dir, cfg).unwrap_err();
        assert!(matches!(err, StoreError::ShardLayout { .. }), "got {err:?}");
        let (back, rep) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.layout_epoch, 2);
        assert_eq!(render(&back, &names), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrink_preserves_values_and_removes_drained_dirs() {
        let dir = temp_dir("shrink");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let names = populate(&mut ss, 8);
        let before = render(&ss, &names);
        let root_before = ss.global_root();

        let rep = ss.rebalance(2).unwrap();
        assert_eq!((rep.from, rep.to, rep.epoch), (4, 2, 2));
        assert_eq!(ss.shard_count(), 2);
        assert_eq!(render(&ss, &names), before, "values survive the shrink");
        assert_ne!(
            ss.global_root(),
            root_before,
            "layout is part of the fold (shard count changed)"
        );
        for k in 2..4 {
            assert!(
                !dir.join(shard_dir_name(k)).exists(),
                "drained shard {k} removed"
            );
        }
        drop(ss);
        let (back, rep) = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap();
        assert!(rep.clean());
        assert_eq!(render(&back, &names), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebalance_is_a_noop_at_the_current_count_and_refuses_zero() {
        let dir = temp_dir("noop");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap();
        let names = populate(&mut ss, 4);
        let before = render(&ss, &names);
        let rep = ss.rebalance(2).unwrap();
        assert_eq!((rep.moves, rep.epoch), (0, 1), "no-op keeps the epoch");
        assert_eq!(render(&ss, &names), before);
        let err = ss.rebalance(0).unwrap_err();
        assert!(matches!(err, StoreError::Rebalance { .. }), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_refusal_is_transient_and_resumable_in_process() {
        let dir = temp_dir("gate");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(1)).unwrap();
        let names = populate(&mut ss, 8);
        let before = render(&ss, &names);

        // Allow exactly one move, then refuse: the run stops cleanly
        // with the stanza pinned and the one move durable.
        let mut polls = 0u32;
        let err = ss
            .rebalance_gated(4, || {
                polls += 1;
                polls <= 2
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Rebalance { .. }), "got {err:?}");
        assert_eq!(err.class(), aqua_guard::ErrorClass::Transient);
        assert!(
            ss.router().is_migrating(),
            "stanza stays pinned after the refusal"
        );
        assert_eq!(
            render(&ss, &names),
            before,
            "dual-route window serves reads"
        );

        // A later ungated call resumes from where the gate stopped.
        let rep = ss.rebalance(4).unwrap();
        assert!(rep.resumed);
        assert_eq!(ss.layout_epoch(), 2);
        assert_eq!(render(&ss, &names), before);

        // A conflicting target while a stanza is pinned is refused.
        let err = ss.rebalance_gated(3, || false).unwrap_err();
        assert!(matches!(err, StoreError::Rebalance { .. }), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_between_a_moves_prepare_and_outcome_replays_clean() {
        let dir = temp_dir("rotate");
        let cfg = ShardedConfig {
            shards: 1,
            shard: crate::recovery::DurableConfig {
                segment_bytes: 512, // tiny: one prepare frame alone overflows
                ..Default::default()
            },
            ..ShardedConfig::default()
        };
        let (mut ss, _) = ShardedStore::open(&dir, cfg).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        // Top keys longer than a whole segment: the source's prepare
        // (wrapping `ListDrop{name}`) and the destination's (wrapping
        // `ListCreate{name}` + inserts) each trigger a rotation, so the
        // outcome frame of the same move lands in the *next* segment on
        // both participants.
        let mut names = Vec::new();
        for i in 0..12 {
            let name = format!("t{i}{}/song", "K".repeat(600));
            ss.create_list(&name).unwrap();
            let (_, oid) = ss.insert(&name, class, vec![Value::str("E")]).unwrap();
            ss.list_push(&name, oid).unwrap();
            names.push(name);
        }
        ss.sync().unwrap();
        let before = render(&ss, &names);
        let src_segs = list_segments(&dir.join(shard_dir_name(0))).unwrap().len();

        // Kill after the first move's decision is durable but before
        // either outcome applies: recovery must pair each prepare with
        // its roll-forward outcome *across* the rotation boundary.
        failpoint::arm_times(REBALANCE_OUTCOME_CRASH, "kill", 1);
        let err = ss.rebalance(2).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }), "got {err:?}");
        drop(ss); // simulated process death: no cleanup ran

        let src_now = list_segments(&dir.join(shard_dir_name(0))).unwrap().len();
        let dest_now = list_segments(&dir.join(shard_dir_name(1))).unwrap().len();
        assert!(
            src_now > src_segs,
            "source prepare must rotate ({src_segs} → {src_now} segments)"
        );
        assert!(
            dest_now >= 2,
            "destination prepare must rotate (got {dest_now} segment(s))"
        );

        let (back, rep) = ShardedStore::open(&dir, ShardedConfig::with_shards(0)).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.txns_committed, 1, "crashed move rolls forward: {rep}");
        assert_eq!(rep.layout_epoch, 2, "resume settles the layout");
        for sh in &rep.shards {
            assert!(sh.segments_scanned >= 2, "replay crossed a rotation: {sh}");
        }
        assert_eq!(render(&back, &names), before, "values survive the crash");
        assert_eq!(
            back.global_root(),
            rep.global_root,
            "fold matches the recovered shards"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ref_valued_attributes_are_remapped_with_their_objects() {
        let dir = temp_dir("refs");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(1)).unwrap();
        let class = ss
            .define_class(
                ClassDef::new(
                    "Linked",
                    vec![
                        AttrDef::stored("pitch", AttrType::Str),
                        AttrDef::stored("next", AttrType::Ref),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let name = "chain/song";
        ss.create_list(name).unwrap();
        let (_, tail) = ss
            .insert(name, class, vec![Value::str("Z"), Value::Null])
            .unwrap();
        let (_, head) = ss
            .insert(name, class, vec![Value::str("A"), Value::Ref(tail)])
            .unwrap();
        ss.list_push(name, head).unwrap();
        ss.sync().unwrap();

        ss.rebalance(4).unwrap();
        let sh = ss.shard(ss.shard_of(name));
        let head_now = sh.list(name).unwrap().elems()[0].oid().unwrap();
        let head_obj = sh.store().deref(head_now);
        assert_eq!(head_obj.get(AttrId(0)), &Value::str("A"));
        let Value::Ref(tail_now) = head_obj.get(AttrId(1)) else {
            panic!("ref survived as {:?}", head_obj.get(AttrId(1)));
        };
        assert_eq!(
            sh.store().deref(*tail_now).get(AttrId(0)),
            &Value::str("Z"),
            "the referenced object moved along and the ref follows it"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
