//! Sharded, path-addressed multi-extent store.
//!
//! A [`ShardedStore`] partitions the extent namespace across N
//! [`DurableStore`] shards behind a grovedb-style path hierarchy:
//! extent names are `/`-separated paths ([`ExtentPath`], the string
//! spelling of a `Vec<Vec<u8>>` path), and the [`ShardRouter`] maps a
//! path to its owning shard by hashing the path's *top-level segment* —
//! so an entire subtree (`"s3/doc"`, `"s3/song"`, `"s3/a/b"`) co-locates
//! on one shard and single-subtree queries never cross shards, while
//! distinct top-level names spread by hash.
//!
//! Each shard is a full PR 5/6 durable store: its own WAL segment
//! stream, its own snapshot manifests, its own self-verifying merkle
//! store root. That makes recovery embarrassingly parallel —
//! [`ShardedStore::open`] recovers every shard concurrently on the
//! [`aqua_exec`] pool — and makes the global integrity story a fold:
//! per-shard store roots combine into one [global root](fold_shard_roots)
//! (each leaf domain-tagged with its shard ordinal), so the
//! self-verification PR 6 proves per shard extends to the whole store.
//!
//! Routing is **stable**: the shard of a path is a pure function of
//! `(path, shard_count)`, and the shard count is pinned by a layout
//! manifest (`shards.meta`) written at creation — reopening with a
//! different count is refused with [`StoreError::ShardLayout`] instead
//! of silently re-routing extents away from their data.

use std::fmt;
use std::path::{Path, PathBuf};

use aqua_guard::Metrics;
use aqua_object::{ClassDef, ClassId, Oid, Value};

use aqua_algebra::{List, NodeId, Tree};

use crate::codec::IndexSpec;
use crate::error::{Result, StoreError};
use crate::merkle::{self, Root, Sha256};
use crate::recovery::{DurableConfig, DurableStore, RecoveryReport};

/// The layout manifest file pinning the shard count.
pub const SHARD_META: &str = "shards.meta";

/// A path-addressed extent name: the `/`-separated string spelling of a
/// `Vec<Vec<u8>>` path hierarchy. `"s3/doc"` is the extent `doc` under
/// the top-level subtree `s3`; `""` is the root path (depth 0).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtentPath {
    segments: Vec<Vec<u8>>,
}

impl ExtentPath {
    /// The empty (root) path.
    pub fn root() -> ExtentPath {
        ExtentPath {
            segments: Vec::new(),
        }
    }

    /// Parse a `/`-separated extent name. Empty segments are dropped, so
    /// `"a//b"`, `"/a/b"`, and `"a/b"` all name the same path; `""` is
    /// the root path.
    pub fn parse(name: &str) -> ExtentPath {
        ExtentPath {
            segments: name
                .split('/')
                .filter(|s| !s.is_empty())
                .map(|s| s.as_bytes().to_vec())
                .collect(),
        }
    }

    /// Build from raw segments (the `Vec<Vec<u8>>` spelling).
    pub fn from_segments(segments: Vec<Vec<u8>>) -> ExtentPath {
        ExtentPath { segments }
    }

    /// The path's segments, top-level first.
    pub fn segments(&self) -> &[Vec<u8>] {
        &self.segments
    }

    /// Nesting depth (0 for the root path).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Append one segment, returning the child path.
    pub fn child(&self, segment: &[u8]) -> ExtentPath {
        let mut segments = self.segments.clone();
        segments.push(segment.to_vec());
        ExtentPath { segments }
    }
}

impl fmt::Display for ExtentPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{}", String::from_utf8_lossy(s))?;
        }
        Ok(())
    }
}

/// Maps extent paths to shards. Pure function of `(path, shard_count)`:
/// the same path always routes to the same shard, across processes and
/// across recovery. Routing keys on the **top-level segment** only, so a
/// whole path subtree co-locates on one shard; the root path routes to
/// shard 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// How many shards this router spreads over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// FNV-1a over the top-level segment. 64-bit, fixed offsets: stable
    /// across platforms and process runs by construction.
    fn hash_top(segment: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in segment {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The shard owning `path`. The root path (depth 0) lives on shard 0.
    pub fn route(&self, path: &ExtentPath) -> usize {
        match path.segments().first() {
            None => 0,
            Some(top) => (Self::hash_top(top) % self.shards as u64) as usize,
        }
    }

    /// [`route`](Self::route) on the string spelling of a path.
    pub fn route_name(&self, name: &str) -> usize {
        self.route(&ExtentPath::parse(name))
    }
}

/// Tuning for a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard count used when *creating* the store. Reopening an existing
    /// directory must agree with its pinned layout (see
    /// [`StoreError::ShardLayout`]).
    pub shards: usize,
    /// Per-shard durable-store tuning (every shard gets a clone).
    pub shard: DurableConfig,
    /// Worker threads for parallel shard recovery (0 = one per shard,
    /// capped at the hardware parallelism).
    pub recovery_threads: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 1,
            shard: DurableConfig::default(),
            recovery_threads: 0,
        }
    }
}

impl ShardedConfig {
    /// Default per-shard tuning at `shards` shards.
    pub fn with_shards(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }

    /// Resolve the recovery degree for `shards` shards.
    fn recovery_degree(&self, shards: usize) -> usize {
        let cap = if self.recovery_threads == 0 {
            aqua_exec::available_threads()
        } else {
            self.recovery_threads
        };
        cap.clamp(1, shards.max(1))
    }
}

/// What [`ShardedStore::open`] found and did: one [`RecoveryReport`] per
/// shard, plus the global root folded from the per-shard roots the
/// recoveries self-verified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedRecoveryReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// Fold of the per-shard store roots (see [`fold_shard_roots`]).
    pub global_root: Root,
    /// Worker threads the parallel recovery actually used.
    pub recovery_threads: usize,
}

impl ShardedRecoveryReport {
    /// Whether every shard recovered without damage.
    pub fn clean(&self) -> bool {
        self.shards.iter().all(RecoveryReport::clean)
    }

    /// Total WAL frames replayed across shards.
    pub fn frames_replayed(&self) -> u64 {
        self.shards.iter().map(|r| r.frames_replayed).sum()
    }

    /// Total torn-tail bytes truncated across shards.
    pub fn bytes_truncated(&self) -> u64 {
        self.shards.iter().map(|r| r.bytes_truncated).sum()
    }

    /// Stamp every shard's report into `m`, plus the shard counters
    /// (`shard_recoveries` counts per-shard opens).
    pub fn stamp(&self, m: &Metrics) {
        for r in &self.shards {
            r.stamp(m);
        }
        m.shard_recoveries.add(self.shards.len() as u64);
    }

    /// Single-line JSON for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"shards\":{},\"recovery_threads\":{},\"global_root\":\"{}\",\"reports\":[",
            self.shards.len(),
            self.recovery_threads,
            self.global_root.to_hex()
        );
        for (i, r) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Fold per-shard store roots into the global root. Each leaf is
/// domain-tagged with its shard ordinal, so shard order (and count) is
/// bound into the fold — swapping two shards' contents changes the
/// global root even if the multiset of roots is unchanged.
pub fn fold_shard_roots(roots: &[Root]) -> Root {
    let leaves: Vec<Root> = roots
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut h = Sha256::new();
            h.update(b"aqua-shard-v1");
            h.update(&(i as u32).to_le_bytes());
            h.update(&r.0);
            Root(h.finish())
        })
        .collect();
    merkle::merkle_root(&leaves)
}

/// Directory name of shard `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

fn read_meta(dir: &Path) -> Result<Option<usize>> {
    let path = dir.join(SHARD_META);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("read", path.display(), e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some("aqua-shards v1") {
        return Err(StoreError::ShardLayout {
            dir: dir.display().to_string(),
            msg: "unrecognized shards.meta header".to_string(),
        });
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| StoreError::ShardLayout {
            dir: dir.display().to_string(),
            msg: "shards.meta carries no valid shard count".to_string(),
        })?;
    Ok(Some(shards))
}

fn write_meta(dir: &Path, shards: usize) -> Result<()> {
    let path = dir.join(SHARD_META);
    let tmp = dir.join(format!("{SHARD_META}.tmp"));
    std::fs::write(&tmp, format!("aqua-shards v1\nshards {shards}\n"))
        .map_err(|e| StoreError::io("write", tmp.display(), e))?;
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io("rename", path.display(), e))?;
    Ok(())
}

/// N [`DurableStore`] shards behind a [`ShardRouter`]. Every mutation
/// routes to the owning shard's validate → log → apply path; recovery
/// opens all shards in parallel; integrity folds per-shard roots into a
/// [global root](Self::global_root).
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    router: ShardRouter,
    shards: Vec<DurableStore>,
}

impl ShardedStore {
    /// Open (and recover) the sharded store in `dir`, creating it with
    /// `cfg.shards` shards if absent. Existing directories pin their
    /// shard count in `shards.meta`; a disagreeing `cfg.shards` (other
    /// than the "use what's there" default of matching) is refused with
    /// [`StoreError::ShardLayout`]. Shards recover **in parallel** on
    /// the [`aqua_exec`] pool, each through the full self-verifying
    /// [`DurableStore::open`] path.
    pub fn open(dir: &Path, cfg: ShardedConfig) -> Result<(ShardedStore, ShardedRecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
        let shards = match read_meta(dir)? {
            Some(pinned) => {
                if cfg.shards != 0 && cfg.shards != pinned {
                    return Err(StoreError::ShardLayout {
                        dir: dir.display().to_string(),
                        msg: format!(
                            "store was created with {pinned} shards, reopen asked for {} \
                             (routing must stay stable: same path → same shard)",
                            cfg.shards
                        ),
                    });
                }
                pinned
            }
            None => {
                let n = cfg.shards.max(1);
                write_meta(dir, n)?;
                n
            }
        };

        let dirs: Vec<PathBuf> = (0..shards).map(|i| dir.join(shard_dir_name(i))).collect();
        let degree = cfg.recovery_degree(shards);
        let shard_cfg = &cfg.shard;
        let opened: Vec<(DurableStore, RecoveryReport)> =
            aqua_exec::try_par_map(&dirs, degree, |_, d| {
                DurableStore::open(d, shard_cfg.clone())
            })?;

        let mut stores = Vec::with_capacity(shards);
        let mut report = ShardedRecoveryReport {
            recovery_threads: degree,
            ..ShardedRecoveryReport::default()
        };
        for (ds, rep) in opened {
            report.shards.push(rep);
            stores.push(ds);
        }
        report.global_root = fold_shard_roots(
            &stores
                .iter()
                .map(DurableStore::store_root)
                .collect::<Vec<_>>(),
        );
        Ok((
            ShardedStore {
                dir: dir.to_path_buf(),
                router: ShardRouter::new(shards),
                shards: stores,
            },
            report,
        ))
    }

    /// Where the store lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The router (stable for the life of the directory).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning the named extent.
    pub fn shard_of(&self, name: &str) -> usize {
        self.router.route_name(name)
    }

    /// Shard `i`, read-only.
    pub fn shard(&self, i: usize) -> &DurableStore {
        &self.shards[i]
    }

    /// Shard `i`, mutable (for shard-local maintenance like
    /// [`DurableStore::refresh_indexes`]).
    pub fn shard_mut(&mut self, i: usize) -> &mut DurableStore {
        &mut self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[DurableStore] {
        &self.shards
    }

    /// Arm every shard with `m` so WAL/checkpoint traffic is counted.
    pub fn set_metrics(&mut self, m: Metrics) {
        for s in &mut self.shards {
            s.set_metrics(m.clone());
        }
    }

    /// Per-shard mutation epochs, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(DurableStore::epoch).collect()
    }

    /// The global root: fold of every shard's store root. With
    /// authentication on this is the one hash that commits the entire
    /// sharded state.
    pub fn global_root(&self) -> Root {
        fold_shard_roots(
            &self
                .shards
                .iter()
                .map(DurableStore::store_root)
                .collect::<Vec<_>>(),
        )
    }

    /// Define a class on **every** shard (schema is global; each shard's
    /// deterministic [`ClassId`] assignment sees the same definition
    /// sequence, so the ids agree across shards).
    pub fn define_class(&mut self, def: ClassDef) -> Result<ClassId> {
        let mut id = None;
        for s in &mut self.shards {
            let got = s.define_class(def.clone())?;
            match id {
                None => id = Some(got),
                Some(prev) => debug_assert_eq!(prev, got, "class ids agree across shards"),
            }
        }
        id.ok_or_else(|| StoreError::ShardLayout {
            dir: self.dir.display().to_string(),
            msg: "store has zero shards".to_string(),
        })
    }

    /// Insert an object into the shard owning `owner` (the extent path
    /// that will reference it). Returns `(shard, oid)` — OIDs are
    /// shard-local.
    pub fn insert(&mut self, owner: &str, class: ClassId, row: Vec<Value>) -> Result<(usize, Oid)> {
        let sh = self.shard_of(owner);
        let oid = self.shards[sh].insert(class, row)?;
        Ok((sh, oid))
    }

    /// Durably create (or wholly replace) a tree extent at `name`.
    pub fn create_tree(&mut self, name: &str, tree: Tree) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].create_tree(name, tree)
    }

    /// Durably insert `child` under `parent` in the named tree.
    pub fn tree_insert_child(
        &mut self,
        name: &str,
        parent: NodeId,
        index: usize,
        child: Tree,
    ) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].tree_insert_child(name, parent, index, child)
    }

    /// Durably remove the subtree rooted at `at` from the named tree.
    pub fn tree_remove_subtree(&mut self, name: &str, at: NodeId) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].tree_remove_subtree(name, at)
    }

    /// Durably point-update one tree node's payload OID.
    pub fn tree_set_oid(&mut self, name: &str, at: NodeId, oid: Oid) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].tree_set_oid(name, at, oid)
    }

    /// Durably create (or reset) a list extent at `name`.
    pub fn create_list(&mut self, name: &str) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].create_list(name)
    }

    /// Durably append to the named list.
    pub fn list_push(&mut self, name: &str, oid: Oid) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].list_push(name, oid)
    }

    /// Durably append a labeled NULL to the named list.
    pub fn list_push_hole(&mut self, name: &str, label: &str) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].list_push_hole(name, label)
    }

    /// Durably remove the element at `index` from the named list.
    pub fn list_remove(&mut self, name: &str, index: usize) -> Result<()> {
        let sh = self.shard_of(name);
        self.shards[sh].list_remove(name, index)
    }

    /// Register an index spec on the shard owning its extent
    /// (class-wide [`IndexSpec::Attr`] specs broadcast to every shard —
    /// each shard's extent is shard-local).
    pub fn register_index(&mut self, spec: IndexSpec) -> Result<()> {
        match &spec {
            IndexSpec::Attr { .. } => {
                for s in &mut self.shards {
                    s.register_index(spec.clone())?;
                }
                Ok(())
            }
            IndexSpec::TreeNode { tree: name, .. } | IndexSpec::Structural { tree: name } => {
                let sh = self.shard_of(&name.clone());
                self.shards[sh].register_index(spec)
            }
            IndexSpec::ListPos { list: name, .. } => {
                let sh = self.shard_of(&name.clone());
                self.shards[sh].register_index(spec)
            }
        }
    }

    /// The named tree extent (from its owning shard).
    pub fn tree(&self, name: &str) -> Option<&Tree> {
        self.shards[self.shard_of(name)].tree(name)
    }

    /// The named list extent (from its owning shard).
    pub fn list(&self, name: &str) -> Option<&List> {
        self.shards[self.shard_of(name)].list(name)
    }

    /// Force every shard's WAL to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.sync()?;
        }
        Ok(())
    }

    /// Checkpoint every shard. Returns the snapshot paths, shard order.
    pub fn checkpoint(&mut self) -> Result<Vec<PathBuf>> {
        self.shards
            .iter_mut()
            .map(DurableStore::checkpoint)
            .collect()
    }

    /// Rebuild every shard's registered indexes at its current epoch.
    pub fn refresh_indexes(&mut self) -> Result<u32> {
        let mut n = 0;
        for s in &mut self.shards {
            n += s.refresh_indexes()?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-shard-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn note_class() -> ClassDef {
        ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap()
    }

    #[test]
    fn empty_path_routes_to_shard_zero() {
        for n in [1, 2, 4, 7] {
            let r = ShardRouter::new(n);
            assert_eq!(r.route(&ExtentPath::root()), 0);
            assert_eq!(r.route_name(""), 0);
            assert_eq!(r.route_name("/"), 0, "slashes alone are the root path");
        }
    }

    #[test]
    fn deep_nesting_routes_with_its_top_segment() {
        let r = ShardRouter::new(4);
        let top = r.route_name("s7");
        let mut path = ExtentPath::parse("s7");
        // 64 levels deep: still co-located with the top-level subtree.
        for d in 0..64 {
            path = path.child(format!("lvl{d}").as_bytes());
            assert_eq!(r.route(&path), top, "depth {} re-routed", path.depth());
        }
        assert_eq!(path.depth(), 65);
        // Normalization: doubled and leading slashes don't change the route.
        assert_eq!(r.route_name("s7//doc"), top);
        assert_eq!(r.route_name("/s7/doc"), top);
    }

    #[test]
    fn routing_is_a_pure_function_and_spreads() {
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for i in 0..64 {
            let name = format!("s{i}/doc");
            let a = r.route_name(&name);
            assert_eq!(a, r.route_name(&name), "same path, same shard");
            assert_eq!(
                a,
                ShardRouter::new(4).route_name(&name),
                "router-independent"
            );
            hit[a] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "64 top-level names reach all 4 shards"
        );
    }

    /// Top-level names that all hash to one shard of 4 (found by search;
    /// deterministic because the hash is).
    fn colliding_names(router: &ShardRouter, want: usize) -> Vec<String> {
        let target = router.route_name("collide0");
        let mut out = vec!["collide0".to_string()];
        let mut i = 1u64;
        while out.len() < want {
            let name = format!("collide{i}");
            if router.route_name(&name) == target {
                out.push(name);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn all_extents_on_one_shard_still_works() {
        let dir = temp_dir("onehot");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, rep) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        assert!(rep.clean());
        let names = colliding_names(ss.router(), 6);
        let hot = ss.shard_of(&names[0]);
        let class = ss.define_class(note_class()).unwrap();
        for n in &names {
            let list = format!("{n}/song");
            assert_eq!(ss.shard_of(&list), hot, "co-located with its top segment");
            ss.create_list(&list).unwrap();
            let (sh, oid) = ss.insert(&list, class, vec![Value::str("E")]).unwrap();
            assert_eq!(sh, hot);
            ss.list_push(&list, oid).unwrap();
        }
        // Three shards stayed pristine, one took everything.
        let busy: Vec<usize> = (0..4).filter(|&i| ss.shard(i).epoch() > 0).collect();
        let lists: usize = ss.shards().iter().map(|s| s.lists().len()).sum();
        assert_eq!(lists, names.len());
        // define_class broadcasts, so count only extent-carrying shards.
        assert_eq!(
            busy.iter()
                .filter(|&&i| !ss.shard(i).lists().is_empty())
                .count(),
            1
        );
        ss.sync().unwrap();
        drop(ss);
        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean());
        for n in &names {
            assert_eq!(back.list(&format!("{n}/song")).unwrap().len(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_is_stable_across_recovery() {
        let dir = temp_dir("stable");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let mut routed = Vec::new();
        for i in 0..16 {
            let name = format!("p{i}/song");
            ss.create_list(&name).unwrap();
            let (sh, oid) = ss.insert(&name, class, vec![Value::str("A")]).unwrap();
            ss.list_push(&name, oid).unwrap();
            routed.push((name, sh));
        }
        ss.sync().unwrap();
        let root_before = ss.global_root();
        drop(ss);

        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.global_root, root_before, "report certifies the fold");
        assert_eq!(back.global_root(), root_before);
        for (name, sh) in &routed {
            assert_eq!(back.shard_of(name), *sh, "{name} re-routed after recovery");
            assert!(
                back.shard(*sh).list(name).is_some(),
                "{name} lives where the router says"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_change_is_refused() {
        let dir = temp_dir("pin");
        let (_ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let err = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap_err();
        assert!(matches!(err, StoreError::ShardLayout { .. }), "got {err:?}");
        // shards: 0 means "use what's pinned".
        let (ss, _) = ShardedStore::open(
            &dir,
            ShardedConfig {
                shards: 0,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ss.shard_count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_recovery_matches_serial_recovery() {
        let dir = temp_dir("par");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        for i in 0..12 {
            let name = format!("t{i}/song");
            ss.create_list(&name).unwrap();
            for p in ["E", "F", "G"] {
                let (_, oid) = ss.insert(&name, class, vec![Value::str(p)]).unwrap();
                ss.list_push(&name, oid).unwrap();
            }
        }
        ss.sync().unwrap();
        drop(ss);

        let serial = ShardedConfig {
            recovery_threads: 1,
            ..cfg.clone()
        };
        let parallel = ShardedConfig {
            recovery_threads: 4,
            ..cfg
        };
        let (s1, r1) = ShardedStore::open(&dir, serial).unwrap();
        let root1 = s1.global_root();
        drop(s1);
        let (s4, r4) = ShardedStore::open(&dir, parallel).unwrap();
        // Each open starts a fresh (empty) WAL segment, so
        // segments_scanned drifts by one between opens; everything the
        // replay *produced* must agree exactly.
        for (a, b) in r1.shards.iter().zip(&r4.shards) {
            assert_eq!(a.frames_replayed, b.frames_replayed);
            assert_eq!(a.next_lsn, b.next_lsn);
            assert_eq!(a.extent_roots, b.extent_roots);
        }
        assert_eq!(r1.global_root, r4.global_root);
        assert_eq!(s4.global_root(), root1);
        assert_eq!(r4.recovery_threads, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_root_binds_shard_order() {
        let a = Root([1; 32]);
        let b = Root([2; 32]);
        assert_ne!(fold_shard_roots(&[a, b]), fold_shard_roots(&[b, a]));
        assert_ne!(fold_shard_roots(&[a]), fold_shard_roots(&[a, a]));
    }
}
