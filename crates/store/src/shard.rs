//! Sharded, path-addressed multi-extent store.
//!
//! A [`ShardedStore`] partitions the extent namespace across N
//! [`DurableStore`] shards behind a grovedb-style path hierarchy:
//! extent names are `/`-separated paths ([`ExtentPath`], the string
//! spelling of a `Vec<Vec<u8>>` path), and the [`ShardRouter`] maps a
//! path to its owning shard by hashing the path's *top-level segment* —
//! so an entire subtree (`"s3/doc"`, `"s3/song"`, `"s3/a/b"`) co-locates
//! on one shard and single-subtree queries never cross shards, while
//! distinct top-level names spread by hash.
//!
//! Each shard is a full PR 5/6 durable store: its own WAL segment
//! stream, its own snapshot manifests, its own self-verifying merkle
//! store root. That makes recovery embarrassingly parallel —
//! [`ShardedStore::open`] recovers every shard concurrently on the
//! [`aqua_exec`] pool — and makes the global integrity story a fold:
//! per-shard store roots combine into one [global root](fold_shard_roots)
//! (each leaf domain-tagged with its shard ordinal), so the
//! self-verification PR 6 proves per shard extends to the whole store.
//!
//! Routing is **stable**: the shard of a path is a pure function of
//! `(path, shard_count)`, and the shard count is pinned by a layout
//! manifest (`shards.meta`) written at creation — reopening with a
//! different count is refused with [`StoreError::ShardLayout`] instead
//! of silently re-routing extents away from their data.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use aqua_guard::{failpoint, Metrics};
use aqua_object::{ClassDef, ClassId, Oid, Value};

use aqua_algebra::{List, NodeId, Tree};

use crate::codec::{IndexSpec, WalRecord};
use crate::error::{Result, StoreError, TxnError};
use crate::merkle::{self, Root, Sha256};
use crate::recovery::{DurableConfig, DurableStore, RecoveryReport};
use crate::txn::{
    participant_probe, ShardTxn, TxnReceipt, TXN_DECIDE_CRASH, TXN_OUTCOME_CRASH, TXN_PREPARE_CRASH,
};
use crate::wal::{list_segments, scan_segment, Wal, WalConfig};

/// The layout manifest file pinning the shard count.
pub const SHARD_META: &str = "shards.meta";

/// Directory of the coordinator transaction log (decision frames only),
/// in the same rotating-segment format as the shard WALs.
pub const TXN_LOG_DIR: &str = "txn.log";

/// Directory of the rebalance migration log (`RebalanceBegin` /
/// `RebalanceMoved` / `RebalanceCommit` frames, same rotating-segment
/// format). Advisory: the durable migration *stanza* in `shards.meta`
/// plus per-shard state inspection are the correctness ground truth;
/// this log exists for observability and to let a resume skip
/// re-deriving what already moved.
pub const REBALANCE_LOG_DIR: &str = "rebalance.log";

/// Failpoint checked at the top of every routed mutation — arm it to
/// inject shard-level faults without involving the transaction layer.
pub const SHARD_ROUTE_PROBE: &str = "store.shard.route";

/// Failpoint checked before the global-root fold in
/// [`ShardedStore::open`] — arm it to simulate a store whose per-shard
/// recoveries succeed but whose integrity fold cannot be served.
pub const SHARD_FOLD_PROBE: &str = "store.shard.fold";

/// A path-addressed extent name: the `/`-separated string spelling of a
/// `Vec<Vec<u8>>` path hierarchy. `"s3/doc"` is the extent `doc` under
/// the top-level subtree `s3`; `""` is the root path (depth 0).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtentPath {
    segments: Vec<Vec<u8>>,
}

impl ExtentPath {
    /// The empty (root) path.
    pub fn root() -> ExtentPath {
        ExtentPath {
            segments: Vec::new(),
        }
    }

    /// Parse a `/`-separated extent name. Empty segments are dropped, so
    /// `"a//b"`, `"/a/b"`, and `"a/b"` all name the same path; `""` is
    /// the root path.
    pub fn parse(name: &str) -> ExtentPath {
        ExtentPath {
            segments: name
                .split('/')
                .filter(|s| !s.is_empty())
                .map(|s| s.as_bytes().to_vec())
                .collect(),
        }
    }

    /// Build from raw segments (the `Vec<Vec<u8>>` spelling).
    pub fn from_segments(segments: Vec<Vec<u8>>) -> ExtentPath {
        ExtentPath { segments }
    }

    /// The path's segments, top-level first.
    pub fn segments(&self) -> &[Vec<u8>] {
        &self.segments
    }

    /// Nesting depth (0 for the root path).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Append one segment, returning the child path.
    pub fn child(&self, segment: &[u8]) -> ExtentPath {
        let mut segments = self.segments.clone();
        segments.push(segment.to_vec());
        ExtentPath { segments }
    }
}

impl fmt::Display for ExtentPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{}", String::from_utf8_lossy(s))?;
        }
        Ok(())
    }
}

/// Maps extent paths to shards. Pure function of `(path, shard_count)`:
/// the same path always routes to the same shard, across processes and
/// across recovery. Routing keys on the **top-level segment** only, so a
/// whole path subtree co-locates on one shard; the root path routes to
/// shard 0.
///
/// The router is **epoch-aware**: every completed layout change bumps
/// the monotonically increasing layout epoch pinned in `shards.meta`,
/// and during a migration the router carries a *dual-route window* —
/// [`route`](Self::route) answers with the new layout's owner while
/// [`route_old`](Self::route_old) still knows the previous one, so
/// lookups can try the new home first and fall back to wherever a
/// not-yet-moved subtree still lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    /// Layout epoch this router was built from (0 for ad-hoc routers).
    epoch: u64,
    /// During a migration window: the shard count being migrated
    /// *away from* — the fallback layout for dual-route lookups.
    from: Option<usize>,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to ≥ 1), outside any
    /// migration window, at the unpinned epoch 0.
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
            epoch: 0,
            from: None,
        }
    }

    /// A settled (non-migrating) router at a pinned layout epoch.
    pub fn at_epoch(shards: usize, epoch: u64) -> ShardRouter {
        ShardRouter {
            epoch,
            ..ShardRouter::new(shards)
        }
    }

    /// A dual-route window: `route` targets the `to` layout, `route_old`
    /// still answers for the `from` layout being migrated away from.
    pub fn migrating(from: usize, to: usize, epoch: u64) -> ShardRouter {
        ShardRouter {
            shards: to.max(1),
            epoch,
            from: Some(from.max(1)),
        }
    }

    /// How many shards this router spreads over (the *target* layout
    /// during a migration window).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The layout epoch this router answers for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a migration window is open (dual-route active).
    pub fn is_migrating(&self) -> bool {
        self.from.is_some()
    }

    /// FNV-1a over the top-level segment. 64-bit, fixed offsets: stable
    /// across platforms and process runs by construction.
    fn hash_top(segment: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in segment {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The shard owning `path`. The root path (depth 0) lives on shard 0.
    pub fn route(&self, path: &ExtentPath) -> usize {
        match path.segments().first() {
            None => 0,
            Some(top) => (Self::hash_top(top) % self.shards as u64) as usize,
        }
    }

    /// [`route`](Self::route) on the string spelling of a path.
    pub fn route_name(&self, name: &str) -> usize {
        self.route(&ExtentPath::parse(name))
    }

    /// The shard that owned `path` under the layout being migrated away
    /// from — `None` outside a migration window, or when both layouts
    /// agree on the owner (nothing to fall back to).
    pub fn route_old(&self, path: &ExtentPath) -> Option<usize> {
        let from = self.from?;
        let old = match path.segments().first() {
            None => 0,
            Some(top) => (Self::hash_top(top) % from as u64) as usize,
        };
        (old != self.route(path)).then_some(old)
    }

    /// [`route_old`](Self::route_old) on the string spelling of a path.
    pub fn route_old_name(&self, name: &str) -> Option<usize> {
        self.route_old(&ExtentPath::parse(name))
    }
}

/// Tuning for a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard count used when *creating* the store. Reopening an existing
    /// directory must agree with its pinned layout (see
    /// [`StoreError::ShardLayout`]).
    pub shards: usize,
    /// Per-shard durable-store tuning (every shard gets a clone).
    pub shard: DurableConfig,
    /// Worker threads for parallel shard recovery (0 = one per shard,
    /// capped at the hardware parallelism).
    pub recovery_threads: usize,
    /// Layout epoch the opener expects (`None` = accept whatever is
    /// pinned). A stale opener — one still pinned to the epoch a
    /// completed rebalance superseded — is refused with a typed
    /// [`StoreError::ShardLayout`] *by epoch*, not by raw shard count:
    /// two layouts can even share a count and still be different
    /// routings' generations.
    pub pin_epoch: Option<u64>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 1,
            shard: DurableConfig::default(),
            recovery_threads: 0,
            pin_epoch: None,
        }
    }
}

impl ShardedConfig {
    /// Default per-shard tuning at `shards` shards.
    pub fn with_shards(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }

    /// Resolve the recovery degree for `shards` shards.
    fn recovery_degree(&self, shards: usize) -> usize {
        let cap = if self.recovery_threads == 0 {
            aqua_exec::available_threads()
        } else {
            self.recovery_threads
        };
        cap.clamp(1, shards.max(1))
    }
}

/// What [`ShardedStore::open`] found and did: one [`RecoveryReport`] per
/// shard, plus the global root folded from the per-shard roots the
/// recoveries self-verified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedRecoveryReport {
    /// Per-shard reports, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// Fold of the per-shard store roots (see [`fold_shard_roots`]).
    pub global_root: Root,
    /// Worker threads the parallel recovery actually used.
    pub recovery_threads: usize,
    /// Prepared transactions the resolution pass rolled forward.
    pub txns_committed: u64,
    /// Prepared transactions the resolution pass rolled back (includes
    /// the presumed ones).
    pub txns_aborted: u64,
    /// Rolled-back transactions with *no* decision anywhere — aborted by
    /// presumption (the prepare was durable but the coordinator never
    /// decided, so the client was never acknowledged).
    pub txns_resolved_by_presumption: u64,
    /// Torn-tail bytes truncated from the coordinator log.
    pub coordinator_bytes_truncated: u64,
    /// Subtree moves the open completed while resuming an interrupted
    /// rebalance (0 when no migration stanza was pinned).
    pub rebalance_resumed_moves: u64,
    /// The layout epoch the store serves at (after any resume).
    pub layout_epoch: u64,
}

impl ShardedRecoveryReport {
    /// Whether every shard — and the coordinator log — recovered
    /// without damage.
    pub fn clean(&self) -> bool {
        self.shards.iter().all(RecoveryReport::clean) && self.coordinator_bytes_truncated == 0
    }

    /// Total WAL frames replayed across shards.
    pub fn frames_replayed(&self) -> u64 {
        self.shards.iter().map(|r| r.frames_replayed).sum()
    }

    /// Total torn-tail bytes truncated across shards.
    pub fn bytes_truncated(&self) -> u64 {
        self.shards.iter().map(|r| r.bytes_truncated).sum()
    }

    /// Stamp every shard's report into `m`, plus the shard counters
    /// (`shard_recoveries` counts per-shard opens) and what the
    /// transaction-resolution pass decided.
    pub fn stamp(&self, m: &Metrics) {
        for r in &self.shards {
            r.stamp(m);
        }
        m.shard_recoveries.add(self.shards.len() as u64);
        m.txn_committed.add(self.txns_committed);
        m.txn_aborted.add(self.txns_aborted);
        m.txn_presumed_abort.add(self.txns_resolved_by_presumption);
        m.rebalance_resumed.add(self.rebalance_resumed_moves);
    }

    /// Single-line JSON for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"shards\":{},\"recovery_threads\":{},\"global_root\":\"{}\",\
             \"txns_committed\":{},\"txns_aborted\":{},\"txns_resolved_by_presumption\":{},\
             \"coordinator_bytes_truncated\":{},\"rebalance_resumed_moves\":{},\
             \"layout_epoch\":{},\"reports\":[",
            self.shards.len(),
            self.recovery_threads,
            self.global_root.to_hex(),
            self.txns_committed,
            self.txns_aborted,
            self.txns_resolved_by_presumption,
            self.coordinator_bytes_truncated,
            self.rebalance_resumed_moves,
            self.layout_epoch,
        );
        for (i, r) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for ShardedRecoveryReport {
    /// Compact human rendering: a totals line, the transaction
    /// resolution verdicts when any, then one indented line per shard
    /// (each the shard's own [`RecoveryReport`] rendering).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards on {} threads: {} frames replayed, {}, global root {}",
            self.shards.len(),
            self.recovery_threads,
            self.frames_replayed(),
            if self.clean() {
                "clean".to_string()
            } else {
                format!(
                    "{} bytes truncated ({} coordinator)",
                    self.bytes_truncated() + self.coordinator_bytes_truncated,
                    self.coordinator_bytes_truncated
                )
            },
            &self.global_root.to_hex()[..12],
        )?;
        if self.txns_committed + self.txns_aborted > 0 {
            write!(
                f,
                "; txns: {} rolled forward, {} rolled back ({} by presumption)",
                self.txns_committed, self.txns_aborted, self.txns_resolved_by_presumption
            )?;
        }
        if self.rebalance_resumed_moves > 0 {
            write!(
                f,
                "; rebalance resumed: {} subtree moves completed (now epoch {})",
                self.rebalance_resumed_moves, self.layout_epoch
            )?;
        }
        for (i, r) in self.shards.iter().enumerate() {
            write!(f, "\n  shard {i:03}: {r}")?;
        }
        Ok(())
    }
}

/// Fold per-shard store roots into the global root. Each leaf is
/// domain-tagged with its shard ordinal, so shard order (and count) is
/// bound into the fold — swapping two shards' contents changes the
/// global root even if the multiset of roots is unchanged.
pub fn fold_shard_roots(roots: &[Root]) -> Root {
    let leaves: Vec<Root> = roots
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut h = Sha256::new();
            h.update(b"aqua-shard-v1");
            h.update(&(i as u32).to_le_bytes());
            h.update(&r.0);
            Root(h.finish())
        })
        .collect();
    merkle::merkle_root(&leaves)
}

/// Directory name of shard `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// The parsed layout manifest (`shards.meta`): the pinned shard count,
/// the monotonically increasing layout epoch, and — while a rebalance
/// is in flight — the durable migration stanza naming the target count.
/// The stanza is written (and fsync'd) *before* the first subtree
/// moves, so any open that sees it knows to resume the migration before
/// the global-root fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayoutMeta {
    /// The settled shard count (the *source* count mid-migration).
    pub shards: usize,
    /// Layout epoch; bumped by every completed rebalance.
    pub epoch: u64,
    /// Migration stanza: the shard count being migrated to, if a
    /// rebalance began but has not committed its final layout.
    pub migrating_to: Option<usize>,
}

impl ShardLayoutMeta {
    /// A settled layout (no migration in flight).
    pub fn settled(shards: usize, epoch: u64) -> ShardLayoutMeta {
        ShardLayoutMeta {
            shards: shards.max(1),
            epoch,
            migrating_to: None,
        }
    }

    /// The epoch the layout will have once any in-flight migration
    /// resolves — what a [`ShardedConfig::pin_epoch`] check compares
    /// against, since `open` resumes the migration before serving.
    pub fn resolved_epoch(&self) -> u64 {
        self.epoch + u64::from(self.migrating_to.is_some())
    }
}

fn meta_corrupt(dir: &Path, msg: impl Into<String>) -> StoreError {
    StoreError::ShardLayout {
        dir: dir.display().to_string(),
        msg: msg.into(),
    }
}

/// Read and verify `shards.meta`. The file is framed exactly like a WAL
/// record — `[payload len u32 LE][crc32 u32 LE][payload]` — so a torn
/// write, a truncation, or a bit flip is caught by length or checksum
/// and refused with a typed [`StoreError::ShardLayout`] instead of
/// being trusted as written.
pub(crate) fn read_meta(dir: &Path) -> Result<Option<ShardLayoutMeta>> {
    let path = dir.join(SHARD_META);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("read", path.display(), e)),
    };
    if bytes.len() < 8 {
        return Err(meta_corrupt(
            dir,
            format!(
                "{SHARD_META} torn: {} bytes is shorter than a frame",
                bytes.len()
            ),
        ));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("width")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("width"));
    if bytes.len() != 8 + len {
        return Err(meta_corrupt(
            dir,
            format!(
                "{SHARD_META} torn: frame claims {len} payload bytes, file carries {}",
                bytes.len().saturating_sub(8)
            ),
        ));
    }
    let payload = &bytes[8..];
    if crate::codec::crc32(payload) != crc {
        return Err(meta_corrupt(
            dir,
            format!("{SHARD_META} failed its checksum (bit flip or torn rewrite)"),
        ));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| meta_corrupt(dir, format!("{SHARD_META} payload is not UTF-8")))?;
    let mut lines = text.lines();
    if lines.next() != Some("aqua-shards v2") {
        return Err(meta_corrupt(dir, "unrecognized shards.meta header"));
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| meta_corrupt(dir, "shards.meta carries no valid shard count"))?;
    let epoch = lines
        .next()
        .and_then(|l| l.strip_prefix("epoch "))
        .and_then(|n| n.parse::<u64>().ok())
        .filter(|&e| e >= 1)
        .ok_or_else(|| meta_corrupt(dir, "shards.meta carries no valid layout epoch"))?;
    let migrating_to = match lines.next() {
        None => None,
        Some(l) => Some(
            l.strip_prefix("migrating_to ")
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| meta_corrupt(dir, "shards.meta carries an invalid stanza line"))?,
        ),
    };
    if lines.next().is_some() {
        return Err(meta_corrupt(dir, "shards.meta carries trailing lines"));
    }
    Ok(Some(ShardLayoutMeta {
        shards,
        epoch,
        migrating_to,
    }))
}

/// Durably write `shards.meta`: CRC-framed payload, tmp + fsync +
/// atomic rename (+ directory fsync), so a crash leaves either the old
/// manifest or the new one — never a torn mix.
pub(crate) fn write_meta(dir: &Path, meta: ShardLayoutMeta) -> Result<()> {
    let mut payload = format!(
        "aqua-shards v2\nshards {}\nepoch {}\n",
        meta.shards, meta.epoch
    );
    if let Some(to) = meta.migrating_to {
        use std::fmt::Write as _;
        let _ = writeln!(payload, "migrating_to {to}");
    }
    let mut bytes = Vec::with_capacity(8 + payload.len());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crate::codec::crc32(payload.as_bytes()).to_le_bytes());
    bytes.extend_from_slice(payload.as_bytes());

    let path = dir.join(SHARD_META);
    let tmp = dir.join(format!("{SHARD_META}.tmp"));
    {
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| StoreError::io("create", tmp.display(), e))?;
        use std::io::Write as _;
        f.write_all(&bytes)
            .map_err(|e| StoreError::io("write", tmp.display(), e))?;
        f.sync_all()
            .map_err(|e| StoreError::io("fsync", tmp.display(), e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io("rename", path.display(), e))?;
    // Make the rename itself durable (best effort on platforms where
    // directories cannot be opened for sync).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// What a scan of the coordinator log yields: every decision, the next
/// coordinator LSN, and how many torn-tail bytes were discarded.
struct TxnLogScan {
    /// `txn_id → committed` for every decision frame.
    decisions: BTreeMap<u64, bool>,
    /// LSN the next decision frame will take.
    next_lsn: u64,
    /// Torn-tail bytes truncated (and orphan segments dropped).
    bytes_truncated: u64,
}

/// Scan (and repair) the coordinator log: decision frames only, strict
/// LSN continuity, torn tails truncated exactly like a shard WAL. A
/// checksum-valid frame that is not a decision — or a decision that
/// contradicts an earlier one for the same transaction — is
/// [`TxnError::DecisionUnreadable`]: the CRC vouches for the bytes, so
/// this is writer garbage recovery refuses to guess around.
fn scan_txn_log(dir: &Path) -> Result<TxnLogScan> {
    let mut out = TxnLogScan {
        decisions: BTreeMap::new(),
        next_lsn: 1,
        bytes_truncated: 0,
    };
    let segs = list_segments(dir)?;
    for (i, (_, path)) in segs.iter().enumerate() {
        let scan = scan_segment(path)?;
        for (lsn, rec, _) in &scan.frames {
            if *lsn != out.next_lsn {
                return Err(TxnError::DecisionUnreadable {
                    path: path.display().to_string(),
                    msg: format!("expected lsn {}, log continues at {lsn}", out.next_lsn),
                }
                .into());
            }
            let (txn_id, committed) = match rec {
                WalRecord::TxnCommit { txn_id } => (*txn_id, true),
                WalRecord::TxnAbort { txn_id } => (*txn_id, false),
                other => {
                    return Err(TxnError::DecisionUnreadable {
                        path: path.display().to_string(),
                        msg: format!("frame at lsn {lsn} is not a decision: {other:?}"),
                    }
                    .into())
                }
            };
            match out.decisions.get(&txn_id) {
                Some(prev) if *prev != committed => {
                    return Err(TxnError::DecisionUnreadable {
                        path: path.display().to_string(),
                        msg: format!(
                            "txn {txn_id} decided {} at lsn {lsn} but {} earlier",
                            verdict(committed),
                            verdict(*prev)
                        ),
                    }
                    .into())
                }
                _ => {
                    out.decisions.insert(txn_id, committed);
                }
            }
            out.next_lsn += 1;
        }
        if scan.torn() {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io("open", path.display(), e))?;
            f.set_len(scan.valid_len)
                .map_err(|e| StoreError::io("truncate", path.display(), e))?;
            f.sync_data()
                .map_err(|e| StoreError::io("fsync", path.display(), e))?;
            out.bytes_truncated += scan.file_len - scan.valid_len;
            for (_, later) in &segs[i + 1..] {
                if let Ok(meta) = std::fs::metadata(later) {
                    out.bytes_truncated += meta.len();
                }
                std::fs::remove_file(later)
                    .map_err(|e| StoreError::io("remove", later.display(), e))?;
            }
            break;
        }
    }
    Ok(out)
}

fn verdict(committed: bool) -> &'static str {
    if committed {
        "commit"
    } else {
        "abort"
    }
}

/// The coordinator frame spelling a decision.
fn decision_record(txn_id: u64, committed: bool) -> WalRecord {
    if committed {
        WalRecord::TxnCommit { txn_id }
    } else {
        WalRecord::TxnAbort { txn_id }
    }
}

/// The failpoint names a [`two_phase_commit`](ShardedStore::two_phase_commit)
/// run checks at its phase boundaries. User commits pass the `txn.*`
/// spellings; rebalance subtree moves pass the `rebalance.*` spellings so
/// chaos harnesses can kill one protocol without disturbing the other.
pub(crate) struct PhaseProbes {
    pub prepare: &'static str,
    pub decide: &'static str,
    pub outcome: &'static str,
}

/// Probe names for ordinary cross-shard transaction commits.
pub(crate) const TXN_PROBES: PhaseProbes = PhaseProbes {
    prepare: TXN_PREPARE_CRASH,
    decide: TXN_DECIDE_CRASH,
    outcome: TXN_OUTCOME_CRASH,
};

/// N [`DurableStore`] shards behind a [`ShardRouter`]. Every mutation
/// routes to the owning shard's validate → log → apply path; recovery
/// opens all shards in parallel; integrity folds per-shard roots into a
/// [global root](Self::global_root). Cross-shard writes commit through
/// the two-phase protocol of [`commit`](Self::commit) (see
/// [`crate::txn`]).
#[derive(Debug)]
pub struct ShardedStore {
    pub(crate) dir: PathBuf,
    pub(crate) router: ShardRouter,
    pub(crate) shards: Vec<DurableStore>,
    /// Coordinator decision log (`txn.log/`).
    pub(crate) txn_log: Wal,
    /// Next transaction id — past every id the coordinator log or any
    /// participant has ever seen, so ids never repeat across crashes.
    pub(crate) next_txn_id: u64,
    /// Per-shard tuning, kept so a rebalance can open the shards a grow
    /// adds with the same configuration the existing ones run.
    pub(crate) shard_cfg: DurableConfig,
    pub(crate) metrics: Option<Metrics>,
}

impl ShardedStore {
    /// Open (and recover) the sharded store in `dir`, creating it with
    /// `cfg.shards` shards if absent. Existing directories pin their
    /// layout (count + epoch) in `shards.meta`; a disagreeing
    /// `cfg.shards` (other than the "use what's there" default of
    /// matching) is refused with [`StoreError::ShardLayout`], and a
    /// `cfg.pin_epoch` that disagrees with the resolved layout epoch is
    /// refused the same way — the stale-opener guard. Shards recover
    /// **in parallel** on the [`aqua_exec`] pool, each through the full
    /// self-verifying [`DurableStore::open`] path. If a migration
    /// stanza is pinned, the interrupted rebalance is **resumed to
    /// completion** (after transaction resolution, before the
    /// global-root fold), so the store always serves a settled layout.
    pub fn open(dir: &Path, cfg: ShardedConfig) -> Result<(ShardedStore, ShardedRecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
        let meta = match read_meta(dir)? {
            Some(pinned) => {
                // Mid-migration the store answers for both layouts, so
                // an opener naming either count is current enough.
                let agreeable = cfg.shards == 0
                    || cfg.shards == pinned.shards
                    || pinned.migrating_to == Some(cfg.shards);
                if !agreeable {
                    return Err(StoreError::ShardLayout {
                        dir: dir.display().to_string(),
                        msg: format!(
                            "store is pinned at {} shards (epoch {}), reopen asked for {} \
                             (routing must stay stable: same path → same shard; change the \
                             layout with rebalance, not by reopening)",
                            pinned.shards, pinned.epoch, cfg.shards
                        ),
                    });
                }
                pinned
            }
            None => {
                // A coordinator log with no layout pin means the
                // manifest was lost or deleted: re-deriving a shard
                // count here could re-route extents (and orphan
                // prepares) away from their data.
                if dir.join(TXN_LOG_DIR).is_dir() {
                    return Err(StoreError::ShardLayout {
                        dir: dir.display().to_string(),
                        msg: format!(
                            "coordinator log {TXN_LOG_DIR}/ exists but {SHARD_META} is missing; \
                             refusing to re-derive a shard count"
                        ),
                    });
                }
                let meta = ShardLayoutMeta::settled(cfg.shards.max(1), 1);
                write_meta(dir, meta)?;
                meta
            }
        };
        // Stale-opener guard, checked by *epoch* before any recovery
        // work: a pinned opener that predates a completed (or
        // about-to-be-resumed) rebalance must not see the new layout.
        if let Some(pin) = cfg.pin_epoch {
            if pin != meta.resolved_epoch() {
                return Err(StoreError::ShardLayout {
                    dir: dir.display().to_string(),
                    msg: format!(
                        "opener is pinned to layout epoch {pin} but the store resolves to \
                         epoch {} — reopen without the stale pin",
                        meta.resolved_epoch()
                    ),
                });
            }
        }

        let shards = meta.shards;
        // Mid-migration both layouts' shards must come up: the source
        // ones still hold unmoved subtrees, the target ones receive.
        let open_count = meta.migrating_to.map_or(shards, |to| shards.max(to));
        let dirs: Vec<PathBuf> = (0..open_count)
            .map(|i| dir.join(shard_dir_name(i)))
            .collect();
        let degree = cfg.recovery_degree(open_count);
        let shard_cfg = &cfg.shard;
        let opened: Vec<(DurableStore, RecoveryReport)> =
            aqua_exec::try_par_map(&dirs, degree, |_, d| {
                DurableStore::open(d, shard_cfg.clone())
            })?;

        let mut stores = Vec::with_capacity(open_count);
        let mut report = ShardedRecoveryReport {
            recovery_threads: degree,
            ..ShardedRecoveryReport::default()
        };
        for (ds, rep) in opened {
            report.shards.push(rep);
            stores.push(ds);
        }

        // Transaction resolution: every orphaned prepare must be rolled
        // forward or back *before* the global root fold, so the fold
        // certifies a store with no half-applied transactions.
        let txn_dir = dir.join(TXN_LOG_DIR);
        std::fs::create_dir_all(&txn_dir)
            .map_err(|e| StoreError::io("create_dir", txn_dir.display(), e))?;
        let scan = scan_txn_log(&txn_dir)?;
        report.coordinator_bytes_truncated = scan.bytes_truncated;
        let mut decisions = scan.decisions;
        let mut txn_log = Wal::open(
            &txn_dir,
            scan.next_lsn,
            WalConfig {
                segment_bytes: cfg.shard.segment_bytes,
            },
        )?;

        // Participant evidence: an outcome frame replayed from any
        // shard's WAL is durable proof of the coordinator's decision —
        // strong enough to survive losing the coordinator log entirely.
        // Re-log any decision the coordinator lost, and refuse a log
        // that *contradicts* an applied outcome.
        let mut relogged = false;
        for s in &stores {
            for &(txn_id, committed) in s.replayed_txn_outcomes() {
                match decisions.get(&txn_id) {
                    Some(prev) if *prev != committed => {
                        return Err(TxnError::DecisionUnreadable {
                            path: txn_dir.display().to_string(),
                            msg: format!(
                                "coordinator log says {} for txn {txn_id} but a participant \
                                 durably applied {}",
                                verdict(*prev),
                                verdict(committed)
                            ),
                        }
                        .into());
                    }
                    Some(_) => {}
                    None => {
                        txn_log.append_with_root(&decision_record(txn_id, committed), None)?;
                        decisions.insert(txn_id, committed);
                        relogged = true;
                    }
                }
            }
        }

        // Resolve every pending prepare. With a decision (logged or
        // evidenced): follow it. Without: presumed abort — the prepare
        // was durable but no decision exists anywhere, so the client
        // was never acknowledged and rollback is the consistent choice.
        //
        // Divergence checks must see the store *as recovery found it*:
        // resolving a shard removes its pending entry, so a transaction
        // spanning shards 0 and 1 would otherwise lose shard 0's trace
        // by the time shard 1's copy is examined. Snapshot the evidence
        // first.
        let traces: Vec<BTreeSet<u64>> = stores
            .iter()
            .map(|s| {
                s.pending_txns()
                    .into_iter()
                    .chain(s.replayed_txn_outcomes().iter().map(|&(t, _)| t))
                    .collect()
            })
            .collect();
        let mut committed_ids = BTreeSet::new();
        let mut aborted_ids = BTreeSet::new();
        let mut presumed_ids = BTreeSet::new();
        for i in 0..stores.len() {
            for txn_id in stores[i].pending_txns() {
                let decision = decisions.get(&txn_id).copied();
                if decision == Some(true) {
                    // Every participant the prepare enrolled must hold
                    // its half (pending or already applied) — a missing
                    // one diverged from what the coordinator certified.
                    let participants: Vec<u32> = stores[i]
                        .pending_participants(txn_id)
                        .map(<[u32]>::to_vec)
                        .unwrap_or_default();
                    for &p in &participants {
                        let ps = p as usize;
                        let has_trace = ps < stores.len() && traces[ps].contains(&txn_id);
                        if !has_trace {
                            return Err(TxnError::ParticipantDiverged {
                                txn_id,
                                shard: ps,
                                expected: "a pending prepare or an applied outcome".to_string(),
                                actual: "no trace of the transaction".to_string(),
                            }
                            .into());
                        }
                    }
                }
                let commit = match decision {
                    Some(d) => d,
                    None => {
                        txn_log.append_with_root(&decision_record(txn_id, false), None)?;
                        decisions.insert(txn_id, false);
                        relogged = true;
                        presumed_ids.insert(txn_id);
                        false
                    }
                };
                stores[i].txn_resolve(txn_id, commit).map_err(|e| match e {
                    // A roll-forward landing off the prepare's root
                    // binding is divergence, localized to this shard.
                    StoreError::IntegrityMismatch {
                        expected, actual, ..
                    } => TxnError::ParticipantDiverged {
                        txn_id,
                        shard: i,
                        expected,
                        actual,
                    }
                    .into(),
                    e => e,
                })?;
                if commit {
                    committed_ids.insert(txn_id);
                } else {
                    aborted_ids.insert(txn_id);
                }
            }
        }
        if relogged {
            txn_log.sync()?;
        }
        report.txns_committed = committed_ids.len() as u64;
        report.txns_aborted = aborted_ids.len() as u64;
        report.txns_resolved_by_presumption = presumed_ids.len() as u64;

        // Ids never repeat: start past everything any log has seen.
        let max_seen = decisions
            .keys()
            .max()
            .copied()
            .into_iter()
            .chain(
                stores
                    .iter()
                    .flat_map(|s| s.replayed_txn_outcomes().iter().map(|&(t, _)| t)),
            )
            .max()
            .unwrap_or(0);

        let router = match meta.migrating_to {
            None => ShardRouter::at_epoch(shards, meta.epoch),
            Some(to) => ShardRouter::migrating(shards, to, meta.epoch),
        };
        let mut ss = ShardedStore {
            dir: dir.to_path_buf(),
            router,
            shards: stores,
            txn_log,
            next_txn_id: max_seen + 1,
            shard_cfg: cfg.shard.clone(),
            metrics: None,
        };
        if let Some(to) = meta.migrating_to {
            // Resume the interrupted rebalance before the fold: the
            // domain-tagged global root must match the settled layout.
            report.rebalance_resumed_moves = ss.resume_rebalance(meta, to)?;
        } else {
            ss.sweep_rebalance_leftovers()?;
        }
        report.layout_epoch = ss.layout_epoch();
        failpoint::check(SHARD_FOLD_PROBE)?;
        report.global_root = ss.global_root();
        Ok((ss, report))
    }

    /// Where the store lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The router (stable for the life of the directory).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The layout epoch this store serves at (bumped by every completed
    /// rebalance; distinct from the per-shard *mutation* epochs of
    /// [`epochs`](Self::epochs)).
    pub fn layout_epoch(&self) -> u64 {
        self.router.epoch()
    }

    /// The shard owning the named extent. Outside a migration this is
    /// the router's pure hash; inside the dual-route window, lookups
    /// try the new layout's owner first and fall back to the old
    /// layout's owner while the subtree has not moved yet.
    pub fn shard_of(&self, name: &str) -> usize {
        let new = self.router.route_name(name);
        if let Some(old) = self.router.route_old_name(name) {
            let holds = |s: usize| {
                let st = &self.shards[s];
                st.tree(name).is_some() || st.list(name).is_some()
            };
            if !holds(new) && holds(old) {
                return old;
            }
        }
        new
    }

    /// Shard `i`, read-only.
    pub fn shard(&self, i: usize) -> &DurableStore {
        &self.shards[i]
    }

    /// Shard `i`, mutable (for shard-local maintenance like
    /// [`DurableStore::refresh_indexes`]).
    pub fn shard_mut(&mut self, i: usize) -> &mut DurableStore {
        &mut self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[DurableStore] {
        &self.shards
    }

    /// Arm every shard with `m` so WAL/checkpoint traffic is counted,
    /// and the coordinator so transaction phases are.
    pub fn set_metrics(&mut self, m: Metrics) {
        for s in &mut self.shards {
            s.set_metrics(m.clone());
        }
        self.metrics = Some(m);
    }

    /// The failpoint-guarded routing path every mutation goes through.
    fn route_checked(&self, name: &str) -> Result<usize> {
        failpoint::check(SHARD_ROUTE_PROBE)?;
        Ok(self.shard_of(name))
    }

    /// Per-shard mutation epochs, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(DurableStore::epoch).collect()
    }

    /// The global root: fold of every shard's store root. With
    /// authentication on this is the one hash that commits the entire
    /// sharded state.
    pub fn global_root(&self) -> Root {
        fold_shard_roots(
            &self
                .shards
                .iter()
                .map(DurableStore::store_root)
                .collect::<Vec<_>>(),
        )
    }

    /// Define a class on **every** shard (schema is global; each shard's
    /// deterministic [`ClassId`] assignment sees the same definition
    /// sequence, so the ids agree across shards).
    pub fn define_class(&mut self, def: ClassDef) -> Result<ClassId> {
        failpoint::check(SHARD_ROUTE_PROBE)?;
        let mut id = None;
        for s in &mut self.shards {
            let got = s.define_class(def.clone())?;
            match id {
                None => id = Some(got),
                Some(prev) => debug_assert_eq!(prev, got, "class ids agree across shards"),
            }
        }
        id.ok_or_else(|| StoreError::ShardLayout {
            dir: self.dir.display().to_string(),
            msg: "store has zero shards".to_string(),
        })
    }

    /// Insert an object into the shard owning `owner` (the extent path
    /// that will reference it). Returns `(shard, oid)` — OIDs are
    /// shard-local.
    pub fn insert(&mut self, owner: &str, class: ClassId, row: Vec<Value>) -> Result<(usize, Oid)> {
        let sh = self.route_checked(owner)?;
        let oid = self.shards[sh].insert(class, row)?;
        Ok((sh, oid))
    }

    /// Durably create (or wholly replace) a tree extent at `name`.
    pub fn create_tree(&mut self, name: &str, tree: Tree) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].create_tree(name, tree)
    }

    /// Durably insert `child` under `parent` in the named tree.
    pub fn tree_insert_child(
        &mut self,
        name: &str,
        parent: NodeId,
        index: usize,
        child: Tree,
    ) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].tree_insert_child(name, parent, index, child)
    }

    /// Durably remove the subtree rooted at `at` from the named tree.
    pub fn tree_remove_subtree(&mut self, name: &str, at: NodeId) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].tree_remove_subtree(name, at)
    }

    /// Durably point-update one tree node's payload OID.
    pub fn tree_set_oid(&mut self, name: &str, at: NodeId, oid: Oid) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].tree_set_oid(name, at, oid)
    }

    /// Durably create (or reset) a list extent at `name`.
    pub fn create_list(&mut self, name: &str) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].create_list(name)
    }

    /// Durably append to the named list.
    pub fn list_push(&mut self, name: &str, oid: Oid) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].list_push(name, oid)
    }

    /// Durably append a labeled NULL to the named list.
    pub fn list_push_hole(&mut self, name: &str, label: &str) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].list_push_hole(name, label)
    }

    /// Durably remove the element at `index` from the named list.
    pub fn list_remove(&mut self, name: &str, index: usize) -> Result<()> {
        let sh = self.route_checked(name)?;
        self.shards[sh].list_remove(name, index)
    }

    /// Register an index spec on the shard owning its extent
    /// (class-wide [`IndexSpec::Attr`] specs broadcast to every shard —
    /// each shard's extent is shard-local).
    pub fn register_index(&mut self, spec: IndexSpec) -> Result<()> {
        failpoint::check(SHARD_ROUTE_PROBE)?;
        match &spec {
            IndexSpec::Attr { .. } => {
                for s in &mut self.shards {
                    s.register_index(spec.clone())?;
                }
                Ok(())
            }
            IndexSpec::TreeNode { tree: name, .. } | IndexSpec::Structural { tree: name } => {
                let sh = self.shard_of(&name.clone());
                self.shards[sh].register_index(spec)
            }
            IndexSpec::ListPos { list: name, .. } => {
                let sh = self.shard_of(&name.clone());
                self.shards[sh].register_index(spec)
            }
        }
    }

    /// The named tree extent (from its owning shard).
    pub fn tree(&self, name: &str) -> Option<&Tree> {
        self.shards[self.shard_of(name)].tree(name)
    }

    /// The named list extent (from its owning shard).
    pub fn list(&self, name: &str) -> Option<&List> {
        self.shards[self.shard_of(name)].list(name)
    }

    /// Force every shard's WAL to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        for s in &mut self.shards {
            s.sync()?;
        }
        Ok(())
    }

    /// Checkpoint every shard. Returns the snapshot paths, shard order.
    pub fn checkpoint(&mut self) -> Result<Vec<PathBuf>> {
        self.shards
            .iter_mut()
            .map(DurableStore::checkpoint)
            .collect()
    }

    /// Rebuild every shard's registered indexes at its current epoch.
    pub fn refresh_indexes(&mut self) -> Result<u32> {
        let mut n = 0;
        for s in &mut self.shards {
            n += s.refresh_indexes()?;
        }
        Ok(n)
    }

    /// Begin buffering a cross-shard transaction against this store.
    pub fn begin(&self) -> ShardTxn {
        ShardTxn::begin(self)
    }

    /// Commit a buffered transaction atomically. See
    /// [`commit_gated`](Self::commit_gated).
    pub fn commit(&mut self, txn: &ShardTxn) -> Result<TxnReceipt> {
        self.commit_gated(txn, || true)
    }

    /// Commit a buffered transaction atomically, with a caller-supplied
    /// gate polled at each phase boundary *before the decision is
    /// logged* — the deadline-propagation hook: a gate returning `false`
    /// aborts cleanly (typed [`TxnError::Aborted`], nothing applied
    /// anywhere, safe to retry), never blocks, and is never consulted
    /// again once the commit decision is durable.
    ///
    /// Single-shard transactions skip the protocol: their records take
    /// the ordinary one-phase validate → log → apply path. Multi-shard
    /// transactions run presumed-abort two-phase commit: durable
    /// `TxnPrepare` frames on every participant, one decision frame in
    /// the coordinator log, then outcome frames as each participant
    /// applies. An error *after* the decision propagates raw — the
    /// transaction is committed, and the next
    /// [`open`](ShardedStore::open) completes the roll-forward.
    pub fn commit_gated(
        &mut self,
        txn: &ShardTxn,
        mut gate: impl FnMut() -> bool,
    ) -> Result<TxnReceipt> {
        let participants = txn.participants();
        if participants.is_empty() {
            return Ok(TxnReceipt {
                txn_id: None,
                participants,
                records: 0,
            });
        }
        if !gate() {
            return Err(TxnError::Aborted {
                txn_id: self.next_txn_id,
                reason: "gate refused before any phase ran".to_string(),
            }
            .into());
        }
        if let [only] = participants.as_slice() {
            // One-phase fast path: a single participant needs no
            // coordination — the shard's own WAL is the whole story.
            let sh = *only as usize;
            let records = txn.records_for(*only);
            for rec in records {
                self.shards[sh].apply_record(rec.clone())?;
            }
            self.shards[sh].sync()?;
            return Ok(TxnReceipt {
                txn_id: None,
                participants,
                records: records.len(),
            });
        }

        let buffers: BTreeMap<u32, Vec<WalRecord>> = participants
            .iter()
            .map(|&p| (p, txn.records_for(p).to_vec()))
            .collect();
        let txn_id = self.two_phase_commit(&buffers, gate, &TXN_PROBES)?;
        Ok(TxnReceipt {
            txn_id: Some(txn_id),
            participants,
            records: txn.len(),
        })
    }

    /// The multi-participant, presumed-abort two-phase-commit core —
    /// shared by cross-shard commits ([`commit_gated`](Self::commit_gated))
    /// and by rebalance subtree moves, which differ only in the buffers
    /// they prepare and the failpoint names (`probes`) checked at each
    /// phase boundary. Durable prepares per participant (ascending), one
    /// decision frame in the coordinator log, then outcome application.
    /// Injected faults propagate with **no cleanup** (simulated kills);
    /// gate refusals abort cleanly before the decision. Returns the
    /// committed transaction's id.
    pub(crate) fn two_phase_commit(
        &mut self,
        buffers: &BTreeMap<u32, Vec<WalRecord>>,
        mut gate: impl FnMut() -> bool,
        probes: &PhaseProbes,
    ) -> Result<u64> {
        let participants: Vec<u32> = buffers.keys().copied().collect();
        let txn_id = self.next_txn_id;
        self.next_txn_id += 1;
        let started = Instant::now();

        // Phase 1: durable prepares, in participant order. An injected
        // crash propagates with no cleanup (recovery presumes abort); a
        // real validation/I/O failure aborts cleanly right here.
        for &p in &participants {
            failpoint::check(probes.prepare)?;
            failpoint::check(&participant_probe(probes.prepare, p))?;
            if !gate() {
                self.abort_prepared(txn_id, &participants, p)?;
                return Err(TxnError::Aborted {
                    txn_id,
                    reason: format!("gate refused before participant {p} prepared"),
                }
                .into());
            }
            if let Err(e) =
                self.shards[p as usize].txn_prepare(txn_id, &participants, buffers[&p].clone())
            {
                if matches!(e, StoreError::Injected { .. }) {
                    // A failpoint inside the prepare path is a simulated
                    // crash, not a refusal: leave everything in place.
                    return Err(e);
                }
                self.abort_prepared(txn_id, &participants, p)?;
                return Err(TxnError::PrepareFailed {
                    txn_id,
                    shard: p as usize,
                    msg: e.to_string(),
                }
                .into());
            }
            if let Some(m) = &self.metrics {
                m.txn_prepared.inc();
            }
        }

        // Decision point. The gate gets its last word here — after this
        // frame is durable the transaction is committed, period.
        if !gate() {
            self.abort_prepared(txn_id, &participants, u32::MAX)?;
            return Err(TxnError::Aborted {
                txn_id,
                reason: "gate refused between prepare and decide (deadline expired)".to_string(),
            }
            .into());
        }
        failpoint::check(probes.decide)?;
        self.txn_log
            .append_with_root(&decision_record(txn_id, true), None)?;
        self.txn_log.sync()?;
        if let Some(m) = &self.metrics {
            m.txn_decide_us.record(started.elapsed().as_micros() as u64);
        }

        // Phase 2: outcomes. Errors (injected or real) propagate raw —
        // the decision is durable and recovery rolls the rest forward.
        for &p in &participants {
            failpoint::check(probes.outcome)?;
            failpoint::check(&participant_probe(probes.outcome, p))?;
            self.shards[p as usize].txn_resolve(txn_id, true)?;
        }
        if let Some(m) = &self.metrics {
            m.txn_committed.inc();
        }
        Ok(txn_id)
    }

    /// Clean pre-decision abort: log the abort decision, then roll back
    /// every participant before `upto` that already prepared. Leaves the
    /// store exactly as it was before the transaction began.
    fn abort_prepared(&mut self, txn_id: u64, participants: &[u32], upto: u32) -> Result<()> {
        self.txn_log
            .append_with_root(&decision_record(txn_id, false), None)?;
        self.txn_log.sync()?;
        for &p in participants.iter().take_while(|&&p| p < upto) {
            self.shards[p as usize].txn_resolve(txn_id, false)?;
        }
        if let Some(m) = &self.metrics {
            m.txn_aborted.inc();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-shard-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn note_class() -> ClassDef {
        ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap()
    }

    #[test]
    fn empty_path_routes_to_shard_zero() {
        for n in [1, 2, 4, 7] {
            let r = ShardRouter::new(n);
            assert_eq!(r.route(&ExtentPath::root()), 0);
            assert_eq!(r.route_name(""), 0);
            assert_eq!(r.route_name("/"), 0, "slashes alone are the root path");
        }
    }

    #[test]
    fn deep_nesting_routes_with_its_top_segment() {
        let r = ShardRouter::new(4);
        let top = r.route_name("s7");
        let mut path = ExtentPath::parse("s7");
        // 64 levels deep: still co-located with the top-level subtree.
        for d in 0..64 {
            path = path.child(format!("lvl{d}").as_bytes());
            assert_eq!(r.route(&path), top, "depth {} re-routed", path.depth());
        }
        assert_eq!(path.depth(), 65);
        // Normalization: doubled and leading slashes don't change the route.
        assert_eq!(r.route_name("s7//doc"), top);
        assert_eq!(r.route_name("/s7/doc"), top);
    }

    #[test]
    fn routing_is_a_pure_function_and_spreads() {
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for i in 0..64 {
            let name = format!("s{i}/doc");
            let a = r.route_name(&name);
            assert_eq!(a, r.route_name(&name), "same path, same shard");
            assert_eq!(
                a,
                ShardRouter::new(4).route_name(&name),
                "router-independent"
            );
            hit[a] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "64 top-level names reach all 4 shards"
        );
    }

    /// Top-level names that all hash to one shard of 4 (found by search;
    /// deterministic because the hash is).
    fn colliding_names(router: &ShardRouter, want: usize) -> Vec<String> {
        let target = router.route_name("collide0");
        let mut out = vec!["collide0".to_string()];
        let mut i = 1u64;
        while out.len() < want {
            let name = format!("collide{i}");
            if router.route_name(&name) == target {
                out.push(name);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn all_extents_on_one_shard_still_works() {
        let dir = temp_dir("onehot");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, rep) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        assert!(rep.clean());
        let names = colliding_names(ss.router(), 6);
        let hot = ss.shard_of(&names[0]);
        let class = ss.define_class(note_class()).unwrap();
        for n in &names {
            let list = format!("{n}/song");
            assert_eq!(ss.shard_of(&list), hot, "co-located with its top segment");
            ss.create_list(&list).unwrap();
            let (sh, oid) = ss.insert(&list, class, vec![Value::str("E")]).unwrap();
            assert_eq!(sh, hot);
            ss.list_push(&list, oid).unwrap();
        }
        // Three shards stayed pristine, one took everything.
        let busy: Vec<usize> = (0..4).filter(|&i| ss.shard(i).epoch() > 0).collect();
        let lists: usize = ss.shards().iter().map(|s| s.lists().len()).sum();
        assert_eq!(lists, names.len());
        // define_class broadcasts, so count only extent-carrying shards.
        assert_eq!(
            busy.iter()
                .filter(|&&i| !ss.shard(i).lists().is_empty())
                .count(),
            1
        );
        ss.sync().unwrap();
        drop(ss);
        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean());
        for n in &names {
            assert_eq!(back.list(&format!("{n}/song")).unwrap().len(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_is_stable_across_recovery() {
        let dir = temp_dir("stable");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let mut routed = Vec::new();
        for i in 0..16 {
            let name = format!("p{i}/song");
            ss.create_list(&name).unwrap();
            let (sh, oid) = ss.insert(&name, class, vec![Value::str("A")]).unwrap();
            ss.list_push(&name, oid).unwrap();
            routed.push((name, sh));
        }
        ss.sync().unwrap();
        let root_before = ss.global_root();
        drop(ss);

        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.global_root, root_before, "report certifies the fold");
        assert_eq!(back.global_root(), root_before);
        for (name, sh) in &routed {
            assert_eq!(back.shard_of(name), *sh, "{name} re-routed after recovery");
            assert!(
                back.shard(*sh).list(name).is_some(),
                "{name} lives where the router says"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_change_is_refused() {
        let dir = temp_dir("pin");
        let (_ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let err = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap_err();
        assert!(matches!(err, StoreError::ShardLayout { .. }), "got {err:?}");
        // shards: 0 means "use what's pinned".
        let (ss, _) = ShardedStore::open(
            &dir,
            ShardedConfig {
                shards: 0,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(ss.shard_count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_recovery_matches_serial_recovery() {
        let dir = temp_dir("par");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        for i in 0..12 {
            let name = format!("t{i}/song");
            ss.create_list(&name).unwrap();
            for p in ["E", "F", "G"] {
                let (_, oid) = ss.insert(&name, class, vec![Value::str(p)]).unwrap();
                ss.list_push(&name, oid).unwrap();
            }
        }
        ss.sync().unwrap();
        drop(ss);

        let serial = ShardedConfig {
            recovery_threads: 1,
            ..cfg.clone()
        };
        let parallel = ShardedConfig {
            recovery_threads: 4,
            ..cfg
        };
        let (s1, r1) = ShardedStore::open(&dir, serial).unwrap();
        let root1 = s1.global_root();
        drop(s1);
        let (s4, r4) = ShardedStore::open(&dir, parallel).unwrap();
        // Each open starts a fresh (empty) WAL segment, so
        // segments_scanned drifts by one between opens; everything the
        // replay *produced* must agree exactly.
        for (a, b) in r1.shards.iter().zip(&r4.shards) {
            assert_eq!(a.frames_replayed, b.frames_replayed);
            assert_eq!(a.next_lsn, b.next_lsn);
            assert_eq!(a.extent_roots, b.extent_roots);
        }
        assert_eq!(r1.global_root, r4.global_root);
        assert_eq!(s4.global_root(), root1);
        assert_eq!(r4.recovery_threads, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_root_binds_shard_order() {
        let a = Root([1; 32]);
        let b = Root([2; 32]);
        assert_ne!(fold_shard_roots(&[a, b]), fold_shard_roots(&[b, a]));
        assert_ne!(fold_shard_roots(&[a]), fold_shard_roots(&[a, a]));
    }

    /// Two extent names `ss` routes to different shards.
    fn split_pair(ss: &ShardedStore) -> (String, String) {
        let a = "x0/song".to_string();
        let sa = ss.shard_of(&a);
        let mut i = 1u32;
        loop {
            let b = format!("x{i}/song");
            if ss.shard_of(&b) != sa {
                return (a, b);
            }
            i += 1;
        }
    }

    #[test]
    fn single_shard_txn_takes_the_fast_path() {
        let dir = temp_dir("fastpath");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        ss.create_list("p0/song").unwrap();

        let mut txn = ss.begin();
        let (_, oid) = txn.insert("p0/song", class, vec![Value::str("E")]);
        txn.list_push("p0/song", oid);
        let receipt = ss.commit(&txn).unwrap();
        assert!(receipt.fast_path());
        assert_eq!(receipt.records, 2);
        assert_eq!(ss.list("p0/song").unwrap().len(), 1);
        // No coordination happened: the coordinator log holds no decision.
        let scan = scan_txn_log(&dir.join(TXN_LOG_DIR)).unwrap();
        assert!(scan.decisions.is_empty(), "fast path logged a decision");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_commit_applies_atomically_and_survives_reopen() {
        let dir = temp_dir("2pc");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();

        let mut txn = ss.begin();
        let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
        txn.list_push(&a, oa);
        let (_, ob) = txn.insert(&b, class, vec![Value::str("F")]);
        txn.list_push(&b, ob);
        let receipt = ss.commit(&txn).unwrap();
        assert!(!receipt.fast_path());
        assert_eq!(receipt.participants.len(), 2);
        assert_eq!(receipt.records, 4);
        assert_eq!(ss.list(&a).unwrap().len(), 1);
        assert_eq!(ss.list(&b).unwrap().len(), 1);
        let root = ss.global_root();
        drop(ss);

        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.txns_committed + rep.txns_aborted, 0, "nothing pending");
        assert_eq!(back.global_root(), root);
        assert_eq!(back.list(&a).unwrap().len(), 1);
        assert_eq!(back.list(&b).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn txn_ids_advance_and_never_reuse_across_reopen() {
        let dir = temp_dir("ids");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();
        let mut first = None;
        for _ in 0..2 {
            let mut txn = ss.begin();
            let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
            txn.list_push(&a, oa);
            txn.list_push_hole(&b, "rest");
            let id = ss.commit(&txn).unwrap().txn_id.unwrap();
            if let Some(prev) = first {
                assert!(id > prev, "ids must advance: {prev} then {id}");
            }
            first = Some(id);
        }
        drop(ss);
        let (mut back, _) = ShardedStore::open(&dir, cfg).unwrap();
        let mut txn = back.begin();
        txn.list_push_hole(&a, "r");
        txn.list_push_hole(&b, "r");
        let id = back.commit(&txn).unwrap().txn_id.unwrap();
        assert!(id > first.unwrap(), "reopen must not reuse decided ids");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_refusal_mid_prepare_aborts_cleanly_and_retries() {
        let dir = temp_dir("gate");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();
        let root_before = ss.global_root();

        let mut txn = ss.begin();
        let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
        txn.list_push(&a, oa);
        txn.list_push_hole(&b, "rest");

        // Polls: 1 = before any phase, 2 = before first prepare,
        // 3 = before second prepare → refuse with one shard prepared.
        let mut polls = 0u32;
        let err = ss
            .commit_gated(&txn, || {
                polls += 1;
                polls < 3
            })
            .unwrap_err();
        assert!(
            matches!(err, StoreError::Txn(TxnError::Aborted { .. })),
            "got {err:?}"
        );
        assert_eq!(ss.global_root(), root_before, "abort left residue");
        assert_eq!(ss.list(&a).unwrap().len(), 0);

        // A cleanly aborted transaction left the store untouched, so the
        // same buffer (same OID predictions) retries verbatim.
        let receipt = ss.commit(&txn).unwrap();
        assert_eq!(receipt.records, 3);
        assert_eq!(ss.list(&a).unwrap().len(), 1);
        assert_eq!(ss.list(&b).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepare_crash_is_presumed_abort_on_reopen() {
        let dir = temp_dir("presume");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();
        ss.sync().unwrap();
        let root_before = ss.global_root();

        let mut txn = ss.begin();
        let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
        txn.list_push(&a, oa);
        txn.list_push_hole(&b, "rest");
        // Crash when the protocol reaches the *second* participant: the
        // first holds a durable orphaned prepare, no decision exists.
        let second = txn.participants()[1];
        failpoint::arm_times(&participant_probe(TXN_PREPARE_CRASH, second), "kill", 1);
        let err = ss.commit(&txn).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }), "got {err:?}");
        drop(ss); // simulated process death: no cleanup ran

        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert_eq!(rep.txns_aborted, 1, "{rep}");
        assert_eq!(rep.txns_resolved_by_presumption, 1, "{rep}");
        assert_eq!(rep.txns_committed, 0);
        assert_eq!(back.global_root(), root_before, "rollback incomplete");
        assert_eq!(back.list(&a).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_crash_is_rolled_forward_on_reopen() {
        let dir = temp_dir("forward");
        let cfg = ShardedConfig::with_shards(4);
        let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();
        ss.sync().unwrap();

        let mut txn = ss.begin();
        let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
        txn.list_push(&a, oa);
        let (_, ob) = txn.insert(&b, class, vec![Value::str("F")]);
        txn.list_push(&b, ob);
        // Crash after the decision is durable but before the second
        // participant applies: recovery must finish the commit.
        let second = txn.participants()[1];
        failpoint::arm_times(&participant_probe(TXN_OUTCOME_CRASH, second), "kill", 1);
        let err = ss.commit(&txn).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }), "got {err:?}");
        drop(ss);

        let (back, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert_eq!(rep.txns_committed, 1, "{rep}");
        assert_eq!(rep.txns_resolved_by_presumption, 0);
        assert_eq!(back.list(&a).unwrap().len(), 1, "committed txn lost");
        assert_eq!(back.list(&b).unwrap().len(), 1, "roll-forward incomplete");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_missing_with_coordinator_log_refuses_to_open() {
        let dir = temp_dir("metagone");
        let cfg = ShardedConfig::with_shards(4);
        drop(ShardedStore::open(&dir, cfg.clone()).unwrap());
        std::fs::remove_file(dir.join(SHARD_META)).unwrap();
        let err = ShardedStore::open(&dir, cfg).unwrap_err();
        match err {
            StoreError::ShardLayout { msg, .. } => {
                assert!(msg.contains(TXN_LOG_DIR), "{msg}");
            }
            other => panic!("expected ShardLayout, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn route_and_fold_probes_inject_typed_faults() {
        let dir = temp_dir("probes");
        let cfg = ShardedConfig::with_shards(2);
        {
            let (mut ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
            failpoint::arm_times(SHARD_ROUTE_PROBE, "routing fault", 1);
            let err = ss.create_list("p0/song").unwrap_err();
            assert!(matches!(err, StoreError::Injected { .. }), "got {err:?}");
            ss.create_list("p0/song").unwrap();
        }
        failpoint::arm_times(SHARD_FOLD_PROBE, "fold fault", 1);
        let err = ShardedStore::open(&dir, cfg.clone()).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }), "got {err:?}");
        let (ss, rep) = ShardedStore::open(&dir, cfg).unwrap();
        assert!(rep.clean());
        assert!(ss.list("p0/song").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn txn_metrics_stamp_and_count() {
        let dir = temp_dir("txnmetrics");
        let (mut ss, rep) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let m = Metrics::new();
        rep.stamp(&m);
        ss.set_metrics(m.clone());
        let class = ss.define_class(note_class()).unwrap();
        let (a, b) = split_pair(&ss);
        ss.create_list(&a).unwrap();
        ss.create_list(&b).unwrap();

        let mut txn = ss.begin();
        let (_, oa) = txn.insert(&a, class, vec![Value::str("E")]);
        txn.list_push(&a, oa);
        txn.list_push_hole(&b, "rest");
        ss.commit(&txn).unwrap();
        let mut polls = 0u32;
        let _ = ss.commit_gated(&txn, || {
            polls += 1;
            polls < 2
        });
        let snap = m.snapshot();
        assert_eq!(snap.txn_prepared, 2, "one prepare per participant");
        assert_eq!(snap.txn_committed, 1);
        assert_eq!(snap.txn_aborted, 1);
        assert_eq!(snap.txn_decide_us.count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips_with_and_without_stanza() {
        let dir = temp_dir("metart");
        std::fs::create_dir_all(&dir).unwrap();
        for meta in [
            ShardLayoutMeta::settled(4, 1),
            ShardLayoutMeta::settled(1, 7),
            ShardLayoutMeta {
                shards: 2,
                epoch: 3,
                migrating_to: Some(4),
            },
        ] {
            write_meta(&dir, meta).unwrap();
            assert_eq!(read_meta(&dir).unwrap(), Some(meta));
            assert_eq!(
                meta.resolved_epoch(),
                meta.epoch + u64::from(meta.migrating_to.is_some())
            );
        }
        assert_eq!(read_meta(&temp_dir("metanone")).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_flipped_meta_is_refused_typed() {
        let dir = temp_dir("metacorrupt");
        let (_ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap();
        let path = dir.join(SHARD_META);
        let pristine = std::fs::read(&path).unwrap();

        // Torn rewrite: every strict prefix must be refused, not trusted.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let err = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap_err();
            assert!(
                matches!(err, StoreError::ShardLayout { .. }),
                "cut at {cut}: got {err:?}"
            );
        }

        // Bit flip anywhere — length word, checksum word, or payload —
        // must be caught by the frame, never parsed as written.
        for byte in 0..pristine.len() {
            let mut flipped = pristine.clone();
            flipped[byte] ^= 0x40;
            std::fs::write(&path, &flipped).unwrap();
            let err = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap_err();
            assert!(
                matches!(err, StoreError::ShardLayout { .. }),
                "flip at {byte}: got {err:?}"
            );
        }

        std::fs::write(&path, &pristine).unwrap();
        let (ss, rep) = ShardedStore::open(&dir, ShardedConfig::with_shards(2)).unwrap();
        assert!(rep.clean());
        assert_eq!(ss.shard_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_pin_is_refused_typed() {
        let dir = temp_dir("stalepin");
        let cfg = ShardedConfig::with_shards(1);
        let (ss, _) = ShardedStore::open(&dir, cfg.clone()).unwrap();
        assert_eq!(ss.layout_epoch(), 1, "fresh stores pin epoch 1");
        drop(ss);
        // The current epoch is accepted; a stale (or future) pin is not.
        let pinned = ShardedConfig {
            pin_epoch: Some(1),
            ..cfg.clone()
        };
        let (ss, _) = ShardedStore::open(&dir, pinned).unwrap();
        drop(ss);
        for stale in [2, 9] {
            let err = ShardedStore::open(
                &dir,
                ShardedConfig {
                    pin_epoch: Some(stale),
                    ..cfg.clone()
                },
            )
            .unwrap_err();
            assert!(matches!(err, StoreError::ShardLayout { .. }), "got {err:?}");
            assert!(err.to_string().contains("epoch"), "got {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
