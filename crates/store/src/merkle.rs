//! Authenticated extents: merkle roots over the structural interval
//! columns.
//!
//! Every tree and list extent is summarized by a 32-byte **root hash**
//! computed over its *rows* — for a tree, one leaf per node in preorder
//! covering `(pre, post)` interval numbers plus the node's payload (OID,
//! class, and every stored attribute value, or the hole label); for a
//! list, one leaf per position. Leaves combine pairwise (SHA-256, with
//! distinct leaf/branch domain tags) into a merkle root, and the roots
//! of all extents fold into a single **store root**.
//!
//! The hash schema is deliberately *specification-simple* so that an
//! independent checker (the `aqua-check` crate, which shares no code
//! with this module) can recompute the same root from a certificate's
//! canonical piece serialization. Byte-for-byte layout:
//!
//! ```text
//! tree leaf  = SHA256(0x00 "TL" pre:u32le post:u32le payload)
//! list leaf  = SHA256(0x00 "LL" pos:u32le payload)
//! payload    = 0x01 oid:u64le class:u32le nvals:u32le value*   (cell)
//!            | 0x02 len:u32le label-utf8                       (hole)
//! value      = 0x00 | 0x01 b:u8 | 0x02 i64le | 0x03 f64-bits-le
//!            | 0x04 len:u32le utf8 | 0x05 oid:u64le
//! branch     = SHA256(0x01 left right)      (odd last node promoted)
//! empty root = SHA256("AQUA-EMPTY")
//! store root = SHA256("AQUA-STORE" (kind:u8 len:u32le name root)*)
//!              kind = 0x01 tree | 0x02 list, extents sorted by
//!              (kind, name)
//! ```
//!
//! [`tree_leaves`]/[`list_leaves`] build the leaf columns,
//! [`MerkleTree`] folds them, and [`first_divergence`] names the first
//! leaf where two columns disagree — recovery maps that back through
//! the interval numbering to report the divergent *subtree*, not just
//! the extent.

use std::fmt;

use aqua_algebra::list::ListElem;
use aqua_algebra::{List, Payload, Tree};
use aqua_object::{ObjectStore, Oid, Value};

/// A 32-byte merkle root (SHA-256). The `Default` root (all zeros) is
/// what an empty fold reports — no real SHA-256 output collides with it.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Root(pub [u8; 32]);

impl Root {
    /// Render as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse from 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Root> {
        let s = s.trim();
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Root(out))
    }
}

impl fmt::Debug for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Root({})", self.to_hex())
    }
}

impl fmt::Display for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4), dependency-free.
// ---------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 over byte slices.
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    fn compress(&mut self, block: &[u8]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.h.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and return the digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.total = 0; // padding bytes must not disturb the length field
        let mut tail = [0u8; 64];
        tail[..56].copy_from_slice(&self.buf[..56]);
        tail[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&tail);
        let mut out = [0u8; 32];
        for (i, v) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

// ---------------------------------------------------------------------
// Leaf schema
// ---------------------------------------------------------------------

/// An attribute override for predictive hashing: "hash as if `oid`'s
/// attribute `attr` held `value`". The durable write path uses this to
/// compute the *post-apply* root of an `Update` before the record is
/// logged, preserving log-before-apply ordering.
pub type AttrOverride<'a> = Option<(Oid, usize, &'a Value)>;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0x00),
        Value::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(0x02);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(0x03);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x04);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Ref(o) => {
            out.push(0x05);
            out.extend_from_slice(&o.0.to_le_bytes());
        }
    }
}

pub(crate) fn put_cell(out: &mut Vec<u8>, store: &ObjectStore, oid: Oid, ov: AttrOverride<'_>) {
    out.push(0x01);
    out.extend_from_slice(&oid.0.to_le_bytes());
    match store.get(oid) {
        Ok(obj) => {
            out.extend_from_slice(&obj.class().0.to_le_bytes());
            out.extend_from_slice(&(obj.values().len() as u32).to_le_bytes());
            for (i, v) in obj.values().iter().enumerate() {
                match ov {
                    Some((o, a, nv)) if o == oid && a == i => put_value(out, nv),
                    _ => put_value(out, v),
                }
            }
        }
        // A dangling OID still hashes deterministically: class u32::MAX,
        // zero attributes. (Extents may legitimately reference OIDs the
        // caller constructed out of band, e.g. `Oid(0)` placeholders.)
        Err(_) => {
            out.extend_from_slice(&u32::MAX.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
        }
    }
}

pub(crate) fn put_hole(out: &mut Vec<u8>, label: &str) {
    out.push(0x02);
    out.extend_from_slice(&(label.len() as u32).to_le_bytes());
    out.extend_from_slice(label.as_bytes());
}

/// The leaf-hash column of a tree extent: one hash per node in preorder,
/// each covering the node's `(pre, post)` interval numbers and its
/// payload (OID + class + attribute values, or hole label).
pub fn tree_leaves(store: &ObjectStore, tree: &Tree, ov: AttrOverride<'_>) -> Vec<Root> {
    // Stream the tree's cached columnar view: the preorder sequence and
    // the pre/post interval columns come straight out of `Tree::cols`
    // (the same single-clock numbering as `interval_numbering`, so leaf
    // hashes — and therefore roots — are unchanged by the flat layout).
    let cols = tree.cols();
    let (pre_col, post_col) = (cols.pre_col(), cols.post_col());
    let mut leaves = Vec::with_capacity(tree.len());
    let mut bytes = Vec::with_capacity(64);
    for &n in cols.preorder_nodes() {
        let (pre, post) = (pre_col[n.index()], post_col[n.index()]);
        bytes.clear();
        bytes.push(0x00);
        bytes.extend_from_slice(b"TL");
        bytes.extend_from_slice(&pre.to_le_bytes());
        bytes.extend_from_slice(&post.to_le_bytes());
        match tree.payload(n) {
            Payload::Cell(c) => put_cell(&mut bytes, store, c.contents(), ov),
            Payload::Hole(l) => put_hole(&mut bytes, &l.0),
        }
        leaves.push(Root(sha256(&bytes)));
    }
    leaves
}

/// The leaf-hash column of a list extent: one hash per position.
pub fn list_leaves(store: &ObjectStore, list: &List, ov: AttrOverride<'_>) -> Vec<Root> {
    let mut leaves = Vec::with_capacity(list.len());
    for (pos, elem) in list.elems().iter().enumerate() {
        let mut bytes = Vec::with_capacity(32);
        bytes.push(0x00);
        bytes.extend_from_slice(b"LL");
        bytes.extend_from_slice(&(pos as u32).to_le_bytes());
        match elem {
            ListElem::Cell(c) => put_cell(&mut bytes, store, c.contents(), ov),
            ListElem::Hole(l) => put_hole(&mut bytes, &l.0),
        }
        leaves.push(Root(sha256(&bytes)));
    }
    leaves
}

// ---------------------------------------------------------------------
// Merkle fold
// ---------------------------------------------------------------------

/// Root of an empty leaf column.
pub fn empty_root() -> Root {
    Root(sha256(b"AQUA-EMPTY"))
}

/// Fold a leaf column into its merkle root (pairwise SHA-256 with a
/// `0x01` branch tag; an odd last node is promoted unchanged).
pub fn merkle_root(leaves: &[Root]) -> Root {
    if leaves.is_empty() {
        return empty_root();
    }
    let mut level: Vec<Root> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let mut h = Sha256::new();
                h.update(&[0x01]);
                h.update(&pair[0].0);
                h.update(&pair[1].0);
                next.push(Root(h.finish()));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Merkle root of a tree extent.
pub fn tree_root(store: &ObjectStore, tree: &Tree) -> Root {
    merkle_root(&tree_leaves(store, tree, None))
}

/// Merkle root of a list extent.
pub fn list_root(store: &ObjectStore, list: &List) -> Root {
    merkle_root(&list_leaves(store, list, None))
}

/// Index of the first leaf where two columns disagree (`None` if equal
/// including length). This is what localizes a
/// [`StoreError::IntegrityMismatch`](crate::StoreError::IntegrityMismatch)
/// to a subtree.
pub fn first_divergence(a: &[Root], b: &[Root]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| x != y)
}

/// A leaf column plus its root: the merkle-ized view of one extent kept
/// by the snapshot manifest and the structural index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// Leaf hashes, in row (preorder / position) order.
    pub leaves: Vec<Root>,
    /// The folded root.
    pub root: Root,
}

impl MerkleTree {
    /// Fold `leaves`.
    pub fn from_leaves(leaves: Vec<Root>) -> MerkleTree {
        let root = merkle_root(&leaves);
        MerkleTree { leaves, root }
    }
}

/// Fold per-extent roots into the store root. `extents` must be sorted
/// by `(kind, name)`; kind is `0x01` for trees, `0x02` for lists.
pub fn store_root<'a>(extents: impl IntoIterator<Item = (u8, &'a str, Root)>) -> Root {
    let mut h = Sha256::new();
    h.update(b"AQUA-STORE");
    for (kind, name, root) in extents {
        h.update(&[kind]);
        h.update(&(name.len() as u32).to_le_bytes());
        h.update(name.as_bytes());
        h.update(&root.0);
    }
    Root(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::TreeBuilder;
    use aqua_object::{AttrDef, AttrType, ClassDef};

    /// FIPS 180-4 test vectors pin the implementation.
    #[test]
    fn sha256_known_vectors() {
        let hex = |d: [u8; 32]| Root(d).to_hex();
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Multi-block + streaming equivalence.
        let long = vec![b'a'; 1_000];
        let mut st = Sha256::new();
        for chunk in long.chunks(37) {
            st.update(chunk);
        }
        assert_eq!(st.finish(), sha256(&long));
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    fn fixture() -> (ObjectStore, Tree, List) {
        let mut store = ObjectStore::new();
        store
            .define_class(
                ClassDef::new(
                    "Note",
                    vec![
                        AttrDef::stored("pitch", AttrType::Str),
                        AttrDef::stored("duration", AttrType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let mut oids = Vec::new();
        for (p, d) in [("E", 4i64), ("G", 2), ("A", 8)] {
            oids.push(
                store
                    .insert_named(
                        "Note",
                        &[("pitch", Value::str(p)), ("duration", Value::Int(d))],
                    )
                    .unwrap(),
            );
        }
        let mut b = TreeBuilder::new();
        let k1 = b.node(oids[1], vec![]);
        let k2 = b.node(oids[2], vec![]);
        let r = b.node(oids[0], vec![k1, k2]);
        let tree = b.finish(r).unwrap();
        let list = List::from_oids(oids);
        (store, tree, list)
    }

    #[test]
    fn roots_are_deterministic_and_content_sensitive() {
        let (store, tree, list) = fixture();
        let r1 = tree_root(&store, &tree);
        let r2 = tree_root(&store, &tree);
        assert_eq!(r1, r2, "same content, same root");
        assert_ne!(r1, list_root(&store, &list), "domain separation");
        assert_ne!(r1, empty_root());

        // An attribute change flips the tree root (attrs are a column).
        let mut store2 = store.clone();
        store2
            .update(aqua_object::Oid(1), aqua_object::AttrId(1), Value::Int(7))
            .unwrap();
        assert_ne!(tree_root(&store2, &tree), r1);

        // A structural change flips it too (intervals are a column).
        let t2 = tree.remove_subtree(tree.children(tree.root())[1]).unwrap();
        assert_ne!(tree_root(&store, &t2), r1);
    }

    #[test]
    fn override_predicts_post_update_root() {
        let (mut store, tree, _) = fixture();
        let v = Value::Int(7);
        let predicted = merkle_root(&tree_leaves(
            &store,
            &tree,
            Some((aqua_object::Oid(1), 1, &v)),
        ));
        store
            .update(aqua_object::Oid(1), aqua_object::AttrId(1), v.clone())
            .unwrap();
        assert_eq!(predicted, tree_root(&store, &tree));
    }

    #[test]
    fn divergence_localizes_to_the_changed_row() {
        let (store, tree, _) = fixture();
        let a = tree_leaves(&store, &tree, None);
        let v = Value::str("B");
        let b = tree_leaves(&store, &tree, Some((aqua_object::Oid(2), 0, &v)));
        // Oid(2) sits at preorder rank 2 in the fixture tree.
        assert_eq!(first_divergence(&a, &b), Some(2));
        assert_eq!(first_divergence(&a, &a), None);
        assert_eq!(first_divergence(&a, &a[..2]), Some(2));
    }

    #[test]
    fn merkle_fold_shape() {
        let l: Vec<Root> = (0..5u8).map(|i| Root(sha256(&[i]))).collect();
        // Promoting the odd node: root(5 leaves) must differ from
        // root(first 4) and from any reordering.
        let r5 = merkle_root(&l);
        let r4 = merkle_root(&l[..4]);
        assert_ne!(r5, r4);
        let mut swapped = l.clone();
        swapped.swap(0, 1);
        assert_ne!(merkle_root(&swapped), r5);
        assert_eq!(merkle_root(&[]), empty_root());
        assert_eq!(merkle_root(&l[..1]), l[0], "single leaf promotes to root");
    }

    #[test]
    fn hex_round_trip() {
        let r = Root(sha256(b"x"));
        assert_eq!(Root::from_hex(&r.to_hex()), Some(r));
        assert_eq!(Root::from_hex("zz"), None);
        assert_eq!(Root::from_hex(&"a".repeat(63)), None);
    }
}
