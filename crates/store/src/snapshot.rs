//! Checkpoints: atomic, checksummed snapshots of the durable state.
//!
//! A snapshot freezes everything the WAL would otherwise have to
//! replay: the object store (classes + objects in OID order), every
//! named tree and list extent, the registered index specs, and the LSN
//! of the last mutation it covers. Recovery loads the newest valid
//! snapshot and replays only the WAL tail past its LSN.
//!
//! ## File format
//!
//! ```text
//! [magic "AQUASNAP"] [version: u32 LE] [crc: u32 LE] [payload]
//! ```
//!
//! `crc` is [`crc32`] over the payload, so a bit-flipped or truncated
//! snapshot is detected on read and reported as
//! [`StoreError::Corrupt`] — recovery then falls back to an older
//! snapshot or to a full-log replay.
//!
//! Since version 2 the payload ends with a **manifest** of per-extent
//! merkle columns (root + leaf hashes, see [`crate::merkle`]). The CRC
//! guards the *bytes*; the manifest guards the *content*: an
//! authenticated open recomputes every extent's leaves from the decoded
//! state and refuses to serve a snapshot whose rows diverge from what
//! the checkpoint committed — localized to the first divergent row.
//!
//! ## Atomicity
//!
//! [`write_snapshot`] writes to `snap-{lsn}.tmp`, fsyncs, then renames
//! to the final `snap-{lsn:020}.snap` name. A crash mid-checkpoint
//! leaves only a `.tmp` orphan, which readers never consider — a
//! half-written snapshot can never shadow a valid older one.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use aqua_algebra::{List, Tree};
use aqua_guard::failpoint;
use aqua_object::{ClassId, ObjectStore};

use crate::codec::{crc32, Dec, Enc, IndexSpec, WalRecord};
use crate::error::{Result, StoreError};
use crate::merkle::{self, MerkleTree, Root};

/// Failpoint checked before a snapshot file is written; arm it to
/// simulate a crash mid-checkpoint.
pub const SNAPSHOT_WRITE_PROBE: &str = "store.snapshot.write";

/// Failpoint that corrupts the merkle root recorded for the first
/// extent in a snapshot manifest (and the store root bound into WAL
/// frames — see `recovery`): the bytes still checksum clean, so only
/// root verification can catch it. Arm it to prove the detection path
/// fires.
pub const INTEGRITY_CORRUPT_PROBE: &str = "store.integrity.corrupt_root";

/// Leading magic of every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"AQUASNAP";

/// Current snapshot format version (2 = trailing merkle manifest).
pub const SNAP_VERSION: u32 = 2;

/// Extent kind tag in manifests and the store-root fold: tree.
pub const KIND_TREE: u8 = 0x01;
/// Extent kind tag in manifests and the store-root fold: list.
pub const KIND_LIST: u8 = 0x02;

/// One extent's committed merkle column in a snapshot manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentRootEntry {
    /// [`KIND_TREE`] or [`KIND_LIST`].
    pub kind: u8,
    /// The extent's name.
    pub name: String,
    /// Leaf hashes + folded root at checkpoint time.
    pub merkle: MerkleTree,
}

impl ExtentRootEntry {
    /// `"tree:doc"` / `"list:song"` — the spelling
    /// [`StoreError::IntegrityMismatch`] uses.
    pub fn label(&self) -> String {
        let kind = if self.kind == KIND_TREE {
            "tree"
        } else {
            "list"
        };
        format!("{kind}:{}", self.name)
    }
}

/// The per-extent merkle columns a snapshot commits to.
pub type SnapshotManifest = Vec<ExtentRootEntry>;

/// Compute the manifest for `state`: every tree then every list extent,
/// in name order — the same `(kind, name)` order the store root folds.
pub fn compute_manifest(state: &SnapshotState) -> SnapshotManifest {
    let mut out = Vec::with_capacity(state.trees.len() + state.lists.len());
    for (name, tree) in &state.trees {
        out.push(ExtentRootEntry {
            kind: KIND_TREE,
            name: name.clone(),
            merkle: MerkleTree::from_leaves(merkle::tree_leaves(&state.store, tree, None)),
        });
    }
    for (name, list) in &state.lists {
        out.push(ExtentRootEntry {
            kind: KIND_LIST,
            name: name.clone(),
            merkle: MerkleTree::from_leaves(merkle::list_leaves(&state.store, list, None)),
        });
    }
    out
}

/// Fold a manifest into the store root.
pub fn manifest_store_root(manifest: &SnapshotManifest) -> Root {
    merkle::store_root(
        manifest
            .iter()
            .map(|e| (e.kind, e.name.as_str(), e.merkle.root)),
    )
}

/// Verify `state` against the manifest a checkpoint committed to:
/// recompute every extent's leaf column and root and compare. On
/// divergence, the error names the extent and — via
/// [`merkle::first_divergence`] mapped through the interval numbering —
/// the first divergent subtree (trees) or position (lists).
pub fn verify_manifest(state: &SnapshotState, manifest: &SnapshotManifest) -> Result<()> {
    for entry in manifest {
        let recomputed = match entry.kind {
            KIND_TREE => match state.trees.get(&entry.name) {
                Some(t) => merkle::tree_leaves(&state.store, t, None),
                None => Vec::new(),
            },
            _ => match state.lists.get(&entry.name) {
                Some(l) => merkle::list_leaves(&state.store, l, None),
                None => Vec::new(),
            },
        };
        let recomputed_root = merkle::merkle_root(&recomputed);
        if recomputed_root == entry.merkle.root {
            continue;
        }
        let subtree = match merkle::first_divergence(&entry.merkle.leaves, &recomputed) {
            Some(row) if entry.kind == KIND_TREE => match state.trees.get(&entry.name) {
                Some(t) => {
                    let intervals = t.interval_numbering();
                    match t.iter_preorder().nth(row) {
                        Some(n) => {
                            let (pre, post) = intervals[n.index()];
                            format!("preorder {row} interval [{pre},{post}]")
                        }
                        None => format!("preorder {row} (past end of recovered tree)"),
                    }
                }
                None => "missing extent".to_string(),
            },
            Some(row) => format!("position {row}"),
            // Leaves agree but the committed root does not: the root
            // itself was tampered with.
            None => "root".to_string(),
        };
        return Err(StoreError::IntegrityMismatch {
            extent: entry.label(),
            subtree,
            expected: entry.merkle.root.to_hex(),
            actual: recomputed_root.to_hex(),
        });
    }
    Ok(())
}

/// The frozen durable state a snapshot carries.
#[derive(Debug, Clone, Default)]
pub struct SnapshotState {
    /// LSN of the last mutation covered (0 = pristine).
    pub lsn: u64,
    /// The object store: classes and objects.
    pub store: ObjectStore,
    /// Named tree extents.
    pub trees: BTreeMap<String, Tree>,
    /// Named list extents.
    pub lists: BTreeMap<String, List>,
    /// Registered index specs (rebuilt, never serialized).
    pub specs: Vec<IndexSpec>,
}

/// Snapshot file name for a checkpoint at `lsn`.
pub fn snapshot_file_name(lsn: u64) -> String {
    format!("snap-{lsn:020}.snap")
}

/// Parse a snapshot file name back to its LSN.
pub fn snapshot_lsn(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// All snapshots in `dir`, sorted ascending by LSN.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("read_dir", dir.display(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir.display(), e))?;
        if let Some(lsn) = entry.file_name().to_str().and_then(snapshot_lsn) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

fn encode_state(state: &SnapshotState, manifest: &SnapshotManifest) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(state.lsn);
    // Classes, in ClassId order.
    let n_classes = state.store.class_count() as u32;
    enc.u32(n_classes);
    for c in 0..n_classes {
        enc.class_def(state.store.class(ClassId(c)));
    }
    // Objects, in OID order — reinserting in this order reproduces OIDs
    // and extent order exactly.
    enc.u64(state.store.len() as u64);
    for obj in state.store.iter() {
        enc.u32(obj.class().0);
        enc.u32(obj.values().len() as u32);
        for v in obj.values() {
            enc.value(v);
        }
    }
    enc.u32(state.trees.len() as u32);
    for (name, tree) in &state.trees {
        enc.str(name);
        enc.tree(tree);
    }
    enc.u32(state.lists.len() as u32);
    for (name, list) in &state.lists {
        enc.str(name);
        enc.list(list);
    }
    enc.u32(state.specs.len() as u32);
    for spec in &state.specs {
        // Reuse the WAL encoding (tag 11) so there is one codec.
        WalRecord::RegisterIndex { spec: spec.clone() }.encode(&mut enc);
    }
    // Merkle manifest: the content roots this checkpoint commits to.
    enc.u32(manifest.len() as u32);
    for entry in manifest {
        enc.u8(entry.kind);
        enc.str(&entry.name);
        enc.bytes(&entry.merkle.root.0);
        enc.u32(entry.merkle.leaves.len() as u32);
        for leaf in &entry.merkle.leaves {
            enc.bytes(&leaf.0);
        }
    }
    enc.finish()
}

fn decode_state(payload: &[u8], path: &str) -> Result<(SnapshotState, SnapshotManifest)> {
    let mut dec = Dec::new(payload, path);
    let corrupt = |offset: usize, what: String| StoreError::Corrupt {
        path: path.to_owned(),
        offset: offset as u64,
        what,
    };
    let lsn = dec.u64()?;
    let mut store = ObjectStore::new();
    let n_classes = dec.u32()?;
    for _ in 0..n_classes {
        let def = dec.class_def()?;
        store
            .define_class(def)
            .map_err(|e| corrupt(dec.pos(), format!("class replay failed: {e}")))?;
    }
    let n_objects = dec.u64()?;
    for _ in 0..n_objects {
        let class = ClassId(dec.u32()?);
        let n = dec.u32()? as usize;
        if n > u16::MAX as usize {
            return Err(corrupt(dec.pos(), format!("object claims {n} values")));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(dec.value()?);
        }
        store
            .insert(class, row)
            .map_err(|e| corrupt(dec.pos(), format!("object replay failed: {e}")))?;
    }
    let mut trees = BTreeMap::new();
    for _ in 0..dec.u32()? {
        let name = dec.str()?;
        trees.insert(name, dec.tree()?);
    }
    let mut lists = BTreeMap::new();
    for _ in 0..dec.u32()? {
        let name = dec.str()?;
        lists.insert(name, dec.list()?);
    }
    let mut specs = Vec::new();
    for _ in 0..dec.u32()? {
        match WalRecord::decode(&mut dec)? {
            WalRecord::RegisterIndex { spec } => specs.push(spec),
            other => {
                return Err(corrupt(
                    dec.pos(),
                    format!("expected index spec, got {other:?}"),
                ))
            }
        }
    }
    let n_extents = dec.u32()? as usize;
    if n_extents != trees.len() + lists.len() {
        return Err(corrupt(
            dec.pos(),
            format!(
                "manifest covers {n_extents} extents, state has {}",
                trees.len() + lists.len()
            ),
        ));
    }
    let mut manifest = Vec::with_capacity(n_extents);
    for _ in 0..n_extents {
        let kind = dec.u8()?;
        if kind != KIND_TREE && kind != KIND_LIST {
            return Err(corrupt(dec.pos(), format!("unknown extent kind {kind}")));
        }
        let name = dec.str()?;
        let root = Root(dec.bytes(32)?.try_into().unwrap());
        let n_leaves = dec.u32()? as usize;
        if n_leaves > (1 << 24) {
            return Err(corrupt(
                dec.pos(),
                format!("manifest claims {n_leaves} leaves"),
            ));
        }
        let mut leaves = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            leaves.push(Root(dec.bytes(32)?.try_into().unwrap()));
        }
        manifest.push(ExtentRootEntry {
            kind,
            name,
            merkle: MerkleTree { leaves, root },
        });
    }
    if !dec.done() {
        return Err(corrupt(
            dec.pos(),
            "trailing bytes after snapshot state".into(),
        ));
    }
    Ok((
        SnapshotState {
            lsn,
            store,
            trees,
            lists,
            specs,
        },
        manifest,
    ))
}

/// Atomically write a checkpoint of `state` into `dir`; returns the
/// final snapshot path. Write-to-temp + fsync + rename: the final name
/// only ever points at complete, checksummed bytes.
pub fn write_snapshot(dir: &Path, state: &SnapshotState) -> Result<PathBuf> {
    failpoint::check(SNAPSHOT_WRITE_PROBE)?;
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
    let mut manifest = compute_manifest(state);
    if failpoint::check(INTEGRITY_CORRUPT_PROBE).is_err() {
        // Tamper with the first committed root: the file still checksums
        // clean, so only root verification at open can catch this.
        if let Some(entry) = manifest.first_mut() {
            entry.merkle.root.0[0] ^= 0xff;
        }
    }
    let payload = encode_state(state, &manifest);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!("snap-{}.tmp", state.lsn));
    let final_path = dir.join(snapshot_file_name(state.lsn));
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| StoreError::io("create", tmp.display(), e))?;
    f.write_all(&bytes)
        .map_err(|e| StoreError::io("write", tmp.display(), e))?;
    f.sync_data()
        .map_err(|e| StoreError::io("fsync", tmp.display(), e))?;
    drop(f);
    std::fs::rename(&tmp, &final_path)
        .map_err(|e| StoreError::io("rename", final_path.display(), e))?;
    Ok(final_path)
}

/// Read and verify a snapshot file (checksum + decode). Returns the
/// decoded state plus the merkle manifest the checkpoint committed to;
/// *content* verification against the manifest is the caller's choice
/// (see `DurableConfig::authenticate`).
pub fn read_snapshot(path: &Path) -> Result<(SnapshotState, SnapshotManifest)> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io("read", path.display(), e))?;
    let name = path.display().to_string();
    let corrupt = |offset: u64, what: &str| StoreError::Corrupt {
        path: name.clone(),
        offset,
        what: what.to_owned(),
    };
    if bytes.len() < 16 {
        return Err(corrupt(0, "snapshot shorter than its header"));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt(0, "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(corrupt(8, "unsupported snapshot version"));
    }
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(corrupt(12, "checksum mismatch"));
    }
    decode_state(payload, &name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrId, AttrType, ClassDef, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-snap-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_state() -> SnapshotState {
        let mut store = ObjectStore::new();
        store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let a = store
            .insert_named("N", &[("label", Value::str("a"))])
            .unwrap();
        let b = store
            .insert_named("N", &[("label", Value::str("b"))])
            .unwrap();
        let mut trees = BTreeMap::new();
        let mut builder = aqua_algebra::TreeBuilder::new();
        let kid = builder.node(b, vec![]);
        let root = builder.node(a, vec![kid]);
        trees.insert("t".to_string(), builder.finish(root).unwrap());
        let mut lists = BTreeMap::new();
        lists.insert("l".to_string(), List::from_oids([a, b, a]));
        SnapshotState {
            lsn: 9,
            store,
            trees,
            lists,
            specs: vec![IndexSpec::Attr {
                class: ClassId(0),
                attr: AttrId(0),
            }],
        }
    }

    #[test]
    fn round_trip_reproduces_everything() {
        let dir = temp_dir("rt");
        let state = sample_state();
        let path = write_snapshot(&dir, &state).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            snapshot_file_name(9)
        );
        let (back, manifest) = read_snapshot(&path).unwrap();
        assert_eq!(back.lsn, 9);
        assert_eq!(back.store.len(), state.store.len());
        assert_eq!(
            back.store.attr(aqua_object::Oid(0), AttrId(0)),
            &Value::str("a")
        );
        assert_eq!(back.trees["t"], state.trees["t"], "arena-exact tree");
        assert_eq!(back.lists["l"], state.lists["l"]);
        assert_eq!(back.specs, state.specs);
        // The manifest round-trips and verifies against the decoded state.
        assert_eq!(manifest, compute_manifest(&state));
        verify_manifest(&back, &manifest).unwrap();
        // No .tmp orphan after a clean write.
        assert!(list_snapshots(&dir).unwrap().len() == 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_manifest_root_is_localized() {
        let state = sample_state();
        let mut manifest = compute_manifest(&state);
        assert_eq!(manifest.len(), 2, "one tree + one list extent");
        verify_manifest(&state, &manifest).unwrap();

        // Tamper with a single *leaf*: verification names the subtree.
        let mut leafy = manifest.clone();
        leafy[0].merkle.leaves[1].0[0] ^= 0xff;
        leafy[0].merkle.root = merkle::merkle_root(&leafy[0].merkle.leaves);
        let err = verify_manifest(&state, &leafy).unwrap_err();
        match err {
            StoreError::IntegrityMismatch {
                extent, subtree, ..
            } => {
                assert_eq!(extent, "tree:t");
                assert!(subtree.contains("preorder 1"), "{subtree}");
                assert!(subtree.contains("interval"), "{subtree}");
            }
            other => panic!("expected IntegrityMismatch, got {other:?}"),
        }

        // Tamper with only the *root*: leaves agree, so it's the root.
        manifest[1].merkle.root.0[5] ^= 0x10;
        let err = verify_manifest(&state, &manifest).unwrap_err();
        match err {
            StoreError::IntegrityMismatch {
                extent, subtree, ..
            } => {
                assert_eq!(extent, "list:l");
                assert_eq!(subtree, "root");
            }
            other => panic!("expected IntegrityMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_root_failpoint_writes_a_detectably_bad_snapshot() {
        let dir = temp_dir("corrupt-root");
        let state = sample_state();
        let path = {
            let _fp = failpoint::scoped(INTEGRITY_CORRUPT_PROBE, "tamper");
            write_snapshot(&dir, &state).unwrap()
        };
        // The file checksums clean — the CRC can't see the tamper …
        let (back, manifest) = read_snapshot(&path).unwrap();
        // … but root verification can.
        let err = verify_manifest(&back, &manifest).unwrap_err();
        assert!(
            matches!(err, StoreError::IntegrityMismatch { .. }),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let path = write_snapshot(&dir, &sample_state()).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Truncation at every offset.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(StoreError::Corrupt { .. })),
                "truncation to {cut} bytes undetected"
            );
        }
        // A bit flip at every byte.
        for byte in 0..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x04;
            std::fs::write(&path, &flipped).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "bit flip at byte {byte} undetected"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_failpoint_leaves_no_partial_file() {
        let dir = temp_dir("fp");
        let _fp = failpoint::scoped(SNAPSHOT_WRITE_PROBE, "power cut");
        let err = write_snapshot(&dir, &sample_state()).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));
        assert!(list_snapshots(&dir).unwrap().is_empty());
        drop(_fp);
        write_snapshot(&dir, &sample_state()).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
