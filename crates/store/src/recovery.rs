//! Durable extents: the write-ahead-logged store and its recovery path.
//!
//! [`DurableStore`] wraps the in-memory substrate (object store + named
//! tree/list extents + registered index specs) with durability:
//!
//! * every mutation is **validated, then logged, then applied** — the
//!   WAL never contains a record whose replay can fail, and the
//!   in-memory state never runs ahead of the log (which would skew the
//!   deterministic OID/[`NodeId`] assignment on replay);
//! * [`checkpoint`](DurableStore::checkpoint) freezes the state into an
//!   atomic, checksummed snapshot and prunes log segments the snapshot
//!   covers;
//! * [`open`](DurableStore::open) recovers: newest valid snapshot, then
//!   the WAL tail past its LSN, truncating a torn tail at the last
//!   checksum-valid frame and rebuilding every registered index.
//!
//! Recovery is **panic-free and typed**: torn or bit-flipped bytes
//! surface through [`StoreError`] and are *survived* (the valid prefix
//! wins), and what happened is reported as a first-class
//! [`RecoveryReport`] — frames replayed, bytes truncated, indices
//! rebuilt — which [`stamp`](RecoveryReport::stamp)s into the shared
//! metrics registry for observability.
//!
//! The LSN doubles as the store's **mutation epoch**: indices are
//! stamped with the epoch they were built at, and probes against a
//! mutated store fail fast with [`StoreError::StaleIndex`] instead of
//! answering from stale candidates. Because the LSN is durable, epochs
//! are deterministic across crash/recover cycles.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use aqua_algebra::{List, NodeId, Tree};
use aqua_guard::{failpoint, Metrics};
use aqua_object::{AttrId, ClassDef, ClassId, ObjectError, ObjectStore, Oid, Value};

use crate::attr_index::{AttrIndex, TreeNodeIndex};
use crate::codec::{IndexSpec, WalRecord};
use crate::error::{Result, StoreError, TxnError};
use crate::merkle::{self, Root};
use crate::positional::ListPosIndex;
use crate::snapshot::{
    list_snapshots, read_snapshot, verify_manifest, write_snapshot, SnapshotState,
    INTEGRITY_CORRUPT_PROBE, KIND_LIST, KIND_TREE,
};
use crate::structural::StructuralIndex;
use crate::wal::{list_segments, scan_segment, Wal, WalConfig, FRAME_HEADER};

/// Failpoint checked at the top of [`DurableStore::open`]; arm it to
/// simulate a store whose recovery itself fails.
pub const RECOVER_PROBE: &str = "store.recover";

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// WAL segment size before rolling to a new file.
    pub segment_bytes: u64,
    /// Checkpoint automatically every N mutations (0 = manual only).
    pub checkpoint_every: u64,
    /// Prune snapshots and WAL segments a new checkpoint covers.
    pub prune: bool,
    /// Authenticated extents: bind each WAL frame to the post-apply
    /// store root and verify every root (snapshot manifest + frame
    /// claims + a post-replay recompute) on open. Costs O(extent) per
    /// mutation; turn off only for throughput benchmarks that measure
    /// the raw WAL path.
    pub authenticate: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            segment_bytes: 64 * 1024,
            checkpoint_every: 0,
            prune: true,
            authenticate: true,
        }
    }
}

/// What [`DurableStore::open`] found and did. All fields are evidence:
/// a clean shutdown reports zero truncation and zero skipped snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot recovery started from (`None` = full replay).
    pub snapshot_lsn: Option<u64>,
    /// Corrupt snapshots skipped while hunting for a valid one.
    pub snapshots_skipped: u32,
    /// WAL segments scanned.
    pub segments_scanned: u32,
    /// Frames re-applied on top of the snapshot.
    pub frames_replayed: u64,
    /// Torn/corrupt tail bytes discarded (truncated or dropped files).
    pub bytes_truncated: u64,
    /// Whole segments dropped because they followed a torn one.
    pub segments_dropped: u32,
    /// Indices rebuilt from the registered specs.
    pub indices_rebuilt: u32,
    /// The LSN the next mutation will be assigned.
    pub next_lsn: u64,
    /// Root-bound WAL frames whose claimed store root was verified
    /// (0 when `authenticate` is off or the log carried no claims).
    pub roots_verified: u64,
    /// Per-extent verification verdicts: `(extent label, root hex)` for
    /// every extent whose recomputed root matched what was committed.
    /// Empty when `authenticate` is off. A mismatch never appears here —
    /// it fails `open` with [`StoreError::IntegrityMismatch`] instead.
    pub extent_roots: Vec<(String, String)>,
}

impl RecoveryReport {
    /// Whether recovery found no damage at all.
    pub fn clean(&self) -> bool {
        self.snapshots_skipped == 0 && self.bytes_truncated == 0 && self.segments_dropped == 0
    }

    /// Bump the durability counters in `m` with this report's facts.
    pub fn stamp(&self, m: &Metrics) {
        m.recoveries.inc();
        m.recovery_frames_replayed.add(self.frames_replayed);
        m.recovery_bytes_truncated.add(self.bytes_truncated);
        m.recovery_indices_rebuilt.add(self.indices_rebuilt as u64);
        m.integrity_roots_verified.add(self.roots_verified);
    }

    /// Single-line JSON for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut roots = String::from("{");
        for (i, (label, hex)) in self.extent_roots.iter().enumerate() {
            if i > 0 {
                roots.push(',');
            }
            roots.push_str(&format!("\"{label}\":\"{hex}\""));
        }
        roots.push('}');
        format!(
            "{{\"snapshot_lsn\":{},\"snapshots_skipped\":{},\"segments_scanned\":{},\
             \"frames_replayed\":{},\"bytes_truncated\":{},\"segments_dropped\":{},\
             \"indices_rebuilt\":{},\"next_lsn\":{},\"roots_verified\":{},\
             \"extent_roots\":{}}}",
            match self.snapshot_lsn {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            },
            self.snapshots_skipped,
            self.segments_scanned,
            self.frames_replayed,
            self.bytes_truncated,
            self.segments_dropped,
            self.indices_rebuilt,
            self.next_lsn,
            self.roots_verified,
            roots,
        )
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered to lsn {} ({}, {} frames replayed, {} indices rebuilt",
            self.next_lsn.saturating_sub(1),
            match self.snapshot_lsn {
                Some(l) => format!("lsn {l} from snapshot"),
                None => "no snapshot".to_string(),
            },
            self.frames_replayed,
            self.indices_rebuilt,
        )?;
        if !self.extent_roots.is_empty() || self.roots_verified > 0 {
            write!(
                f,
                ", {} frame roots + {} extents verified",
                self.roots_verified,
                self.extent_roots.len()
            )?;
        }
        if self.clean() {
            write!(f, ", clean)")
        } else {
            write!(
                f,
                "; {} bytes truncated, {} segments dropped, {} snapshots skipped)",
                self.bytes_truncated, self.segments_dropped, self.snapshots_skipped
            )
        }
    }
}

/// The access methods rebuilt from the registered [`IndexSpec`]s, all
/// stamped with the epoch they were built at.
#[derive(Debug, Default)]
pub struct RebuiltIndexes {
    attr: Vec<(ClassId, AttrId, AttrIndex)>,
    tree: Vec<(String, TreeNodeIndex)>,
    list: Vec<(String, ListPosIndex)>,
    structural: Vec<(String, StructuralIndex)>,
}

impl RebuiltIndexes {
    fn build(state: &SnapshotState, epoch: u64) -> Result<RebuiltIndexes> {
        let mut ix = RebuiltIndexes::default();
        for spec in &state.specs {
            match spec {
                IndexSpec::Attr { class, attr } => {
                    let idx = AttrIndex::try_build(&state.store, *class, *attr)?.with_epoch(epoch);
                    ix.attr.push((*class, *attr, idx));
                }
                IndexSpec::TreeNode { tree, class, attr } => {
                    let t = state
                        .trees
                        .get(tree)
                        .ok_or_else(|| StoreError::NoSuchExtent {
                            kind: "tree",
                            name: tree.clone(),
                        })?;
                    let idx =
                        TreeNodeIndex::try_build(&state.store, t, *class, *attr)?.with_epoch(epoch);
                    ix.tree.push((tree.clone(), idx));
                }
                IndexSpec::ListPos { list, class, attr } => {
                    let l = state
                        .lists
                        .get(list)
                        .ok_or_else(|| StoreError::NoSuchExtent {
                            kind: "list",
                            name: list.clone(),
                        })?;
                    let idx =
                        ListPosIndex::try_build(&state.store, l, *class, *attr)?.with_epoch(epoch);
                    ix.list.push((list.clone(), idx));
                }
                IndexSpec::Structural { tree } => {
                    let t = state
                        .trees
                        .get(tree)
                        .ok_or_else(|| StoreError::NoSuchExtent {
                            kind: "tree",
                            name: tree.clone(),
                        })?;
                    ix.structural.push((
                        tree.clone(),
                        StructuralIndex::build(t)
                            .with_epoch(epoch)
                            .with_root(merkle::tree_root(&state.store, t)),
                    ));
                }
            }
        }
        Ok(ix)
    }

    /// Total indices held.
    pub fn len(&self) -> usize {
        self.attr.len() + self.tree.len() + self.list.len() + self.structural.len()
    }

    /// Whether no index is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The [`AttrIndex`] over `(class, attr)`, if registered.
    pub fn attr_index(&self, class: ClassId, attr: AttrId) -> Option<&AttrIndex> {
        self.attr
            .iter()
            .find(|(c, a, _)| *c == class && *a == attr)
            .map(|(_, _, i)| i)
    }

    /// The first [`TreeNodeIndex`] over the named tree, if registered.
    pub fn tree_index(&self, tree: &str) -> Option<&TreeNodeIndex> {
        self.tree.iter().find(|(n, _)| n == tree).map(|(_, i)| i)
    }

    /// The first [`ListPosIndex`] over the named list, if registered.
    pub fn list_index(&self, list: &str) -> Option<&ListPosIndex> {
        self.list.iter().find(|(n, _)| n == list).map(|(_, i)| i)
    }

    /// The [`StructuralIndex`] over the named tree, if registered.
    pub fn structural_index(&self, tree: &str) -> Option<&StructuralIndex> {
        self.structural
            .iter()
            .find(|(n, _)| n == tree)
            .map(|(_, i)| i)
    }
}

/// Apply one record to `state`. Shared by the live mutation path (after
/// validation, so it cannot fail there) and by replay (where a failure
/// is wrapped as [`StoreError::Replay`] — it means the log and the code
/// disagree, not that the disk lied; checksums vouch for the bytes).
fn apply(state: &mut SnapshotState, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::DefineClass { def } => {
            state.store.define_class(def.clone())?;
        }
        WalRecord::Insert { class, row } => {
            if class.0 as usize >= state.store.class_count() {
                return Err(StoreError::OutOfBounds {
                    what: "class id",
                    index: class.0 as usize,
                    len: state.store.class_count(),
                });
            }
            state.store.insert(*class, row.clone())?;
        }
        WalRecord::Update { oid, attr, value } => {
            let class = state.store.get(*oid)?.class();
            let arity = state.store.class(class).arity();
            if attr.index() >= arity {
                return Err(StoreError::OutOfBounds {
                    what: "attribute id",
                    index: attr.index(),
                    len: arity,
                });
            }
            state.store.update(*oid, *attr, value.clone())?;
        }
        WalRecord::TreeCreate { name, tree } => {
            state.trees.insert(name.clone(), tree.clone());
        }
        WalRecord::TreeInsertChild {
            name,
            parent,
            index,
            child,
        } => {
            let t = get_tree(state, name)?;
            let nt = t.insert_child(NodeId(*parent), *index as usize, child)?;
            state.trees.insert(name.clone(), nt);
        }
        WalRecord::TreeRemoveSubtree { name, at } => {
            let t = get_tree(state, name)?;
            let nt = t.remove_subtree(NodeId(*at))?;
            state.trees.insert(name.clone(), nt);
        }
        WalRecord::TreeSetOid { name, at, oid } => {
            let t = get_tree(state, name)?;
            let nt = t.set_oid(NodeId(*at), *oid)?;
            state.trees.insert(name.clone(), nt);
        }
        WalRecord::ListCreate { name } => {
            state.lists.insert(name.clone(), List::new());
        }
        WalRecord::ListPush { name, oid } => {
            get_list_mut(state, name)?.push(*oid);
        }
        WalRecord::ListPushHole { name, label } => {
            get_list_mut(state, name)?.push_hole(label.as_str());
        }
        WalRecord::ListRemove { name, index } => {
            let l = get_list_mut(state, name)?;
            let len = l.len();
            l.remove(*index as usize).ok_or(StoreError::OutOfBounds {
                what: "list position",
                index: *index as usize,
                len,
            })?;
        }
        WalRecord::RegisterIndex { spec } => {
            if !state.specs.contains(spec) {
                state.specs.push(spec.clone());
            }
        }
        WalRecord::TreeDrop { name } => {
            get_tree(state, name)?;
            state.trees.remove(name);
            state.specs.retain(|s| !spec_names_tree(s, name));
        }
        WalRecord::ListDrop { name } => {
            get_list_mut(state, name)?;
            state.lists.remove(name);
            state.specs.retain(|s| !spec_names_list(s, name));
        }
        WalRecord::TxnPrepare { .. } | WalRecord::TxnCommit { .. } | WalRecord::TxnAbort { .. } => {
            return Err(txn_record_misrouted())
        }
        WalRecord::RebalanceBegin { .. }
        | WalRecord::RebalanceMoved { .. }
        | WalRecord::RebalanceCommit { .. } => return Err(rebalance_record_misrouted()),
    }
    Ok(())
}

/// Whether a registered spec is scoped to the named tree (and so must
/// leave the registry with it on [`WalRecord::TreeDrop`]).
fn spec_names_tree(spec: &IndexSpec, name: &str) -> bool {
    matches!(spec,
        IndexSpec::TreeNode { tree, .. } | IndexSpec::Structural { tree } if tree == name)
}

/// The list-scoped counterpart of [`spec_names_tree`].
fn spec_names_list(spec: &IndexSpec, name: &str) -> bool {
    matches!(spec, IndexSpec::ListPos { list, .. } if list == name)
}

fn get_tree<'s>(state: &'s SnapshotState, name: &str) -> Result<&'s Tree> {
    state
        .trees
        .get(name)
        .ok_or_else(|| StoreError::NoSuchExtent {
            kind: "tree",
            name: name.to_owned(),
        })
}

fn get_list_mut<'s>(state: &'s mut SnapshotState, name: &str) -> Result<&'s mut List> {
    state
        .lists
        .get_mut(name)
        .ok_or_else(|| StoreError::NoSuchExtent {
            kind: "list",
            name: name.to_owned(),
        })
}

/// Pre-append validation: everything [`apply`] could object to is
/// checked here first, so a record never reaches the WAL unless its
/// replay will succeed.
fn check(state: &SnapshotState, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::DefineClass { def } => {
            if state.store.class_id(def.name()).is_ok() {
                return Err(ObjectError::DuplicateClass {
                    class: def.name().to_owned(),
                }
                .into());
            }
        }
        WalRecord::Insert { class, row } => {
            if class.0 as usize >= state.store.class_count() {
                return Err(StoreError::OutOfBounds {
                    what: "class id",
                    index: class.0 as usize,
                    len: state.store.class_count(),
                });
            }
            state.store.class(*class).check_row(row)?;
        }
        WalRecord::Update { oid, attr, value } => {
            let class = state.store.get(*oid)?.class();
            let def = state.store.class(class);
            if attr.index() >= def.arity() {
                return Err(StoreError::OutOfBounds {
                    what: "attribute id",
                    index: attr.index(),
                    len: def.arity(),
                });
            }
            let decl = &def.attrs()[attr.index()];
            if !decl.ty.admits(value) {
                return Err(ObjectError::TypeMismatch {
                    class: def.name().to_owned(),
                    attr: decl.name.clone(),
                    expected: decl.ty,
                    got: value.type_name(),
                }
                .into());
            }
        }
        WalRecord::TreeCreate { .. } | WalRecord::ListCreate { .. } => {}
        WalRecord::TreeInsertChild { name, parent, .. } => {
            let t = get_tree(state, name)?;
            check_node(t, *parent)?;
        }
        WalRecord::TreeRemoveSubtree { name, at } => {
            let t = get_tree(state, name)?;
            check_node(t, *at)?;
            if NodeId(*at) == t.root() {
                return Err(StoreError::OutOfBounds {
                    what: "removable tree node",
                    index: *at as usize,
                    len: t.len(),
                });
            }
        }
        WalRecord::TreeSetOid { name, at, .. } => {
            check_node(get_tree(state, name)?, *at)?;
        }
        WalRecord::ListPush { name, .. } | WalRecord::ListPushHole { name, .. } => {
            if !state.lists.contains_key(name) {
                return Err(StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                });
            }
        }
        WalRecord::ListRemove { name, index } => {
            let l = state
                .lists
                .get(name)
                .ok_or_else(|| StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                })?;
            if *index as usize >= l.len() {
                return Err(StoreError::OutOfBounds {
                    what: "list position",
                    index: *index as usize,
                    len: l.len(),
                });
            }
        }
        WalRecord::RegisterIndex { spec } => {
            check_spec(state, spec)?;
        }
        WalRecord::TreeDrop { name } => {
            get_tree(state, name)?;
        }
        WalRecord::ListDrop { name } => {
            if !state.lists.contains_key(name) {
                return Err(StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                });
            }
        }
        WalRecord::TxnPrepare { .. } | WalRecord::TxnCommit { .. } | WalRecord::TxnAbort { .. } => {
            return Err(txn_record_misrouted())
        }
        WalRecord::RebalanceBegin { .. }
        | WalRecord::RebalanceMoved { .. }
        | WalRecord::RebalanceCommit { .. } => return Err(rebalance_record_misrouted()),
    }
    Ok(())
}

fn check_node(t: &Tree, at: u32) -> Result<()> {
    if (at as usize) < t.len() {
        Ok(())
    } else {
        Err(StoreError::OutOfBounds {
            what: "tree node",
            index: at as usize,
            len: t.len(),
        })
    }
}

fn check_spec(state: &SnapshotState, spec: &IndexSpec) -> Result<()> {
    let check_class_attr = |class: &ClassId, attr: &AttrId| -> Result<()> {
        crate::attr_index::check_attr(&state.store, *class, *attr)
    };
    match spec {
        IndexSpec::Attr { class, attr } => check_class_attr(class, attr),
        IndexSpec::TreeNode { tree, class, attr } => {
            get_tree(state, tree)?;
            check_class_attr(class, attr)
        }
        IndexSpec::ListPos { list, class, attr } => {
            if !state.lists.contains_key(list) {
                return Err(StoreError::NoSuchExtent {
                    kind: "list",
                    name: list.clone(),
                });
            }
            check_class_attr(class, attr)
        }
        IndexSpec::Structural { tree } => get_tree(state, tree).map(|_| ()),
    }
}

/// Per-extent root cache keyed by `(kind, name)` — `BTreeMap` order is
/// exactly the `(kind, name)` order [`merkle::store_root`] requires.
type RootCache = BTreeMap<(u8, String), Root>;

/// Fold a root cache into the store root.
fn fold_store_root(roots: &RootCache) -> Root {
    merkle::store_root(roots.iter().map(|((k, n), r)| (*k, n.as_str(), *r)))
}

/// The extent a record mutates, in `IntegrityMismatch` spelling
/// (`"store"` for records that touch no single extent).
fn record_extent_label(rec: &WalRecord) -> String {
    match rec {
        WalRecord::TreeCreate { name, .. }
        | WalRecord::TreeInsertChild { name, .. }
        | WalRecord::TreeRemoveSubtree { name, .. }
        | WalRecord::TreeSetOid { name, .. } => format!("tree:{name}"),
        WalRecord::ListCreate { name }
        | WalRecord::ListPush { name, .. }
        | WalRecord::ListPushHole { name, .. }
        | WalRecord::ListRemove { name, .. } => format!("list:{name}"),
        WalRecord::TreeDrop { name } => format!("tree:{name}"),
        WalRecord::ListDrop { name } => format!("list:{name}"),
        _ => "store".to_string(),
    }
}

/// Advance `roots` to what applying `rec` to `state` will make them —
/// *without* mutating `state`. This is what lets the write path bind the
/// post-apply store root into a frame while preserving the
/// validate → log → apply ordering: tree mutations are functional,
/// lists are cloned, attribute updates hash through an
/// [`merkle::AttrOverride`], and an `Insert` rehashes through a store
/// clone (a freshly inserted OID may resolve a dangling reference some
/// extent already holds). Replay uses the *same* function, so writer and
/// recoverer compute identical roots from identical history.
fn advance_roots(state: &SnapshotState, roots: &RootCache, rec: &WalRecord) -> Result<RootCache> {
    let mut out = roots.clone();
    let rehash_all = |out: &mut RootCache, store: &ObjectStore, ov: merkle::AttrOverride<'_>| {
        for (name, t) in &state.trees {
            out.insert(
                (KIND_TREE, name.clone()),
                merkle::merkle_root(&merkle::tree_leaves(store, t, ov)),
            );
        }
        for (name, l) in &state.lists {
            out.insert(
                (KIND_LIST, name.clone()),
                merkle::merkle_root(&merkle::list_leaves(store, l, ov)),
            );
        }
    };
    match rec {
        WalRecord::DefineClass { .. } | WalRecord::RegisterIndex { .. } => {}
        WalRecord::Insert { class, row } => {
            // The new OID may already appear (dangling) in an extent.
            let mut store = state.store.clone();
            store.insert(*class, row.clone())?;
            rehash_all(&mut out, &store, None);
        }
        WalRecord::Update { oid, attr, value } => {
            rehash_all(&mut out, &state.store, Some((*oid, attr.index(), value)));
        }
        WalRecord::TreeCreate { name, tree } => {
            out.insert(
                (KIND_TREE, name.clone()),
                merkle::tree_root(&state.store, tree),
            );
        }
        WalRecord::TreeInsertChild {
            name,
            parent,
            index,
            child,
        } => {
            let nt =
                get_tree(state, name)?.insert_child(NodeId(*parent), *index as usize, child)?;
            out.insert(
                (KIND_TREE, name.clone()),
                merkle::tree_root(&state.store, &nt),
            );
        }
        WalRecord::TreeRemoveSubtree { name, at } => {
            let nt = get_tree(state, name)?.remove_subtree(NodeId(*at))?;
            out.insert(
                (KIND_TREE, name.clone()),
                merkle::tree_root(&state.store, &nt),
            );
        }
        WalRecord::TreeSetOid { name, at, oid } => {
            let nt = get_tree(state, name)?.set_oid(NodeId(*at), *oid)?;
            out.insert(
                (KIND_TREE, name.clone()),
                merkle::tree_root(&state.store, &nt),
            );
        }
        WalRecord::ListCreate { name } => {
            out.insert((KIND_LIST, name.clone()), merkle::empty_root());
        }
        WalRecord::ListPush { name, oid } => {
            let mut l = state
                .lists
                .get(name)
                .ok_or_else(|| StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                })?
                .clone();
            l.push(*oid);
            out.insert(
                (KIND_LIST, name.clone()),
                merkle::list_root(&state.store, &l),
            );
        }
        WalRecord::ListPushHole { name, label } => {
            let mut l = state
                .lists
                .get(name)
                .ok_or_else(|| StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                })?
                .clone();
            l.push_hole(label.as_str());
            out.insert(
                (KIND_LIST, name.clone()),
                merkle::list_root(&state.store, &l),
            );
        }
        WalRecord::ListRemove { name, index } => {
            let mut l = state
                .lists
                .get(name)
                .ok_or_else(|| StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                })?
                .clone();
            let _ = l.remove(*index as usize);
            out.insert(
                (KIND_LIST, name.clone()),
                merkle::list_root(&state.store, &l),
            );
        }
        WalRecord::TreeDrop { name } => {
            get_tree(state, name)?;
            out.remove(&(KIND_TREE, name.clone()));
        }
        WalRecord::ListDrop { name } => {
            if !state.lists.contains_key(name) {
                return Err(StoreError::NoSuchExtent {
                    kind: "list",
                    name: name.clone(),
                });
            }
            out.remove(&(KIND_LIST, name.clone()));
        }
        WalRecord::TxnPrepare { .. } | WalRecord::TxnCommit { .. } | WalRecord::TxnAbort { .. } => {
            return Err(txn_record_misrouted())
        }
        WalRecord::RebalanceBegin { .. }
        | WalRecord::RebalanceMoved { .. }
        | WalRecord::RebalanceCommit { .. } => return Err(rebalance_record_misrouted()),
    }
    Ok(out)
}

/// A prepared-but-undecided transaction buffered on one participant:
/// what a `TxnPrepare` frame carries, parked until the coordinator's
/// outcome arrives (or recovery resolves it by presumption).
#[derive(Debug, Clone)]
pub(crate) struct PendingTxn {
    /// Every participant shard the coordinator enrolled.
    pub participants: Vec<u32>,
    /// The routed records this shard will apply on commit.
    pub records: Vec<WalRecord>,
    /// The post-apply store root the prepare committed to.
    pub root_binding: Root,
}

/// Transaction-protocol records never travel the plain mutation path;
/// one reaching it is a protocol-ordering bug, reported rather than
/// applied.
fn txn_record_misrouted() -> StoreError {
    StoreError::Replay {
        lsn: 0,
        msg: "transaction-protocol record routed to the plain mutation path".to_string(),
    }
}

/// Rebalance-protocol records live only in the migration log
/// (`rebalance.log/`); one in a shard WAL is a writer bug.
fn rebalance_record_misrouted() -> StoreError {
    StoreError::Replay {
        lsn: 0,
        msg: "rebalance-protocol record routed to a shard WAL path".to_string(),
    }
}

/// Replay one transaction-protocol frame (tags 12–14). A prepare parks
/// its buffer without touching `state`; a commit outcome applies the
/// buffer and requires the result to match the prepare's root binding;
/// an abort outcome drops the buffer. Frame-bound root claims verify
/// exactly like plain records.
#[allow(clippy::too_many_arguments)]
fn replay_txn_frame(
    state: &mut SnapshotState,
    roots: &mut RootCache,
    pending: &mut BTreeMap<u64, PendingTxn>,
    outcomes: &mut Vec<(u64, bool)>,
    cfg: &DurableConfig,
    lsn: u64,
    rec: &WalRecord,
    claimed: Option<&Root>,
    report: &mut RecoveryReport,
) -> Result<()> {
    let verify_claim = |roots: &RootCache, report: &mut RecoveryReport| -> Result<()> {
        if let Some(claimed) = claimed {
            let recomputed = fold_store_root(roots);
            if recomputed != *claimed {
                return Err(StoreError::IntegrityMismatch {
                    extent: record_extent_label(rec),
                    subtree: format!("wal frame lsn {lsn}"),
                    expected: claimed.to_hex(),
                    actual: recomputed.to_hex(),
                });
            }
            report.roots_verified += 1;
        }
        Ok(())
    };
    match rec {
        WalRecord::TxnPrepare {
            txn_id,
            participants,
            records,
            root_binding,
        } => {
            // A prepare buffers without applying, so it binds the
            // *unchanged* pre-transaction store root.
            if cfg.authenticate {
                verify_claim(roots, report)?;
            }
            pending.insert(
                *txn_id,
                PendingTxn {
                    participants: participants.clone(),
                    records: records.clone(),
                    root_binding: *root_binding,
                },
            );
        }
        WalRecord::TxnCommit { txn_id } => {
            let p = pending.remove(txn_id).ok_or(StoreError::Replay {
                lsn,
                msg: format!("commit outcome for txn {txn_id} with no pending prepare"),
            })?;
            for r in &p.records {
                if cfg.authenticate {
                    *roots = advance_roots(state, roots, r).map_err(|e| StoreError::Replay {
                        lsn,
                        msg: format!("txn {txn_id} root recompute failed: {e}"),
                    })?;
                }
                apply(state, r).map_err(|e| StoreError::Replay {
                    lsn,
                    msg: format!("txn {txn_id} buffered record failed to apply: {e}"),
                })?;
            }
            if cfg.authenticate {
                let recomputed = fold_store_root(roots);
                if recomputed != p.root_binding {
                    return Err(StoreError::IntegrityMismatch {
                        extent: format!("txn:{txn_id}"),
                        subtree: "prepare root binding".to_string(),
                        expected: p.root_binding.to_hex(),
                        actual: recomputed.to_hex(),
                    });
                }
                verify_claim(roots, report)?;
            }
            outcomes.push((*txn_id, true));
        }
        WalRecord::TxnAbort { txn_id } => {
            pending.remove(txn_id).ok_or(StoreError::Replay {
                lsn,
                msg: format!("abort outcome for txn {txn_id} with no pending prepare"),
            })?;
            if cfg.authenticate {
                verify_claim(roots, report)?;
            }
            outcomes.push((*txn_id, false));
        }
        _ => return Err(txn_record_misrouted()),
    }
    Ok(())
}

/// A write-ahead-logged object store with named tree/list extents,
/// checkpoints, and crash recovery. See the module docs for the
/// ordering and recovery contracts.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    cfg: DurableConfig,
    wal: Wal,
    state: SnapshotState,
    ops_since_checkpoint: u64,
    indexes: RebuiltIndexes,
    metrics: Option<Metrics>,
    /// Per-extent merkle roots, current with `state` (empty when
    /// `cfg.authenticate` is off).
    roots: RootCache,
    /// Prepared transactions awaiting an outcome, keyed by txn id.
    /// Plain mutations and checkpoints are refused while non-empty.
    pending: BTreeMap<u64, PendingTxn>,
    /// Outcomes `(txn_id, committed)` the last `open` replayed from the
    /// WAL — the participant-side evidence the sharded resolution pass
    /// uses to complete a decision the coordinator log lost.
    replayed_outcomes: Vec<(u64, bool)>,
}

impl DurableStore {
    /// Open (and recover) the store in `dir`, creating it if absent.
    ///
    /// Recovery: load the newest snapshot whose checksum verifies
    /// (corrupt ones are skipped and counted), replay WAL frames past
    /// its LSN in strict sequence, truncate a torn tail at the last
    /// valid frame (dropping any orphan segments after it), and rebuild
    /// every registered index at the recovered epoch.
    pub fn open(dir: &Path, cfg: DurableConfig) -> Result<(DurableStore, RecoveryReport)> {
        failpoint::check(RECOVER_PROBE)?;
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
        let mut report = RecoveryReport::default();

        // Newest checksum-valid snapshot; corrupt ones are skipped.
        let mut state = SnapshotState::default();
        let mut roots = RootCache::new();
        for (lsn, path) in list_snapshots(dir)?.iter().rev() {
            match read_snapshot(path) {
                Ok((s, manifest)) => {
                    if cfg.authenticate {
                        // Self-verification, part 1: the decoded state
                        // must match the roots the checkpoint committed
                        // to. A mismatch here is not skippable damage —
                        // the bytes checksum clean, so serving anything
                        // would be serving silently-wrong data.
                        verify_manifest(&s, &manifest)?;
                        roots = manifest
                            .iter()
                            .map(|e| ((e.kind, e.name.clone()), e.merkle.root))
                            .collect();
                    }
                    state = s;
                    report.snapshot_lsn = Some(*lsn);
                    break;
                }
                Err(StoreError::Corrupt { .. }) => report.snapshots_skipped += 1,
                Err(e) => return Err(e),
            }
        }
        let snap_lsn = state.lsn;

        // Segments that can contribute frames past the snapshot: start
        // at the last segment whose first LSN is ≤ snap_lsn + 1. Older
        // segments are never scanned, so a bit flip in history the
        // snapshot already covers cannot cost data.
        let segs = list_segments(dir)?;
        let relevant: &[(u64, PathBuf)] =
            match segs.iter().rposition(|(first, _)| *first <= snap_lsn + 1) {
                Some(i) => &segs[i..],
                None if segs.is_empty() => &[],
                None => {
                    return Err(StoreError::Replay {
                        lsn: snap_lsn + 1,
                        msg: format!(
                            "no WAL segment covers lsn {} (oldest starts at {})",
                            snap_lsn + 1,
                            segs[0].0
                        ),
                    })
                }
            };

        let mut next = snap_lsn + 1;
        let mut pending: BTreeMap<u64, PendingTxn> = BTreeMap::new();
        let mut replayed_outcomes: Vec<(u64, bool)> = Vec::new();
        for (i, (_, path)) in relevant.iter().enumerate() {
            let scan = scan_segment(path)?;
            report.segments_scanned += 1;
            for (lsn, rec, claimed) in &scan.frames {
                if *lsn <= snap_lsn {
                    continue; // covered by the snapshot
                }
                if *lsn != next {
                    return Err(StoreError::Replay {
                        lsn: *lsn,
                        msg: format!("expected lsn {next}, log continues at {lsn}"),
                    });
                }
                if rec.is_txn() {
                    // Transaction frames drive the 2PC state machine
                    // (buffer / apply-buffer / drop-buffer) rather than
                    // the plain apply path.
                    replay_txn_frame(
                        &mut state,
                        &mut roots,
                        &mut pending,
                        &mut replayed_outcomes,
                        &cfg,
                        *lsn,
                        rec,
                        claimed.as_ref(),
                        &mut report,
                    )?;
                    next += 1;
                    report.frames_replayed += 1;
                    continue;
                }
                if cfg.authenticate {
                    // Self-verification, part 2: recompute the store
                    // root this record commits and compare it with the
                    // root the frame bound at write time. Any divergence
                    // in the recovered history — a tampered record, a
                    // tampered snapshot, a tampered claim — breaks the
                    // equality.
                    roots = advance_roots(&state, &roots, rec).map_err(|e| StoreError::Replay {
                        lsn: *lsn,
                        msg: format!("root recompute failed: {e}"),
                    })?;
                    if let Some(claimed) = claimed {
                        let recomputed = fold_store_root(&roots);
                        if recomputed != *claimed {
                            return Err(StoreError::IntegrityMismatch {
                                extent: record_extent_label(rec),
                                subtree: format!("wal frame lsn {lsn}"),
                                expected: claimed.to_hex(),
                                actual: recomputed.to_hex(),
                            });
                        }
                        report.roots_verified += 1;
                    }
                }
                apply(&mut state, rec).map_err(|e| StoreError::Replay {
                    lsn: *lsn,
                    msg: e.to_string(),
                })?;
                next += 1;
                report.frames_replayed += 1;
            }
            if scan.torn() {
                // Truncate the torn tail on disk and drop every later
                // segment: the log is a consistent prefix again.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io("open", path.display(), e))?;
                f.set_len(scan.valid_len)
                    .map_err(|e| StoreError::io("truncate", path.display(), e))?;
                f.sync_data()
                    .map_err(|e| StoreError::io("fsync", path.display(), e))?;
                report.bytes_truncated += scan.file_len - scan.valid_len;
                for (_, later) in &relevant[i + 1..] {
                    if let Ok(meta) = std::fs::metadata(later) {
                        report.bytes_truncated += meta.len();
                    }
                    std::fs::remove_file(later)
                        .map_err(|e| StoreError::io("remove", later.display(), e))?;
                    report.segments_dropped += 1;
                }
                break;
            }
        }

        state.lsn = next - 1;
        report.next_lsn = next;
        if cfg.authenticate {
            // Self-verification, part 3: recompute every extent's root
            // from the *final* recovered state and require it to equal
            // the incrementally tracked value. This closes the chain:
            // final state roots == the roots committed frame by frame.
            for (name, t) in &state.trees {
                let actual = merkle::tree_root(&state.store, t);
                let key = (KIND_TREE, name.clone());
                match roots.get(&key) {
                    Some(r) if *r == actual => {}
                    tracked => {
                        return Err(StoreError::IntegrityMismatch {
                            extent: format!("tree:{name}"),
                            subtree: "post-replay recompute".to_string(),
                            expected: tracked.map(Root::to_hex).unwrap_or_default(),
                            actual: actual.to_hex(),
                        })
                    }
                }
                report
                    .extent_roots
                    .push((format!("tree:{name}"), actual.to_hex()));
            }
            for (name, l) in &state.lists {
                let actual = merkle::list_root(&state.store, l);
                let key = (KIND_LIST, name.clone());
                match roots.get(&key) {
                    Some(r) if *r == actual => {}
                    tracked => {
                        return Err(StoreError::IntegrityMismatch {
                            extent: format!("list:{name}"),
                            subtree: "post-replay recompute".to_string(),
                            expected: tracked.map(Root::to_hex).unwrap_or_default(),
                            actual: actual.to_hex(),
                        })
                    }
                }
                report
                    .extent_roots
                    .push((format!("list:{name}"), actual.to_hex()));
            }
        }
        let indexes = RebuiltIndexes::build(&state, state.lsn)?;
        report.indices_rebuilt = indexes.len() as u32;
        let wal = Wal::open(
            dir,
            next,
            WalConfig {
                segment_bytes: cfg.segment_bytes,
            },
        )?;
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                cfg,
                wal,
                state,
                ops_since_checkpoint: 0,
                indexes,
                metrics: None,
                roots,
                pending,
                replayed_outcomes,
            },
            report,
        ))
    }

    /// Record durability counters (WAL appends, checkpoints) into `m`.
    pub fn set_metrics(&mut self, m: Metrics) {
        self.metrics = Some(m);
    }

    /// The recovered/live object store.
    pub fn store(&self) -> &ObjectStore {
        &self.state.store
    }

    /// A named tree extent.
    pub fn tree(&self, name: &str) -> Option<&Tree> {
        self.state.trees.get(name)
    }

    /// A named list extent.
    pub fn list(&self, name: &str) -> Option<&List> {
        self.state.lists.get(name)
    }

    /// All named tree extents.
    pub fn trees(&self) -> &BTreeMap<String, Tree> {
        &self.state.trees
    }

    /// All named list extents.
    pub fn lists(&self) -> &BTreeMap<String, List> {
        &self.state.lists
    }

    /// The registered index specs.
    pub fn specs(&self) -> &[IndexSpec] {
        &self.state.specs
    }

    /// The rebuilt indices (stamped with the epoch they were built at;
    /// probe them with `Some(self.epoch())` to catch staleness).
    pub fn indexes(&self) -> &RebuiltIndexes {
        &self.indexes
    }

    /// The store's mutation epoch — the LSN of the last applied record.
    pub fn epoch(&self) -> u64 {
        self.state.lsn
    }

    /// Where the store lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this store runs authenticated (root-bound frames).
    pub fn authenticated(&self) -> bool {
        self.cfg.authenticate
    }

    /// The current store root (fold of every extent root). Meaningful
    /// only in authenticated mode; an unauthenticated store folds an
    /// empty cache.
    pub fn store_root(&self) -> Root {
        fold_store_root(&self.roots)
    }

    /// The tracked merkle root of a named tree extent (authenticated
    /// mode only).
    pub fn tree_extent_root(&self, name: &str) -> Option<Root> {
        self.roots.get(&(KIND_TREE, name.to_string())).copied()
    }

    /// The tracked merkle root of a named list extent (authenticated
    /// mode only).
    pub fn list_extent_root(&self, name: &str) -> Option<Root> {
        self.roots.get(&(KIND_LIST, name.to_string())).copied()
    }

    /// Bump the WAL throughput counters for one appended record.
    fn note_append(&self, rec: &WalRecord, root_bound: bool) {
        if let Some(m) = &self.metrics {
            m.wal_appends.inc();
            let root_bytes = if root_bound { 32 } else { 0 };
            m.wal_bytes
                .add((FRAME_HEADER + 8 + rec.to_bytes().len() + root_bytes) as u64);
        }
    }

    /// The oldest prepared-but-undecided transaction, if any — the
    /// guard plain mutations and checkpoints check before proceeding.
    fn oldest_pending(&self) -> Option<u64> {
        self.pending.keys().next().copied()
    }

    fn log_apply(&mut self, rec: WalRecord) -> Result<u64> {
        if rec.is_txn() {
            return Err(txn_record_misrouted());
        }
        if let Some(txn_id) = self.oldest_pending() {
            // A plain mutation between a prepare and its outcome would
            // invalidate the root the prepare bound; the coordinator
            // must resolve first.
            return Err(StoreError::Txn(TxnError::MutationWhilePending { txn_id }));
        }
        check(&self.state, &rec)?;
        // Authenticated mode: compute the post-apply store root *before*
        // logging (predictively, without mutating state — see
        // `advance_roots`) and bind it into the frame, so commit and
        // integrity travel together.
        let (new_roots, bound) = if self.cfg.authenticate {
            let new_roots = advance_roots(&self.state, &self.roots, &rec)?;
            let mut root = fold_store_root(&new_roots);
            if failpoint::check(INTEGRITY_CORRUPT_PROBE).is_err() {
                root.0[0] ^= 0xff;
            }
            (Some(new_roots), Some(root))
        } else {
            (None, None)
        };
        let lsn = self.wal.append_with_root(&rec, bound.as_ref())?;
        self.note_append(&rec, bound.is_some());
        // Validated above: a failure here means check() and apply()
        // disagree, which is a bug worth a typed report, not a panic.
        apply(&mut self.state, &rec).map_err(|e| StoreError::Replay {
            lsn,
            msg: format!("validated record failed to apply: {e}"),
        })?;
        if let Some(new_roots) = new_roots {
            self.roots = new_roots;
        }
        self.state.lsn = lsn;
        self.ops_since_checkpoint += 1;
        if self.cfg.checkpoint_every > 0 && self.ops_since_checkpoint >= self.cfg.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(lsn)
    }

    /// Durably define a class; returns its (deterministic) id.
    pub fn define_class(&mut self, def: ClassDef) -> Result<ClassId> {
        let id = ClassId(self.state.store.class_count() as u32);
        self.log_apply(WalRecord::DefineClass { def })?;
        Ok(id)
    }

    /// Durably insert an object; returns its (deterministic) OID.
    pub fn insert(&mut self, class: ClassId, row: Vec<Value>) -> Result<Oid> {
        let oid = Oid(self.state.store.len() as u64);
        self.log_apply(WalRecord::Insert { class, row })?;
        Ok(oid)
    }

    /// Durably update one stored attribute.
    pub fn update(&mut self, oid: Oid, attr: AttrId, value: Value) -> Result<()> {
        self.log_apply(WalRecord::Update { oid, attr, value })?;
        Ok(())
    }

    /// Durably create (or wholly replace) a named tree extent.
    pub fn create_tree(&mut self, name: &str, tree: Tree) -> Result<()> {
        self.log_apply(WalRecord::TreeCreate {
            name: name.to_owned(),
            tree,
        })?;
        Ok(())
    }

    /// Durably insert `child` under `parent` at `index` in a named tree.
    pub fn tree_insert_child(
        &mut self,
        name: &str,
        parent: NodeId,
        index: usize,
        child: Tree,
    ) -> Result<()> {
        self.log_apply(WalRecord::TreeInsertChild {
            name: name.to_owned(),
            parent: parent.0,
            index: index.min(u32::MAX as usize) as u32,
            child,
        })?;
        Ok(())
    }

    /// Durably remove the subtree rooted at `at` from a named tree.
    pub fn tree_remove_subtree(&mut self, name: &str, at: NodeId) -> Result<()> {
        self.log_apply(WalRecord::TreeRemoveSubtree {
            name: name.to_owned(),
            at: at.0,
        })?;
        Ok(())
    }

    /// Durably point-update the payload OID of one tree node.
    pub fn tree_set_oid(&mut self, name: &str, at: NodeId, oid: Oid) -> Result<()> {
        self.log_apply(WalRecord::TreeSetOid {
            name: name.to_owned(),
            at: at.0,
            oid,
        })?;
        Ok(())
    }

    /// Durably create (or reset) a named list extent.
    pub fn create_list(&mut self, name: &str) -> Result<()> {
        self.log_apply(WalRecord::ListCreate {
            name: name.to_owned(),
        })?;
        Ok(())
    }

    /// Durably append an object to a named list.
    pub fn list_push(&mut self, name: &str, oid: Oid) -> Result<()> {
        self.log_apply(WalRecord::ListPush {
            name: name.to_owned(),
            oid,
        })?;
        Ok(())
    }

    /// Durably append a labeled NULL to a named list.
    pub fn list_push_hole(&mut self, name: &str, label: &str) -> Result<()> {
        self.log_apply(WalRecord::ListPushHole {
            name: name.to_owned(),
            label: label.to_owned(),
        })?;
        Ok(())
    }

    /// Durably remove the element at `index` from a named list.
    pub fn list_remove(&mut self, name: &str, index: usize) -> Result<()> {
        self.log_apply(WalRecord::ListRemove {
            name: name.to_owned(),
            index: index.min(u32::MAX as usize) as u32,
        })?;
        Ok(())
    }

    /// Durably register an index spec (validated against the current
    /// state) and rebuild the indices so the new one is live.
    pub fn register_index(&mut self, spec: IndexSpec) -> Result<()> {
        self.log_apply(WalRecord::RegisterIndex { spec })?;
        self.refresh_indexes()?;
        Ok(())
    }

    /// Rebuild every registered index at the current epoch. Mutations
    /// leave previously-built indices stale (their probes fail with
    /// [`StoreError::StaleIndex`]); call this to make them answer again.
    pub fn refresh_indexes(&mut self) -> Result<u32> {
        self.indexes = RebuiltIndexes::build(&self.state, self.state.lsn)?;
        Ok(self.indexes.len() as u32)
    }

    /// Force the WAL to stable storage without checkpointing.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Transactions prepared on this store but still awaiting an
    /// outcome, sorted by id. Non-empty only between a crash and the
    /// sharded store's resolution pass (or inside a live commit).
    pub fn pending_txns(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// The participant list a pending prepare named.
    pub(crate) fn pending_participants(&self, txn_id: u64) -> Option<&[u32]> {
        self.pending.get(&txn_id).map(|p| p.participants.as_slice())
    }

    /// Outcomes `(txn_id, committed)` the last `open` replayed from the
    /// WAL. An outcome frame in *any* participant's log is durable proof
    /// of the coordinator's decision — the resolution pass uses these to
    /// finish a commit whose coordinator log was lost or corrupted.
    pub fn replayed_txn_outcomes(&self) -> &[(u64, bool)] {
        &self.replayed_outcomes
    }

    /// Phase 1 of two-phase commit: validate the whole buffer against
    /// the current state, compute the post-apply root it would produce,
    /// and append a durable `TxnPrepare` frame — **without applying
    /// anything**. The records stay parked until
    /// [`txn_resolve`](DurableStore::txn_resolve) commits or aborts
    /// them. Returns the bound post-apply root. Validation is stepwise
    /// against a scratch clone, so later records may depend on earlier
    /// ones (an insert's OID pushed to a list).
    pub(crate) fn txn_prepare(
        &mut self,
        txn_id: u64,
        participants: &[u32],
        records: Vec<WalRecord>,
    ) -> Result<Root> {
        if let Some(pending_id) = self.oldest_pending() {
            // One prepared transaction at a time per participant: a
            // second prepare would bind a root the first's outcome is
            // about to change.
            return Err(StoreError::Txn(TxnError::MutationWhilePending {
                txn_id: pending_id,
            }));
        }
        let mut scratch = self.state.clone();
        let mut roots = self.roots.clone();
        for rec in &records {
            if rec.is_txn() {
                return Err(txn_record_misrouted());
            }
            check(&scratch, rec)?;
            if self.cfg.authenticate {
                roots = advance_roots(&scratch, &roots, rec)?;
            }
            apply(&mut scratch, rec).map_err(|e| StoreError::Replay {
                lsn: self.state.lsn,
                msg: format!("validated txn record failed to apply: {e}"),
            })?;
        }
        let binding = fold_store_root(&roots);
        let parked = PendingTxn {
            participants: participants.to_vec(),
            records,
            root_binding: binding,
        };
        let rec = WalRecord::TxnPrepare {
            txn_id,
            participants: parked.participants.clone(),
            records: parked.records.clone(),
            root_binding: binding,
        };
        // The prepare itself applies nothing, so the frame binds the
        // *current* (pre-transaction) store root.
        let bound = self.cfg.authenticate.then(|| self.store_root());
        let lsn = self.wal.append_with_root(&rec, bound.as_ref())?;
        self.note_append(&rec, bound.is_some());
        self.state.lsn = lsn;
        self.pending.insert(txn_id, parked);
        // A prepare is a promise to the coordinator; it must be durable
        // before the decision is logged.
        self.wal.sync()?;
        Ok(binding)
    }

    /// Phase 2 of two-phase commit: apply the decided outcome for a
    /// prepared transaction. Commit re-derives the buffered records'
    /// post-apply roots, verifies them against the prepare's binding (a
    /// mismatch is [`StoreError::IntegrityMismatch`]; the sharded
    /// coordinator reports it as `TxnError::ParticipantDiverged`),
    /// appends a durable `TxnCommit` outcome frame, then applies. Abort
    /// appends a `TxnAbort` frame and drops the buffer untouched.
    pub(crate) fn txn_resolve(&mut self, txn_id: u64, commit: bool) -> Result<()> {
        let p = self
            .pending
            .get(&txn_id)
            .ok_or(StoreError::Txn(TxnError::NoSuchTxn { txn_id }))?;
        if commit {
            let mut scratch = self.state.clone();
            let mut roots = self.roots.clone();
            for rec in &p.records {
                if self.cfg.authenticate {
                    roots = advance_roots(&scratch, &roots, rec)?;
                }
                apply(&mut scratch, rec).map_err(|e| StoreError::Replay {
                    lsn: self.state.lsn,
                    msg: format!("prepared txn {txn_id} record failed to apply: {e}"),
                })?;
            }
            if self.cfg.authenticate {
                let recomputed = fold_store_root(&roots);
                if recomputed != p.root_binding {
                    return Err(StoreError::IntegrityMismatch {
                        extent: format!("txn:{txn_id}"),
                        subtree: "prepare root binding".to_string(),
                        expected: p.root_binding.to_hex(),
                        actual: recomputed.to_hex(),
                    });
                }
            }
            let rec = WalRecord::TxnCommit { txn_id };
            let bound = self.cfg.authenticate.then(|| fold_store_root(&roots));
            let lsn = self.wal.append_with_root(&rec, bound.as_ref())?;
            self.note_append(&rec, bound.is_some());
            scratch.lsn = lsn;
            self.state = scratch;
            self.roots = roots;
        } else {
            let rec = WalRecord::TxnAbort { txn_id };
            let bound = self.cfg.authenticate.then(|| self.store_root());
            let lsn = self.wal.append_with_root(&rec, bound.as_ref())?;
            self.note_append(&rec, bound.is_some());
            self.state.lsn = lsn;
        }
        self.pending.remove(&txn_id);
        self.wal.sync()?;
        self.ops_since_checkpoint += 1;
        if self.cfg.checkpoint_every > 0
            && self.ops_since_checkpoint >= self.cfg.checkpoint_every
            && self.pending.is_empty()
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// One-phase fast path for the sharded coordinator: a routed record
    /// logged and applied like any plain mutation. Returns its LSN.
    pub(crate) fn apply_record(&mut self, rec: WalRecord) -> Result<u64> {
        self.log_apply(rec)
    }

    /// Checkpoint: fsync the WAL, atomically write a snapshot of the
    /// current state, and (if configured) prune snapshots and segments
    /// the new checkpoint covers. Returns the snapshot path.
    ///
    /// Refused while a prepared transaction awaits its outcome: a
    /// snapshot covering the prepare's LSN would strand the outcome
    /// frame with no buffer to resolve against on replay.
    pub fn checkpoint(&mut self) -> Result<PathBuf> {
        if let Some(txn_id) = self.oldest_pending() {
            return Err(StoreError::Txn(TxnError::MutationWhilePending { txn_id }));
        }
        self.wal.sync()?;
        let path = write_snapshot(&self.dir, &self.state)?;
        if let Some(m) = &self.metrics {
            m.snapshots_written.inc();
        }
        self.ops_since_checkpoint = 0;
        if self.cfg.prune {
            self.prune(self.state.lsn)?;
        }
        Ok(path)
    }

    /// Remove snapshots older than `snap_lsn` and WAL segments whose
    /// every frame is ≤ `snap_lsn`. Best-effort: the covering snapshot
    /// plus the remaining log always suffice to recover.
    fn prune(&self, snap_lsn: u64) -> Result<()> {
        for (lsn, path) in list_snapshots(&self.dir)? {
            if lsn < snap_lsn {
                let _ = std::fs::remove_file(path);
            }
        }
        let segs = list_segments(&self.dir)?;
        for w in segs.windows(2) {
            // A segment is covered iff the next segment starts at or
            // before snap_lsn + 1 (so this one's frames all are ≤
            // snap_lsn). The live segment is never in a window's head
            // position with a successor unless it already rotated.
            if w[1].0 <= snap_lsn + 1 && w[0].1 != self.wal.current_segment() {
                let _ = std::fs::remove_file(&w[0].1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{snapshot_lsn, SNAPSHOT_WRITE_PROBE};
    use aqua_algebra::TreeBuilder;
    use aqua_object::{AttrDef, AttrType, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-rec-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn note_class() -> ClassDef {
        ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap()
    }

    /// Define a class, insert a few notes, build a list and a tree.
    fn populate(ds: &mut DurableStore) -> (ClassId, Vec<Oid>) {
        let c = ds.define_class(note_class()).unwrap();
        let mut oids = Vec::new();
        for p in ["G", "A", "A", "F"] {
            oids.push(ds.insert(c, vec![Value::str(p)]).unwrap());
        }
        ds.create_list("song").unwrap();
        for &o in &oids {
            ds.list_push("song", o).unwrap();
        }
        let mut b = TreeBuilder::new();
        let kid = b.node(oids[1], vec![]);
        let root = b.node(oids[0], vec![kid]);
        ds.create_tree("t", b.finish(root).unwrap()).unwrap();
        (c, oids)
    }

    #[test]
    fn reopen_reproduces_state_without_snapshot() {
        let dir = temp_dir("replay");
        let (mut ds, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rep.next_lsn, 1);
        assert!(rep.clean());
        let (c, oids) = populate(&mut ds);
        ds.update(oids[3], AttrId(0), Value::str("E")).unwrap();
        ds.list_remove("song", 0).unwrap();
        let epoch = ds.epoch();
        ds.sync().unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.snapshot_lsn, None);
        assert_eq!(rep.frames_replayed, epoch);
        assert_eq!(back.epoch(), epoch);
        assert_eq!(back.store().len(), 4);
        assert_eq!(back.store().extent(c), &oids[..]);
        assert_eq!(back.store().attr(oids[3], AttrId(0)), &Value::str("E"));
        assert_eq!(back.list("song").unwrap().len(), 3);
        assert_eq!(back.tree("t").unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_tail_replay() {
        let dir = temp_dir("ckpt");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        let ckpt_lsn = ds.epoch();
        ds.checkpoint().unwrap();
        ds.insert(c, vec![Value::str("B")]).unwrap();
        ds.insert(c, vec![Value::str("C")]).unwrap();
        ds.sync().unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rep.snapshot_lsn, Some(ckpt_lsn));
        assert_eq!(rep.frames_replayed, 2, "only the tail past the snapshot");
        assert_eq!(back.store().len(), 6);
        assert!(rep.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = temp_dir("torn");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        ds.insert(c, vec![Value::str("Z")]).unwrap();
        let full_epoch = ds.epoch();
        ds.sync().unwrap();
        drop(ds);

        // Tear mid-way through the last frame.
        let segs = list_segments(&dir).unwrap();
        let (_, tail) = segs.last().unwrap();
        let bytes = std::fs::read(tail).unwrap();
        std::fs::write(tail, &bytes[..bytes.len() - 3]).unwrap();

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(!rep.clean());
        assert!(rep.bytes_truncated > 0);
        assert_eq!(back.epoch(), full_epoch - 1, "last record lost, rest kept");
        assert_eq!(back.store().len(), 4, "the torn insert is gone");

        // The truncation is durable: a further reopen is clean.
        drop(back);
        let (_, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean(), "second recovery found damage: {rep}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn indices_rebuilt_fresh_at_recovered_epoch() {
        let dir = temp_dir("idx");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        ds.register_index(IndexSpec::Attr {
            class: c,
            attr: AttrId(0),
        })
        .unwrap();
        ds.register_index(IndexSpec::ListPos {
            list: "song".into(),
            class: c,
            attr: AttrId(0),
        })
        .unwrap();
        ds.register_index(IndexSpec::Structural { tree: "t".into() })
            .unwrap();
        ds.sync().unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rep.indices_rebuilt, 3);
        let epoch = Some(back.epoch());
        let attr = back.indexes().attr_index(c, AttrId(0)).unwrap();
        assert_eq!(attr.try_lookup(&Value::str("A"), epoch).unwrap().len(), 2);
        let pos = back.indexes().list_index("song").unwrap();
        assert_eq!(pos.try_positions(&Value::str("A"), epoch).unwrap(), &[1, 2]);
        assert!(back.indexes().structural_index("t").is_some());
        // A stale probe (old epoch) is refused.
        assert!(matches!(
            attr.try_lookup(&Value::str("A"), Some(back.epoch() + 1)),
            Err(StoreError::StaleIndex { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_mutations_never_reach_the_wal() {
        let dir = temp_dir("reject");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, oids) = populate(&mut ds);
        let epoch = ds.epoch();

        // Every rejected mutation is a typed error and burns no LSN.
        assert!(matches!(
            ds.insert(ClassId(99), vec![]),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            ds.update(oids[0], AttrId(0), Value::Int(3)),
            Err(StoreError::Object(ObjectError::TypeMismatch { .. }))
        ));
        assert!(matches!(
            ds.list_push("nope", oids[0]),
            Err(StoreError::NoSuchExtent { kind: "list", .. })
        ));
        // Children precede parents in the arena: node 0 is the leaf,
        // node 1 the root. Removing the leaf is legal...
        assert!(matches!(ds.tree_remove_subtree("t", NodeId(0)), Ok(())));
        assert!(matches!(
            ds.tree_remove_subtree("t", NodeId(99)),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            ds.register_index(IndexSpec::Attr {
                class: c,
                attr: AttrId(7)
            }),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert_eq!(ds.epoch(), epoch + 1, "only the valid removal logged");
        ds.sync().unwrap();
        drop(ds);
        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(back.epoch(), epoch + 1, "replay sees only valid records");
        assert!(rep.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_and_prune_keep_recovery_working() {
        let dir = temp_dir("auto");
        let cfg = DurableConfig {
            segment_bytes: 256, // force rotations
            checkpoint_every: 10,
            prune: true,
            authenticate: true,
        };
        let (mut ds, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let c = ds.define_class(note_class()).unwrap();
        ds.create_list("song").unwrap();
        for i in 0..40 {
            let o = ds.insert(c, vec![Value::str(format!("p{i}"))]).unwrap();
            ds.list_push("song", o).unwrap();
        }
        let epoch = ds.epoch();
        assert!(
            !list_snapshots(&dir).unwrap().is_empty(),
            "auto-checkpoint fired"
        );
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, cfg).unwrap();
        assert!(rep.snapshot_lsn.is_some());
        assert_eq!(back.epoch(), epoch);
        assert_eq!(back.store().len(), 40);
        assert_eq!(back.list("song").unwrap().len(), 40);
        assert!(
            rep.frames_replayed < epoch,
            "snapshot spares most of the log"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_skipped_for_an_older_one() {
        let dir = temp_dir("skipsnap");
        let (mut ds, _) = DurableStore::open(
            &dir,
            DurableConfig {
                prune: false,
                ..DurableConfig::default()
            },
        )
        .unwrap();
        let (c, _) = populate(&mut ds);
        ds.checkpoint().unwrap();
        let good_lsn = ds.epoch();
        ds.insert(c, vec![Value::str("X")]).unwrap();
        ds.checkpoint().unwrap();
        ds.sync().unwrap();
        drop(ds);

        // Flip a bit in the newest snapshot.
        let snaps = list_snapshots(&dir).unwrap();
        let (_, newest) = snaps.last().unwrap();
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(newest, &bytes).unwrap();

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rep.snapshots_skipped, 1);
        assert_eq!(rep.snapshot_lsn, Some(good_lsn));
        assert_eq!(back.store().len(), 5, "tail replayed over older snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lsn_gap_is_a_typed_replay_error() {
        let dir = temp_dir("gap");
        let cfg = DurableConfig {
            segment_bytes: 128,
            ..DurableConfig::default()
        };
        let (mut ds, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let c = ds.define_class(note_class()).unwrap();
        for i in 0..30 {
            ds.insert(c, vec![Value::str(format!("p{i}"))]).unwrap();
        }
        drop(ds);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3, "need a middle segment to delete");
        std::fs::remove_file(&segs[1].1).unwrap();
        match DurableStore::open(&dir, cfg) {
            Err(StoreError::Replay { .. }) => {}
            other => panic!("expected Replay error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_probe_and_metrics_stamping() {
        let dir = temp_dir("probe");
        {
            let _fp = failpoint::scoped(RECOVER_PROBE, "recovery blocked");
            assert!(matches!(
                DurableStore::open(&dir, DurableConfig::default()),
                Err(StoreError::Injected { .. })
            ));
        }
        let (mut ds, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let m = Metrics::new();
        rep.stamp(&m);
        ds.set_metrics(m.clone());
        let c = ds.define_class(note_class()).unwrap();
        ds.insert(c, vec![Value::str("A")]).unwrap();
        ds.checkpoint().unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.wal_appends, 2);
        assert!(snap.wal_bytes > 0);
        assert_eq!(snap.snapshots_written, 1);
        assert!(rep.to_json().contains("\"next_lsn\":1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a fault injected at `store.snapshot.write`
    /// fails the checkpoint with a typed error but leaves the previous
    /// snapshot and the WAL fully intact — reopening recovers every
    /// mutation, including those after the failed checkpoint.
    #[test]
    fn failed_checkpoint_loses_nothing() {
        let dir = temp_dir("ckpt-fault");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, oids) = populate(&mut ds);
        let first_snap = ds.checkpoint().unwrap();
        ds.insert(c, vec![Value::str("B")]).unwrap();
        ds.list_push("song", oids[0]).unwrap();
        let epoch = ds.epoch();

        {
            let _fp = failpoint::scoped(SNAPSHOT_WRITE_PROBE, "power cut");
            assert!(matches!(ds.checkpoint(), Err(StoreError::Injected { .. })));
        }
        // The old snapshot survives; no torn `.tmp` remains.
        assert!(first_snap.exists());
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .is_none_or(|x| x != "tmp")));

        drop(ds);
        let (ds, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(ds.epoch(), epoch, "post-checkpoint mutations recovered");
        assert_eq!(
            rep.snapshot_lsn,
            snapshot_lsn(first_snap.file_name().unwrap().to_str().unwrap())
        );
        assert_eq!(ds.store().len(), 5);
        assert_eq!(ds.list("song").unwrap().len(), 5);
        // And the next checkpoint, unfaulted, succeeds.
        let mut ds = ds;
        ds.checkpoint().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A payload byte flipped *and* the CRC recomputed — the classic
    /// attack a checksum cannot catch. The root bound into the frame
    /// was computed from the true record, so replaying the tampered one
    /// diverges and `open` refuses with a typed mismatch naming the
    /// frame.
    #[test]
    fn tampered_frame_with_fixed_crc_fails_integrity() {
        use crate::codec::crc32;
        use crate::wal::FRAME_HEADER;

        let dir = temp_dir("tamper");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        populate(&mut ds);
        ds.sync().unwrap();
        drop(ds);

        // Walk the frames of the only segment; in the one whose record
        // carries the pitch "G" (the first insert), flip that byte to
        // "g" and restore the checksum.
        let segs = list_segments(&dir).unwrap();
        let (_, seg) = segs.last().unwrap();
        let mut bytes = std::fs::read(seg).unwrap();
        let mut pos = 0usize;
        let mut tampered = false;
        while pos + FRAME_HEADER <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let (start, end) = (pos + FRAME_HEADER, pos + FRAME_HEADER + len);
            // Skip the 8-byte LSN; never touch the 32-byte root claim.
            if let Some(i) = bytes[start + 8..end - 32].iter().position(|&b| b == b'G') {
                bytes[start + 8 + i] = b'g';
                let crc = crc32(&bytes[start..end]);
                bytes[pos + 4..pos + 8].copy_from_slice(&crc.to_le_bytes());
                tampered = true;
                break;
            }
            pos = end;
        }
        assert!(tampered, "no frame carried the sentinel byte");
        std::fs::write(seg, &bytes).unwrap();

        match DurableStore::open(&dir, DurableConfig::default()) {
            Err(StoreError::IntegrityMismatch { subtree, .. }) => {
                assert!(subtree.starts_with("wal frame lsn"), "subtree: {subtree}");
            }
            other => panic!("expected IntegrityMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `store.integrity.corrupt_root` failpoint writes a frame whose
    /// bound root lies about the post-apply state; an authenticated
    /// reopen must refuse it.
    #[test]
    fn corrupt_root_failpoint_is_caught_on_reopen() {
        let dir = temp_dir("badroot");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        failpoint::arm_times(INTEGRITY_CORRUPT_PROBE, "tampered root", 1);
        ds.insert(c, vec![Value::str("Z")]).unwrap();
        failpoint::disarm(INTEGRITY_CORRUPT_PROBE);
        ds.sync().unwrap();
        drop(ds);

        match DurableStore::open(&dir, DurableConfig::default()) {
            Err(StoreError::IntegrityMismatch { subtree, .. }) => {
                assert!(subtree.starts_with("wal frame lsn"), "subtree: {subtree}");
            }
            other => panic!("expected IntegrityMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A log written with `authenticate: false` carries no root claims;
    /// an authenticated reopen replays it clean (nothing to check
    /// per-frame) and still recomputes + reports every extent root.
    #[test]
    fn unauthenticated_log_replays_clean_under_authenticated_open() {
        let dir = temp_dir("unauth");
        let plain = DurableConfig {
            authenticate: false,
            ..DurableConfig::default()
        };
        let (mut ds, _) = DurableStore::open(&dir, plain).unwrap();
        populate(&mut ds);
        ds.sync().unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.roots_verified, 0, "no claims to verify");
        assert_eq!(rep.extent_roots.len(), 2, "tree:t and list:song");
        assert!(back.authenticated());
        assert_eq!(
            back.tree_extent_root("t"),
            Some(merkle::tree_root(back.store(), back.tree("t").unwrap()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: recovery across a segment-rotation point verifies the
    /// root claim of every frame on both sides of the boundary.
    #[test]
    fn recovery_spans_a_rotation_point() {
        let dir = temp_dir("rotspan");
        let cfg = DurableConfig {
            segment_bytes: 256,
            ..DurableConfig::default()
        };
        let (mut ds, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let c = ds.define_class(note_class()).unwrap();
        for i in 0..20 {
            ds.insert(c, vec![Value::str(format!("p{i}"))]).unwrap();
        }
        let epoch = ds.epoch();
        ds.sync().unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, cfg).unwrap();
        assert!(rep.clean(), "{rep}");
        assert!(rep.segments_scanned >= 2, "must cross a rotation");
        assert_eq!(rep.frames_replayed, epoch);
        assert_eq!(
            rep.roots_verified, epoch,
            "every frame's claim checked, rotation or not"
        );
        assert_eq!(back.store().len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a bit flip in the *first* frame of a fresh segment
    /// (torn at offset 0) discards that whole segment as a torn tail —
    /// detected, truncated, and durable.
    #[test]
    fn bit_flip_in_first_frame_of_fresh_segment() {
        use crate::wal::FRAME_HEADER;

        let dir = temp_dir("flip0");
        let cfg = DurableConfig {
            segment_bytes: 256,
            ..DurableConfig::default()
        };
        let (mut ds, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let c = ds.define_class(note_class()).unwrap();
        for i in 0..20 {
            ds.insert(c, vec![Value::str(format!("p{i}"))]).unwrap();
        }
        ds.sync().unwrap();
        drop(ds);

        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 2, "need a fresh segment to damage");
        let (first_lsn, tail) = segs.last().unwrap();
        let mut bytes = std::fs::read(tail).unwrap();
        bytes[FRAME_HEADER + 2] ^= 0x01; // payload of frame 0
        std::fs::write(tail, &bytes).unwrap();

        let (back, rep) = DurableStore::open(&dir, cfg.clone()).unwrap();
        assert!(!rep.clean());
        assert!(rep.bytes_truncated > 0);
        assert_eq!(
            back.epoch(),
            first_lsn - 1,
            "everything before the damaged segment survives"
        );
        drop(back);
        let (_, rep) = DurableStore::open(&dir, cfg).unwrap();
        assert!(rep.clean(), "truncation is durable: {rep}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A two-record buffer whose second record depends on the first's
    /// OID: the shape every cross-shard participant sees.
    fn txn_buffer(ds: &DurableStore, c: ClassId) -> Vec<WalRecord> {
        let oid = Oid(ds.store().len() as u64);
        vec![
            WalRecord::Insert {
                class: c,
                row: vec![Value::str("Z")],
            },
            WalRecord::ListPush {
                name: "song".into(),
                oid,
            },
        ]
    }

    #[test]
    fn txn_prepare_buffers_without_applying_then_commit_applies() {
        let dir = temp_dir("txn-commit");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        let len_before = ds.list("song").unwrap().len();
        let root_before = ds.store_root();

        let binding = ds.txn_prepare(1, &[0], txn_buffer(&ds, c)).unwrap();
        assert_ne!(binding, root_before, "binding is the *post*-apply root");
        assert_eq!(
            ds.list("song").unwrap().len(),
            len_before,
            "nothing applied"
        );
        assert_eq!(ds.pending_txns(), vec![1]);
        assert_eq!(ds.pending_participants(1), Some(&[0u32][..]));

        // Plain mutations, checkpoints, and second prepares are refused
        // while the outcome is undecided.
        let e = ds.insert(c, vec![Value::str("X")]).unwrap_err();
        assert!(matches!(
            e,
            StoreError::Txn(TxnError::MutationWhilePending { txn_id: 1 })
        ));
        assert!(ds.checkpoint().is_err());
        assert!(ds.txn_prepare(2, &[0], txn_buffer(&ds, c)).is_err());

        ds.txn_resolve(1, true).unwrap();
        assert_eq!(ds.list("song").unwrap().len(), len_before + 1);
        assert_eq!(
            ds.store_root(),
            binding,
            "commit lands exactly on the binding"
        );
        assert!(ds.pending_txns().is_empty());
        drop(ds);

        // Replay walks the same state machine: prepare parks, commit
        // outcome applies, and every bound root verifies.
        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(back.replayed_txn_outcomes(), &[(1, true)]);
        assert_eq!(back.list("song").unwrap().len(), len_before + 1);
        assert_eq!(back.store_root(), binding);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_prepare_survives_reopen_and_aborts_cleanly() {
        let dir = temp_dir("txn-orphan");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        let len_before = ds.list("song").unwrap().len();
        let root_before = ds.store_root();
        ds.txn_prepare(7, &[0, 2], txn_buffer(&ds, c)).unwrap();
        drop(ds); // crash between prepare and outcome

        let (mut back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(back.pending_txns(), vec![7], "prepare survives the crash");
        assert_eq!(back.pending_participants(7), Some(&[0u32, 2][..]));
        assert_eq!(back.list("song").unwrap().len(), len_before, "not applied");
        assert_eq!(back.store_root(), root_before);

        back.txn_resolve(7, false).unwrap();
        assert!(back.pending_txns().is_empty());
        assert_eq!(back.store_root(), root_before, "abort changes nothing");
        let e = back.txn_resolve(7, false).unwrap_err();
        assert!(matches!(
            e,
            StoreError::Txn(TxnError::NoSuchTxn { txn_id: 7 })
        ));
        drop(back);

        let (again, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(rep.clean(), "{rep}");
        assert_eq!(again.replayed_txn_outcomes(), &[(7, false)]);
        assert_eq!(again.list("song").unwrap().len(), len_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_between_prepare_and_outcome_replays_clean() {
        let dir = temp_dir("txn-rotate");
        let cfg = DurableConfig {
            segment_bytes: 256, // tiny: the prepare frame alone overflows
            ..DurableConfig::default()
        };
        let (mut ds, _) = DurableStore::open(&dir, cfg.clone()).unwrap();
        let (c, _) = populate(&mut ds);
        let seg_at_prepare = ds.wal.current_segment().to_path_buf();
        let fat = vec![
            WalRecord::Insert {
                class: c,
                row: vec![Value::str("Z".repeat(512))],
            },
            WalRecord::ListPush {
                name: "song".into(),
                oid: Oid(ds.store().len() as u64),
            },
        ];
        let binding = ds.txn_prepare(3, &[0], fat).unwrap();
        assert_ne!(
            ds.wal.current_segment(),
            seg_at_prepare,
            "prepare overflowed the segment, so the outcome lands in the next one"
        );
        ds.txn_resolve(3, true).unwrap();
        drop(ds);

        let (back, rep) = DurableStore::open(&dir, cfg).unwrap();
        assert!(rep.clean(), "{rep}");
        assert!(rep.segments_scanned >= 2, "{rep}");
        assert_eq!(back.replayed_txn_outcomes(), &[(3, true)]);
        assert_eq!(back.store_root(), binding);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_outcome_frame_leaves_the_prepare_pending() {
        let dir = temp_dir("txn-torn");
        let (mut ds, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let (c, _) = populate(&mut ds);
        ds.txn_prepare(5, &[0], txn_buffer(&ds, c)).unwrap();
        let prepared_len = std::fs::metadata(ds.wal.current_segment()).unwrap().len();
        ds.txn_resolve(5, true).unwrap();
        let seg = ds.wal.current_segment().to_path_buf();
        drop(ds);

        // Tear the commit outcome frame mid-write: the prepare is the
        // last valid frame again.
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(prepared_len + 3).unwrap();
        drop(f);

        let (back, rep) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(!rep.clean());
        assert_eq!(
            back.pending_txns(),
            vec![5],
            "outcome torn away → pending again"
        );
        assert!(back.replayed_txn_outcomes().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
