//! Cross-shard transactions: the client-side buffer of a
//! coordinator-logged, presumed-abort two-phase commit.
//!
//! A [`ShardTxn`] mirrors the [`ShardedStore`]
//! mutation surface but *buffers* instead of applying: every call
//! routes through the store's [`ShardRouter`] and appends a
//! [`WalRecord`] to the owning participant's buffer. OIDs are predicted
//! from each shard's next-OID counter at
//! [`begin`](ShardTxn::begin)-time, so later records in the buffer can
//! reference objects earlier records will create — the same
//! deterministic assignment the replay path relies on.
//!
//! [`ShardedStore::commit`](crate::ShardedStore::commit) then drives
//! the protocol:
//!
//! 1. **Prepare** — each participant validates its buffer, appends a
//!    durable `TxnPrepare` frame binding the post-apply store root, and
//!    parks the records (applying nothing).
//! 2. **Decide** — one `TxnCommit` decision frame in the coordinator
//!    log (`txn.log/`, same checksummed rotating-segment format as the
//!    shard WALs) makes the outcome durable.
//! 3. **Outcome** — each participant applies its buffer and appends a
//!    `TxnCommit` outcome frame; recovery completes this phase if the
//!    process dies mid-way.
//!
//! A transaction whose participants all collapse to **one shard** skips
//! the protocol entirely: its records take the ordinary one-phase
//! validate → log → apply path, no prepare, no coordinator frame.
//!
//! Crashes are simulated at every phase boundary by the failpoints
//! below ([`TXN_PREPARE_CRASH`], [`TXN_DECIDE_CRASH`],
//! [`TXN_OUTCOME_CRASH`], plus [per-participant](participant_probe)
//! variants): an injected fault propagates with **no cleanup**, exactly
//! like a kill, and the transaction-resolution pass of
//! `ShardedStore::open` must make the store whole again.

use aqua_algebra::{NodeId, Tree};
use aqua_object::{AttrId, ClassId, Oid, Value};
use std::collections::BTreeMap;

use crate::codec::WalRecord;
use crate::shard::{ShardRouter, ShardedStore};

/// Failpoint checked before *each* participant's prepare — arming it
/// simulates a coordinator crash mid-prepare (no decision logged, so
/// recovery presumes abort).
pub const TXN_PREPARE_CRASH: &str = "txn.prepare.crash";

/// Failpoint checked after every prepare succeeded but before the
/// decision frame reaches the coordinator log — the classic 2PC window:
/// all participants are parked, nobody knows the outcome.
pub const TXN_DECIDE_CRASH: &str = "txn.decide.crash";

/// Failpoint checked before *each* participant's outcome application —
/// arming it simulates a crash after the decision was durable but
/// before every participant applied it (recovery must roll forward).
pub const TXN_OUTCOME_CRASH: &str = "txn.outcome.crash";

/// The per-participant spelling of a phase failpoint: arming
/// `participant_probe(TXN_PREPARE_CRASH, 1)` = `"txn.prepare.crash.1"`
/// kills the protocol exactly when it reaches participant 1.
pub fn participant_probe(phase: &str, participant: u32) -> String {
    format!("{phase}.{participant}")
}

/// What [`ShardedStore::commit`](crate::ShardedStore::commit) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnReceipt {
    /// The coordinator-assigned transaction id — `None` when the
    /// transaction collapsed to one shard and took the one-phase fast
    /// path (no prepare, no coordinator frame).
    pub txn_id: Option<u64>,
    /// The participant shards, ascending.
    pub participants: Vec<u32>,
    /// Total records applied across participants.
    pub records: usize,
}

impl TxnReceipt {
    /// Whether the commit skipped the 2PC protocol entirely.
    pub fn fast_path(&self) -> bool {
        self.txn_id.is_none()
    }
}

/// A buffered cross-shard transaction. See the module docs for the
/// protocol; see [`ShardTxn::begin`] for the single-writer contract.
#[derive(Debug, Clone)]
pub struct ShardTxn {
    router: ShardRouter,
    /// Buffered records per participant shard, in program order.
    buffers: BTreeMap<u32, Vec<WalRecord>>,
    /// Predicted next OID per shard: the shard's object count at
    /// `begin`, advanced by every buffered insert.
    next_oid: Vec<u64>,
}

impl ShardTxn {
    /// Start buffering against `store`. The predictions this snapshots
    /// (per-shard next OIDs) stay valid only while the store is not
    /// mutated outside the transaction — the usual single-writer
    /// discipline of `&mut ShardedStore`. A transaction that aborted
    /// cleanly left the store untouched, so the same `ShardTxn` can be
    /// retried as-is.
    pub fn begin(store: &ShardedStore) -> ShardTxn {
        ShardTxn {
            router: *store.router(),
            buffers: BTreeMap::new(),
            next_oid: store
                .shards()
                .iter()
                .map(|s| s.store().len() as u64)
                .collect(),
        }
    }

    /// The participant shards buffered so far, ascending.
    pub fn participants(&self) -> Vec<u32> {
        self.buffers.keys().copied().collect()
    }

    /// The records buffered for one participant (empty if none).
    pub fn records_for(&self, shard: u32) -> &[WalRecord] {
        self.buffers.get(&shard).map_or(&[], Vec::as_slice)
    }

    /// Total records buffered across participants.
    pub fn len(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    fn push(&mut self, shard: u32, rec: WalRecord) {
        self.buffers.entry(shard).or_default().push(rec);
    }

    /// Buffer an object insert into the shard owning `owner`. Returns
    /// the `(shard, oid)` the insert *will* produce on commit —
    /// deterministic OID assignment makes the prediction exact.
    pub fn insert(&mut self, owner: &str, class: ClassId, row: Vec<Value>) -> (usize, Oid) {
        let sh = self.router.route_name(owner) as u32;
        let oid = Oid(self.next_oid[sh as usize]);
        self.next_oid[sh as usize] += 1;
        self.push(sh, WalRecord::Insert { class, row });
        (sh as usize, oid)
    }

    /// Buffer an attribute update on the shard owning `owner` (OIDs are
    /// shard-local, so the owning path names the shard).
    pub fn update(&mut self, owner: &str, oid: Oid, attr: AttrId, value: Value) {
        let sh = self.router.route_name(owner) as u32;
        self.push(sh, WalRecord::Update { oid, attr, value });
    }

    /// Buffer creating (or wholly replacing) a tree extent.
    pub fn create_tree(&mut self, name: &str, tree: Tree) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::TreeCreate {
                name: name.to_owned(),
                tree,
            },
        );
    }

    /// Buffer inserting `child` under `parent` at `index` in a tree.
    pub fn tree_insert_child(&mut self, name: &str, parent: NodeId, index: usize, child: Tree) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::TreeInsertChild {
                name: name.to_owned(),
                parent: parent.0,
                index: index.min(u32::MAX as usize) as u32,
                child,
            },
        );
    }

    /// Buffer removing the subtree rooted at `at` from a tree.
    pub fn tree_remove_subtree(&mut self, name: &str, at: NodeId) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::TreeRemoveSubtree {
                name: name.to_owned(),
                at: at.0,
            },
        );
    }

    /// Buffer point-updating one tree node's payload OID.
    pub fn tree_set_oid(&mut self, name: &str, at: NodeId, oid: Oid) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::TreeSetOid {
                name: name.to_owned(),
                at: at.0,
                oid,
            },
        );
    }

    /// Buffer creating (or resetting) a list extent.
    pub fn create_list(&mut self, name: &str) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::ListCreate {
                name: name.to_owned(),
            },
        );
    }

    /// Buffer appending an object to a list.
    pub fn list_push(&mut self, name: &str, oid: Oid) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::ListPush {
                name: name.to_owned(),
                oid,
            },
        );
    }

    /// Buffer appending a labeled NULL to a list.
    pub fn list_push_hole(&mut self, name: &str, label: &str) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::ListPushHole {
                name: name.to_owned(),
                label: label.to_owned(),
            },
        );
    }

    /// Buffer removing the element at `index` from a list.
    pub fn list_remove(&mut self, name: &str, index: usize) {
        let sh = self.router.route_name(name) as u32;
        self.push(
            sh,
            WalRecord::ListRemove {
                name: name.to_owned(),
                index: index.min(u32::MAX as usize) as u32,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedConfig;
    use aqua_object::{AttrDef, AttrType, ClassDef};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-txn-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn buffers_route_like_the_store_and_predict_oids() {
        let dir = temp_dir("route");
        let (mut ss, _) = ShardedStore::open(&dir, ShardedConfig::with_shards(4)).unwrap();
        let class = ss
            .define_class(
                ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        // Pre-populate one shard so predictions start past zero.
        ss.create_list("p0/song").unwrap();
        let (warm, _) = ss.insert("p0/song", class, vec![Value::str("E")]).unwrap();

        let mut txn = ShardTxn::begin(&ss);
        assert!(txn.is_empty());
        let (sh, oid) = txn.insert("p0/song", class, vec![Value::str("F")]);
        assert_eq!(sh, ss.shard_of("p0/song"));
        assert_eq!(
            oid.0,
            ss.shard(sh).store().len() as u64,
            "prediction = the shard's next OID"
        );
        txn.list_push("p0/song", oid);
        let (_, oid2) = txn.insert("p0/song", class, vec![Value::str("G")]);
        assert_eq!(oid2.0, oid.0 + 1, "predictions advance per buffered insert");

        txn.create_list("p1/song");
        assert_eq!(txn.len(), 4);
        let parts = txn.participants();
        assert_eq!(
            parts.len(),
            if sh == ss.shard_of("p1/song") { 1 } else { 2 }
        );
        assert_eq!(txn.records_for(sh as u32).len(), 3);
        let _ = warm;
        let _ = std::fs::remove_dir_all(&dir);
    }
}
