//! Append-only write-ahead log of extent mutations.
//!
//! The WAL is *logical*: each frame carries one [`WalRecord`] naming an
//! operation (insert this row, remove that subtree), and replaying the
//! frames through the same code paths that served the original
//! mutations reproduces the state exactly — including OID and
//! [`NodeId`](aqua_algebra::NodeId) assignment, which are deterministic.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload = [lsn: u64 LE] [record: WalRecord encoding] [root: 32 bytes]?
//! ```
//!
//! The optional trailing `root` is the **post-apply store root** (see
//! [`crate::merkle`]): when the store runs authenticated, every commit
//! binds the state it produced, and recovery re-derives and compares
//! the roots instead of trusting replay blindly. A frame either ends
//! exactly after its record (unauthenticated) or carries exactly 32
//! more bytes; anything else in a checksum-valid frame is corruption.
//!
//! `crc` is [`crc32`] over the payload. A torn write — the tail of the
//! last frame missing after a crash — shows up as a short header, a
//! length past end-of-file, or a checksum mismatch, and the scanner
//! reports the valid prefix so recovery can truncate there
//! ([`SegmentScan`]). Frames are capped at [`MAX_FRAME`] bytes so a
//! corrupted length field can never drive a giant allocation.
//!
//! ## Segments
//!
//! The log is a directory of segment files named `wal-{first_lsn:020}.log`
//! (zero-padded so lexicographic order is LSN order). Appends roll to a
//! new segment once the current one passes the configured size;
//! checkpointing prunes segments wholly covered by a snapshot.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use aqua_guard::failpoint;

use crate::codec::{crc32, Dec, Enc, WalRecord};
use crate::error::{Result, StoreError};
use crate::merkle::Root;

/// Failpoint checked on every WAL append and sync; arm it to simulate a
/// full disk or a failing fsync.
pub const WAL_APPEND_PROBE: &str = "store.wal.append";

/// Bytes of frame header preceding the payload (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame's payload. A length field beyond this
/// is treated as corruption, never allocated.
pub const MAX_FRAME: u32 = 1 << 26; // 64 MiB

/// Tuning for the log writer.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Roll to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 64 * 1024,
        }
    }
}

/// Segment file name for the segment whose first frame is `first_lsn`.
pub fn segment_file_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:020}.log")
}

/// Parse a segment file name back to its first LSN.
pub fn segment_first_lsn(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// All WAL segments in `dir`, sorted ascending by first LSN.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("read_dir", dir.display(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir.display(), e))?;
        if let Some(lsn) = entry.file_name().to_str().and_then(segment_first_lsn) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// The append side of the log. One live segment file at a time; frames
/// carry consecutive LSNs starting from the `next_lsn` the writer was
/// opened with.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    seg_path: PathBuf,
    seg_len: u64,
    next_lsn: u64,
    cfg: WalConfig,
}

impl Wal {
    /// Open a writer in `dir` whose next frame will carry `next_lsn`.
    /// Appends to the segment named for `next_lsn` if one exists (a
    /// reopen with no intervening writes), otherwise creates it.
    pub fn open(dir: &Path, next_lsn: u64, cfg: WalConfig) -> Result<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir.display(), e))?;
        let seg_path = dir.join(segment_file_name(next_lsn));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(|e| StoreError::io("open", seg_path.display(), e))?;
        let seg_len = file
            .metadata()
            .map_err(|e| StoreError::io("stat", seg_path.display(), e))?
            .len();
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            seg_path,
            seg_len,
            next_lsn,
            cfg,
        })
    }

    /// The LSN the next append will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Path of the segment currently being appended to.
    pub fn current_segment(&self) -> &Path {
        &self.seg_path
    }

    /// Append one record; returns its LSN. The frame is written and
    /// flushed (but not fsynced — see [`Wal::sync`]) before the LSN is
    /// handed out, preserving WAL-before-apply ordering for callers.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        self.append_with_root(rec, None)
    }

    /// [`append`](Self::append) with the post-apply store root bound
    /// into the frame (authenticated mode).
    pub fn append_with_root(&mut self, rec: &WalRecord, root: Option<&Root>) -> Result<u64> {
        failpoint::check(WAL_APPEND_PROBE)?;
        let lsn = self.next_lsn;
        let mut enc = Enc::new();
        enc.u64(lsn);
        rec.encode(&mut enc);
        let mut payload = enc.finish();
        if let Some(r) = root {
            payload.extend_from_slice(&r.0);
        }
        debug_assert!(payload.len() <= MAX_FRAME as usize);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append", self.seg_path.display(), e))?;
        self.seg_len += frame.len() as u64;
        self.next_lsn = lsn + 1;
        if self.seg_len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(lsn)
    }

    /// Force the current segment to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        failpoint::check(WAL_APPEND_PROBE)?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync", self.seg_path.display(), e))
    }

    fn rotate(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync", self.seg_path.display(), e))?;
        let seg_path = self.dir.join(segment_file_name(self.next_lsn));
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(|e| StoreError::io("open", seg_path.display(), e))?;
        self.seg_path = seg_path;
        self.seg_len = 0;
        Ok(())
    }
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Checksum-valid frames, in file order: LSN, record, and the
    /// post-apply store root when the writer ran authenticated.
    pub frames: Vec<(u64, WalRecord, Option<Root>)>,
    /// Length of the valid prefix. Bytes past this are a torn tail.
    pub valid_len: u64,
    /// Total file length.
    pub file_len: u64,
}

impl SegmentScan {
    /// Whether the file carried bytes beyond the last valid frame.
    pub fn torn(&self) -> bool {
        self.valid_len < self.file_len
    }
}

/// Scan a segment, stopping at the first torn or checksum-failing
/// frame. A frame whose checksum passes but whose record does not
/// decode is *not* a torn tail — the checksum vouches for the bytes, so
/// the writer produced garbage — and surfaces as
/// [`StoreError::Corrupt`].
pub fn scan_segment(path: &Path) -> Result<SegmentScan> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io("read", path.display(), e))?;
    let name = path.display().to_string();
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = bytes.len() - pos;
        if rest == 0 {
            break;
        }
        if rest < FRAME_HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if !(8..=MAX_FRAME).contains(&len) || (len as usize) > rest - FRAME_HEADER {
            break; // insane or torn length
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len as usize];
        if crc32(payload) != crc {
            break; // torn or bit-flipped payload
        }
        let mut dec = Dec::new(payload, &name);
        let lsn = dec.u64()?;
        let rec = WalRecord::decode(&mut dec)?;
        // A frame ends exactly at its record, or carries a 32-byte
        // post-apply root. Any other tail in a checksummed frame means
        // the writer produced garbage.
        let rest = &payload[dec.pos()..];
        let root = match rest.len() {
            0 => None,
            32 => Some(Root(rest.try_into().expect("length checked"))),
            _ => {
                let offset = (pos + FRAME_HEADER + dec.pos()) as u64;
                return Err(StoreError::Corrupt {
                    path: name,
                    offset,
                    what: "trailing bytes after record in checksummed frame".into(),
                });
            }
        };
        frames.push((lsn, rec, root));
        pos += FRAME_HEADER + len as usize;
    }
    Ok(SegmentScan {
        frames,
        valid_len: pos as u64,
        file_len: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::Oid;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "aqua-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn push(name: &str, oid: u64) -> WalRecord {
        WalRecord::ListPush {
            name: name.into(),
            oid: Oid(oid),
        }
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_dir("rt");
        let mut wal = Wal::open(&dir, 1, WalConfig::default()).unwrap();
        for i in 0..5 {
            assert_eq!(wal.append(&push("l", i)).unwrap(), i + 1);
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        let scan = scan_segment(&segs[0].1).unwrap();
        assert_eq!(scan.frames.len(), 5);
        assert!(!scan.torn());
        assert_eq!(scan.frames[0].0, 1);
        assert_eq!(scan.frames[4], (5, push("l", 4), None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_sort() {
        let dir = temp_dir("rot");
        let mut wal = Wal::open(&dir, 1, WalConfig { segment_bytes: 64 }).unwrap();
        for i in 0..20 {
            wal.append(&push("l", i)).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 1, "small segment size must rotate");
        // Contiguous LSNs across segments, in listing order.
        let mut expect = 1u64;
        for (first, path) in &segs {
            let scan = scan_segment(path).unwrap();
            if let Some((lsn, _, _)) = scan.frames.first() {
                assert_eq!(*lsn, *first, "segment named for its first LSN");
            }
            for (lsn, _, _) in scan.frames {
                assert_eq!(lsn, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, 21);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(&dir, 1, WalConfig::default()).unwrap();
        for i in 0..4 {
            wal.append(&push("l", i)).unwrap();
        }
        drop(wal);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let full = std::fs::read(path).unwrap();
        // Every possible kill offset leaves a clean valid prefix.
        for cut in 0..full.len() {
            std::fs::write(path, &full[..cut]).unwrap();
            let scan = scan_segment(path).unwrap();
            assert!(scan.valid_len <= cut as u64);
            for (i, (lsn, rec, _)) in scan.frames.iter().enumerate() {
                assert_eq!(*lsn, i as u64 + 1);
                assert_eq!(rec, &push("l", i as u64));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let dir = temp_dir("flip");
        let mut wal = Wal::open(&dir, 1, WalConfig::default()).unwrap();
        for i in 0..3 {
            wal.append(&push("l", i)).unwrap();
        }
        drop(wal);
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let full = std::fs::read(path).unwrap();
        for byte in 0..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x10;
            std::fs::write(path, &flipped).unwrap();
            let scan = scan_segment(path).unwrap();
            // The flip lands in some frame; every frame before it is intact.
            assert!(scan.frames.len() < 3, "flip at byte {byte} undetected");
            for (i, (lsn, rec, _)) in scan.frames.iter().enumerate() {
                assert_eq!(*lsn, i as u64 + 1);
                assert_eq!(rec, &push("l", i as u64));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn root_bound_frames_round_trip() {
        let dir = temp_dir("root");
        let mut wal = Wal::open(&dir, 1, WalConfig::default()).unwrap();
        let r0 = Root(crate::merkle::sha256(b"state-0"));
        let r1 = Root(crate::merkle::sha256(b"state-1"));
        wal.append_with_root(&push("l", 0), Some(&r0)).unwrap();
        wal.append(&push("l", 1)).unwrap(); // unauthenticated frame mixes fine
        wal.append_with_root(&push("l", 2), Some(&r1)).unwrap();
        wal.sync().unwrap();
        let scan = scan_segment(&list_segments(&dir).unwrap()[0].1).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].2, Some(r0));
        assert_eq!(scan.frames[1].2, None);
        assert_eq!(scan.frames[2].2, Some(r1));
        assert!(!scan.torn());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A record whose frame lands *exactly* on the segment cap must
    /// rotate cleanly: the full frame stays in the old segment, the
    /// next frame opens the new one, and nothing is torn.
    #[test]
    fn record_landing_exactly_at_segment_cap_rotates_cleanly() {
        // Measure one frame, then set the cap to a whole number of them.
        let probe_dir = temp_dir("cap-probe");
        let mut wal = Wal::open(&probe_dir, 1, WalConfig::default()).unwrap();
        wal.append(&push("l", 0)).unwrap();
        wal.sync().unwrap();
        let frame_len = std::fs::metadata(&list_segments(&probe_dir).unwrap()[0].1)
            .unwrap()
            .len();
        let _ = std::fs::remove_dir_all(&probe_dir);

        let dir = temp_dir("cap");
        let cfg = WalConfig {
            segment_bytes: 3 * frame_len,
        };
        let mut wal = Wal::open(&dir, 1, cfg).unwrap();
        for i in 0..7 {
            wal.append(&push("l", i)).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 3, "7 frames at 3 per segment: 3+3+1");
        assert_eq!(segs[0].0, 1);
        assert_eq!(segs[1].0, 4, "rotation happened exactly at the cap");
        assert_eq!(segs[2].0, 7);
        let first = scan_segment(&segs[0].1).unwrap();
        assert_eq!(first.frames.len(), 3);
        assert!(!first.torn(), "the boundary frame is whole, not split");
        assert_eq!(
            std::fs::metadata(&segs[0].1).unwrap().len(),
            3 * frame_len,
            "old segment closed exactly at the cap"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_failpoint_fails_append_typed() {
        let dir = temp_dir("fp");
        let mut wal = Wal::open(&dir, 1, WalConfig::default()).unwrap();
        let _fp = failpoint::scoped(WAL_APPEND_PROBE, "disk full");
        let err = wal.append(&push("l", 0)).unwrap_err();
        assert!(matches!(err, StoreError::Injected { .. }));
        drop(_fp);
        assert_eq!(wal.append(&push("l", 0)).unwrap(), 1, "lsn not burned");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
