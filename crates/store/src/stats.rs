//! Column statistics for the cost model.
//!
//! The optimizer (see `aqua-optimizer`) chooses between a full pattern
//! scan and an index-probe rewrite using estimated selectivities; these
//! are the classic per-attribute statistics: row count, distinct values,
//! and per-value frequencies (an exact histogram — the substrate is
//! in-memory, so exactness is cheap).

use std::collections::BTreeMap;

use aqua_object::{AttrId, ClassId, ObjectStore, Value};
use aqua_pattern::{CmpOp, PredExpr};

use crate::attr_index::OrdValue;

/// Exact statistics for one stored attribute of one class.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    class: ClassId,
    attr: AttrId,
    attr_name: String,
    total: usize,
    counts: BTreeMap<OrdValue, usize>,
}

impl ColumnStats {
    /// Collect over the current extent.
    pub fn build(store: &ObjectStore, class: ClassId, attr: AttrId) -> ColumnStats {
        let mut counts: BTreeMap<OrdValue, usize> = BTreeMap::new();
        for &oid in store.extent(class) {
            *counts
                .entry(OrdValue(store.attr(oid, attr).clone()))
                .or_default() += 1;
        }
        let attr_name = store.class(class).attrs()[attr.index()].name.clone();
        ColumnStats {
            class,
            attr,
            attr_name,
            total: store.extent(class).len(),
            counts,
        }
    }

    /// The class these statistics describe.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The attribute these statistics describe.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Extent size at collection time.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact frequency of one value.
    pub fn frequency(&self, v: &Value) -> usize {
        self.counts.get(&OrdValue(v.clone())).copied().unwrap_or(0)
    }

    /// Fraction of rows satisfying `attr op v` (exact, from the
    /// histogram).
    pub fn cmp_selectivity(&self, op: CmpOp, v: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let key = OrdValue(v.clone());
        let matching: usize = self
            .counts
            .iter()
            .filter(|(k, _)| match op {
                CmpOp::Eq => **k == key,
                CmpOp::Ne => **k != key && k.0.try_cmp(v).is_some(),
                _ => {
                    k.0.try_cmp(v)
                        .map(|ord| match op {
                            CmpOp::Lt => ord.is_lt(),
                            CmpOp::Le => ord.is_le(),
                            CmpOp::Gt => ord.is_gt(),
                            CmpOp::Ge => ord.is_ge(),
                            CmpOp::Eq | CmpOp::Ne => unreachable!(),
                        })
                        .unwrap_or(false)
                }
            })
            .map(|(_, c)| *c)
            .sum();
        matching as f64 / self.total as f64
    }

    /// Estimated selectivity of an alphabet-predicate over this
    /// attribute. Comparisons on this attribute are exact; comparisons
    /// on *other* attributes fall back to the classic 1/3 guess;
    /// conjunction multiplies, disjunction adds (capped), negation
    /// complements — the standard System-R style composition.
    pub fn selectivity(&self, p: &PredExpr) -> f64 {
        match p {
            PredExpr::True => 1.0,
            PredExpr::Cmp { attr, op, constant } => {
                if *attr == self.attr_name {
                    self.cmp_selectivity(*op, constant)
                } else {
                    1.0 / 3.0
                }
            }
            PredExpr::And(a, b) => self.selectivity(a) * self.selectivity(b),
            PredExpr::Or(a, b) => (self.selectivity(a) + self.selectivity(b)).min(1.0),
            PredExpr::Not(a) => 1.0 - self.selectivity(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ClassDef};

    fn setup() -> (ObjectStore, ClassId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(ClassDef::new("P", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        // values: 0 ×5, 1 ×3, 2 ×2
        for (v, n) in [(0, 5), (1, 3), (2, 2)] {
            for _ in 0..n {
                s.insert_named("P", &[("v", Value::Int(v))]).unwrap();
            }
        }
        (s, c)
    }

    #[test]
    fn exact_frequencies() {
        let (s, c) = setup();
        let st = ColumnStats::build(&s, c, AttrId(0));
        assert_eq!(st.total(), 10);
        assert_eq!(st.distinct(), 3);
        assert_eq!(st.frequency(&Value::Int(0)), 5);
        assert_eq!(st.frequency(&Value::Int(9)), 0);
    }

    #[test]
    fn cmp_selectivities() {
        let (s, c) = setup();
        let st = ColumnStats::build(&s, c, AttrId(0));
        assert!((st.cmp_selectivity(CmpOp::Eq, &Value::Int(1)) - 0.3).abs() < 1e-9);
        assert!((st.cmp_selectivity(CmpOp::Lt, &Value::Int(2)) - 0.8).abs() < 1e-9);
        assert!((st.cmp_selectivity(CmpOp::Ne, &Value::Int(0)) - 0.5).abs() < 1e-9);
        assert!((st.cmp_selectivity(CmpOp::Ge, &Value::Int(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicate_composition() {
        let (s, c) = setup();
        let st = ColumnStats::build(&s, c, AttrId(0));
        let p = PredExpr::eq("v", 0).and(PredExpr::eq("v", 1));
        assert!((st.selectivity(&p) - 0.15).abs() < 1e-9);
        let q = PredExpr::eq("v", 0).or(PredExpr::eq("v", 1));
        assert!((st.selectivity(&q) - 0.8).abs() < 1e-9);
        let n = PredExpr::eq("v", 0).not();
        assert!((st.selectivity(&n) - 0.5).abs() < 1e-9);
        assert!((st.selectivity(&PredExpr::True) - 1.0).abs() < 1e-9);
        // Unknown attribute → 1/3 default.
        let other = PredExpr::eq("w", 0);
        assert!((st.selectivity(&other) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_extent() {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(ClassDef::new("E", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        let st = ColumnStats::build(&s, c, AttrId(0));
        assert_eq!(st.cmp_selectivity(CmpOp::Eq, &Value::Int(0)), 0.0);
    }
}
