//! Split reassembly certificates.
//!
//! The paper's §5 correctness claim — `split` decomposes a tree into
//! pieces that reassemble *exactly* — becomes a runtime guarantee here:
//! guarded split execution can emit a [`SplitCertificate`] carrying
//! canonical serializations and hashes of every piece, the
//! concatenation labels, and the merkle root of the extent the match
//! came from. The independent `aqua-check` crate (which deliberately
//! shares **no** code with this engine) re-parses the certificate,
//! recomputes the piece hashes, performs the reassembly itself, and
//! recomputes the extent root from the reassembled tree. Equality means
//! the pieces really concatenate back into the committed extent.
//!
//! ## Canonical tree serialization
//!
//! A tree serializes as `nnodes:u32le` followed by, per node in
//! preorder, the node's *payload bytes* (exactly the layout leaf hashes
//! use, see [`crate::merkle`]) and `nchildren:u32le`. Preorder +
//! child counts fully determine the shape; the payload bytes embed the
//! OID, class, and attribute values at emission time, so the checker
//! needs no access to the object store. The **piece hash** is SHA-256
//! over these bytes.
//!
//! ## Text format
//!
//! ```text
//! AQUA-SPLIT-CERT v1
//! extent: tree:doc
//! extent-root: <hex64>
//! alpha: <hex of label utf-8>
//! cuts: <hex>,<hex>,...        ("-" when no cuts)
//! piece context <hash hex64> <tree hex>
//! piece matched <hash hex64> <tree hex>
//! piece descendant <hash hex64> <tree hex>   (one per cut, in order)
//! end
//! ```
//!
//! Labels are hex-encoded so arbitrary label text cannot break the
//! line structure. Reassembly is `context ∘_alpha matched ∘_{cut_i}
//! descendant_i` where `∘_l` replaces every hole labeled `l`.

use aqua_algebra::tree::split::SplitPieces;
use aqua_algebra::{Payload, Tree};
use aqua_guard::failpoint;
use aqua_object::ObjectStore;

use crate::error::{Result, StoreError};
use crate::merkle::{self, sha256, Root};

/// Failpoint that flips a byte in an emitted certificate's first piece
/// hash — the tamper `aqua-check` must catch.
pub const CERT_TAMPER_PROBE: &str = "split.cert.tamper";

/// One serialized piece of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertPiece {
    /// `"context"`, `"matched"`, or `"descendant"`.
    pub role: &'static str,
    /// SHA-256 over the canonical tree bytes.
    pub hash: Root,
    /// The canonical tree bytes.
    pub bytes: Vec<u8>,
}

/// A reassembly certificate for one split match. See the module docs
/// for what it claims and how `aqua-check` verifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitCertificate {
    /// The extent the match came from, `IntegrityMismatch` spelling
    /// (`"tree:doc"`).
    pub extent: String,
    /// Merkle root of that extent at emission time.
    pub extent_root: Root,
    /// The label joining context to matched.
    pub alpha: String,
    /// The labels joining matched to each descendant, in order.
    pub cuts: Vec<String>,
    /// context, matched, then the descendants in cut order.
    pub pieces: Vec<CertPiece>,
}

/// Canonical serialization of `tree` (see the module docs).
pub fn canonical_tree_bytes(store: &ObjectStore, tree: &Tree) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + tree.len() * 24);
    out.extend_from_slice(&(tree.len() as u32).to_le_bytes());
    for n in tree.iter_preorder() {
        match tree.payload(n) {
            Payload::Cell(c) => merkle::put_cell(&mut out, store, c.contents(), None),
            Payload::Hole(l) => merkle::put_hole(&mut out, &l.0),
        }
        out.extend_from_slice(&(tree.children(n).len() as u32).to_le_bytes());
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for chunk in s.as_bytes().chunks(2) {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

impl SplitCertificate {
    /// Emit a certificate for `pieces` split out of the named extent,
    /// whose committed merkle root is `extent_root`. The
    /// [`CERT_TAMPER_PROBE`] failpoint, when armed, flips a byte in the
    /// first piece hash so the detection path can be proven live.
    pub fn emit(
        store: &ObjectStore,
        extent: &str,
        extent_root: Root,
        pieces: &SplitPieces,
    ) -> SplitCertificate {
        let mut out = Vec::with_capacity(2 + pieces.descendants.len());
        for (role, tree) in [("context", &pieces.context), ("matched", &pieces.matched)] {
            let bytes = canonical_tree_bytes(store, tree);
            out.push(CertPiece {
                role,
                hash: Root(sha256(&bytes)),
                bytes,
            });
        }
        for d in &pieces.descendants {
            let bytes = canonical_tree_bytes(store, d);
            out.push(CertPiece {
                role: "descendant",
                hash: Root(sha256(&bytes)),
                bytes,
            });
        }
        if failpoint::check(CERT_TAMPER_PROBE).is_err() {
            out[0].hash.0[0] ^= 0xff;
        }
        SplitCertificate {
            extent: extent.to_string(),
            extent_root,
            alpha: pieces.alpha.0.clone(),
            cuts: pieces.cut_labels.iter().map(|l| l.0.clone()).collect(),
            pieces: out,
        }
    }

    /// Render to the line-oriented text format `aqua-check` parses.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("AQUA-SPLIT-CERT v1\n");
        s.push_str(&format!("extent: {}\n", self.extent));
        s.push_str(&format!("extent-root: {}\n", self.extent_root.to_hex()));
        s.push_str(&format!("alpha: {}\n", hex(self.alpha.as_bytes())));
        if self.cuts.is_empty() {
            s.push_str("cuts: -\n");
        } else {
            let cuts: Vec<String> = self.cuts.iter().map(|c| hex(c.as_bytes())).collect();
            s.push_str(&format!("cuts: {}\n", cuts.join(",")));
        }
        for p in &self.pieces {
            s.push_str(&format!(
                "piece {} {} {}\n",
                p.role,
                p.hash.to_hex(),
                hex(&p.bytes)
            ));
        }
        s.push_str("end\n");
        s
    }

    /// Parse the text format back (engine-side convenience for fixtures
    /// and tests; `aqua-check` has its own independent parser).
    pub fn parse(text: &str) -> Result<SplitCertificate> {
        let bad = |what: &str| StoreError::Corrupt {
            path: "split certificate".to_string(),
            offset: 0,
            what: what.to_string(),
        };
        let mut lines = text.lines();
        if lines.next() != Some("AQUA-SPLIT-CERT v1") {
            return Err(bad("missing AQUA-SPLIT-CERT v1 header"));
        }
        let field = |line: Option<&str>, key: &str| -> Result<String> {
            line.and_then(|l| l.strip_prefix(key))
                .map(|v| v.trim().to_string())
                .ok_or_else(|| bad(&format!("missing {key} line")))
        };
        let extent = field(lines.next(), "extent:")?;
        let root_hex = field(lines.next(), "extent-root:")?;
        let extent_root = Root::from_hex(&root_hex).ok_or_else(|| bad("bad extent-root hex"))?;
        let alpha_hex = field(lines.next(), "alpha:")?;
        let alpha = String::from_utf8(unhex(&alpha_hex).ok_or_else(|| bad("bad alpha hex"))?)
            .map_err(|_| bad("alpha is not utf-8"))?;
        let cuts_raw = field(lines.next(), "cuts:")?;
        let cuts = if cuts_raw == "-" {
            Vec::new()
        } else {
            cuts_raw
                .split(',')
                .map(|c| {
                    String::from_utf8(unhex(c).ok_or_else(|| bad("bad cut hex"))?)
                        .map_err(|_| bad("cut label is not utf-8"))
                })
                .collect::<Result<Vec<_>>>()?
        };
        let mut pieces = Vec::new();
        for line in lines {
            if line == "end" {
                return Ok(SplitCertificate {
                    extent,
                    extent_root,
                    alpha,
                    cuts,
                    pieces,
                });
            }
            let rest = line
                .strip_prefix("piece ")
                .ok_or_else(|| bad("expected piece or end line"))?;
            let mut parts = rest.splitn(3, ' ');
            let role = match parts.next() {
                Some("context") => "context",
                Some("matched") => "matched",
                Some("descendant") => "descendant",
                _ => return Err(bad("unknown piece role")),
            };
            let hash = parts
                .next()
                .and_then(Root::from_hex)
                .ok_or_else(|| bad("bad piece hash hex"))?;
            let bytes = parts
                .next()
                .and_then(unhex)
                .ok_or_else(|| bad("bad piece tree hex"))?;
            pieces.push(CertPiece { role, hash, bytes });
        }
        Err(bad("missing end line"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::tree::split::split_pieces;
    use aqua_algebra::TreeBuilder;
    use aqua_object::{AttrDef, AttrType, ClassDef, ClassId, Oid, Value};
    use aqua_pattern::parser::{parse_tree_pattern, PredEnv};
    use aqua_pattern::tree_match::MatchConfig;

    fn fixture() -> (ObjectStore, ClassId, Tree) {
        let mut store = ObjectStore::new();
        let class = store
            .define_class(
                ClassDef::new("N", vec![AttrDef::stored("label", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let mut oid = |l: &str| {
            store
                .insert_named("N", &[("label", Value::str(l))])
                .unwrap()
        };
        let (a, b, d, f, c) = (oid("a"), oid("b"), oid("d"), oid("f"), oid("c"));
        let mut tb = TreeBuilder::new();
        let dn = tb.node(d, vec![]);
        let fn_ = tb.node(f, vec![]);
        let bn = tb.node(b, vec![dn, fn_]);
        let cn = tb.node(c, vec![]);
        let an = tb.node(a, vec![bn, cn]);
        (store, class, tb.finish(an).unwrap())
    }

    /// Match `b` and cut all its children, so the certificate has a
    /// context, a matched piece, and two descendants.
    fn pieces_of(store: &ObjectStore, class: ClassId, tree: &Tree) -> SplitPieces {
        let cp = parse_tree_pattern("b(!?*)", &PredEnv::with_default_attr("label"))
            .unwrap()
            .compile(class, store.class(class))
            .unwrap();
        let mut ps = split_pieces(store, tree, &cp, &MatchConfig::default()).unwrap();
        assert!(!ps.is_empty(), "pattern must match the fixture");
        ps.remove(0)
    }

    #[test]
    fn certificate_round_trips_through_text() {
        let (store, class, tree) = fixture();
        let pieces = pieces_of(&store, class, &tree);
        let root = merkle::tree_root(&store, &tree);
        let cert = SplitCertificate::emit(&store, "tree:t", root, &pieces);
        assert_eq!(cert.pieces.len(), 2 + pieces.descendants.len());
        let text = cert.to_text();
        let back = SplitCertificate::parse(&text).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn canonical_bytes_are_content_sensitive() {
        let (store, _class, tree) = fixture();
        let b1 = canonical_tree_bytes(&store, &tree);
        let mut store2 = store.clone();
        store2
            .update(Oid(1), aqua_object::AttrId(0), Value::str("B"))
            .unwrap();
        assert_ne!(b1, canonical_tree_bytes(&store2, &tree));
        let t2 = tree.remove_subtree(tree.children(tree.root())[1]).unwrap();
        assert_ne!(b1, canonical_tree_bytes(&store, &t2));
    }

    #[test]
    fn tamper_failpoint_flips_a_piece_hash() {
        let (store, class, tree) = fixture();
        let pieces = pieces_of(&store, class, &tree);
        let root = merkle::tree_root(&store, &tree);
        let clean = SplitCertificate::emit(&store, "tree:t", root, &pieces);
        let tampered = {
            let _fp = failpoint::scoped(CERT_TAMPER_PROBE, "tamper");
            SplitCertificate::emit(&store, "tree:t", root, &pieces)
        };
        assert_ne!(clean.pieces[0].hash, tampered.pieces[0].hash);
        assert_eq!(clean.pieces[0].bytes, tampered.pieces[0].bytes);
        // The tamper is visible to any checker: recomputing the hash
        // from the (untouched) bytes no longer matches.
        assert_eq!(
            Root(sha256(&tampered.pieces[0].bytes)),
            clean.pieces[0].hash
        );
    }

    #[test]
    fn malformed_text_is_rejected_typed() {
        assert!(SplitCertificate::parse("nope").is_err());
        assert!(SplitCertificate::parse("AQUA-SPLIT-CERT v1\nextent: t\n").is_err());
        let (store, class, tree) = fixture();
        let pieces = pieces_of(&store, class, &tree);
        let root = merkle::tree_root(&store, &tree);
        let text = SplitCertificate::emit(&store, "tree:t", root, &pieces).to_text();
        let no_end = text.replace("end\n", "");
        assert!(SplitCertificate::parse(&no_end).is_err());
    }
}
