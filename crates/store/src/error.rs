//! Typed errors for the storage layer.
//!
//! Everything that can go wrong in `aqua-store` — an injected probe
//! fault, a stale index answering for a mutated store, an I/O failure
//! in the durability subsystem, or corruption detected by a checksum —
//! surfaces as a [`StoreError`] variant instead of a panic. Recovery in
//! particular is *panic-free and typed*: a torn WAL tail or a
//! bit-flipped snapshot is reported, truncated, and survived, never
//! unwrapped.

use std::fmt;

use aqua_algebra::AlgebraError;
use aqua_guard::failpoint::FailpointError;
use aqua_guard::ErrorClass;
use aqua_object::ObjectError;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors raised by indices, the WAL, snapshots, and recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A fault-injection point fired (see [`aqua_guard::failpoint`]).
    Injected {
        /// The failpoint name.
        point: String,
        /// The message the test armed it with.
        msg: String,
    },
    /// An index built at one store generation was probed after the store
    /// mutated: its candidates may be wrong, so the probe refuses to
    /// answer instead of silently lying. Callers fall back to a scan.
    StaleIndex {
        /// Generation the index was built at.
        built_epoch: u64,
        /// The store's generation at probe time.
        store_epoch: u64,
    },
    /// An index was asked about a node/position it never covered (for
    /// example a [`NodeId`](aqua_algebra::NodeId) from a different
    /// tree). Converted from what used to be a slice-index panic.
    OutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The valid bound.
        len: usize,
    },
    /// An I/O operation of the durability subsystem failed.
    Io {
        /// The operation (`"append"`, `"fsync"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// Rendered `std::io::Error`.
        msg: String,
    },
    /// A frame or snapshot failed its checksum or could not be decoded.
    Corrupt {
        /// The file involved.
        path: String,
        /// Byte offset of the bad region.
        offset: u64,
        /// What was wrong.
        what: String,
    },
    /// A durable mutation named a tree or list extent that does not
    /// exist.
    NoSuchExtent {
        /// `"tree"` or `"list"`.
        kind: &'static str,
        /// The missing extent's name.
        name: String,
    },
    /// A checksum-valid WAL record could not be re-applied to the
    /// recovered state (schema drift, impossible mutation).
    Replay {
        /// The record's log sequence number.
        lsn: u64,
        /// Rendered cause.
        msg: String,
    },
    /// Recomputed merkle roots disagree with the roots the WAL or a
    /// snapshot manifest committed to: the recovered bytes checksum
    /// clean but the *content* is not what was committed. Recovery
    /// refuses to serve it. `subtree` localizes the divergence (a
    /// preorder interval for trees, a position for lists, a frame LSN
    /// when only the log-bound store root disagrees).
    IntegrityMismatch {
        /// The extent (`"tree:doc"`, `"list:song"`) or `"store"`.
        extent: String,
        /// Where inside the extent the divergence was localized.
        subtree: String,
        /// The committed root, hex.
        expected: String,
        /// The recomputed root, hex.
        actual: String,
    },
    /// The sharded store's on-disk layout disagrees with what the
    /// caller asked for, or the layout manifest is unreadable. Shard
    /// routing must be stable across recovery (same path → same shard),
    /// so a shard-count change on an existing directory is refused
    /// rather than silently re-routed.
    ShardLayout {
        /// The store directory.
        dir: String,
        /// What disagreed.
        msg: String,
    },
    /// An online shard rebalance was interrupted before its layout
    /// commit — by a refused gate (deadline/cancel) or an invalid
    /// target. The migration stanza stays pinned in `shards.meta`, so
    /// the next open (or a retried `rebalance` at the same target)
    /// resumes from the subtrees already moved; nothing is lost and the
    /// value fingerprint is unchanged, which is why this is a
    /// *transient* error.
    Rebalance {
        /// The layout epoch the interrupted migration runs under.
        epoch: u64,
        /// What interrupted it.
        msg: String,
    },
    /// A cross-shard transaction failed (see [`TxnError`]).
    Txn(TxnError),
    /// Propagated object-layer error (typed insert/update failures).
    Object(ObjectError),
    /// Propagated algebra-layer error (tree/list mutation failures).
    Algebra(AlgebraError),
}

/// Failures of the two-phase-commit protocol (`store::txn`). Phases
/// fail differently: a prepare failure always leaves the store exactly
/// as it was (the coordinator rolled the prepared participants back),
/// while a divergent participant is an integrity problem the protocol
/// refuses to paper over.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// A participant rejected its prepare (validation or I/O). The
    /// coordinator aborted the transaction cleanly before any decision
    /// was logged — no shard applied anything, and a retry is safe.
    PrepareFailed {
        /// The transaction.
        txn_id: u64,
        /// The participant that refused.
        shard: usize,
        /// Why.
        msg: String,
    },
    /// The transaction was aborted before the decision was logged — by
    /// an expired deadline, a caller-supplied gate, or an explicit
    /// abort. All-or-nothing holds trivially: nothing was applied.
    Aborted {
        /// The transaction.
        txn_id: u64,
        /// Why the abort was chosen.
        reason: String,
    },
    /// The coordinator log carried a checksum-valid frame that is not a
    /// decision record, or a decision that contradicts itself. The
    /// bytes are intact (the CRC vouches for them) so this is writer
    /// garbage, not a torn tail — recovery refuses to guess.
    DecisionUnreadable {
        /// The coordinator log file.
        path: String,
        /// What was wrong.
        msg: String,
    },
    /// Rolling a prepared transaction forward produced a per-shard root
    /// different from the `root_binding` the prepare frame committed
    /// to, or a committed transaction's participant lost its prepare
    /// entirely. The shard's state diverged from what the coordinator
    /// certified; serving it would break the global root fold.
    ParticipantDiverged {
        /// The transaction.
        txn_id: u64,
        /// The divergent participant.
        shard: usize,
        /// What the prepare bound (hex root, or a description).
        expected: String,
        /// What recovery found.
        actual: String,
    },
    /// The named transaction is not pending on this shard — a resolve
    /// without a prepare is a protocol-ordering bug, reported rather
    /// than ignored.
    NoSuchTxn {
        /// The transaction.
        txn_id: u64,
    },
    /// A plain mutation, checkpoint, or second prepare was attempted
    /// while a prepared transaction still awaits its outcome. Either
    /// would silently invalidate the root the prepare bound (or strand
    /// the prepare behind a snapshot), so the store refuses until the
    /// coordinator resolves the transaction.
    MutationWhilePending {
        /// The pending transaction blocking the mutation.
        txn_id: u64,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::PrepareFailed { txn_id, shard, msg } => {
                write!(
                    f,
                    "txn {txn_id}: prepare failed on shard {shard} (aborted cleanly): {msg}"
                )
            }
            TxnError::Aborted { txn_id, reason } => {
                write!(f, "txn {txn_id}: aborted before decision: {reason}")
            }
            TxnError::DecisionUnreadable { path, msg } => {
                write!(f, "coordinator log {path:?} unreadable: {msg}")
            }
            TxnError::ParticipantDiverged {
                txn_id,
                shard,
                expected,
                actual,
            } => write!(
                f,
                "txn {txn_id}: participant shard {shard} diverged from its prepare binding: \
                 expected {expected}, found {actual}"
            ),
            TxnError::NoSuchTxn { txn_id } => {
                write!(f, "txn {txn_id}: no such pending transaction")
            }
            TxnError::MutationWhilePending { txn_id } => write!(
                f,
                "txn {txn_id} is prepared but undecided; resolve it before mutating or \
                 checkpointing"
            ),
        }
    }
}

impl StoreError {
    /// Retry taxonomy: injected faults and I/O failures are
    /// [`ErrorClass::Transient`] (safe to retry), a stale index is
    /// `Transient` too (a rebuild clears it), corruption, replay, and
    /// integrity failures are [`ErrorClass::Permanent`] — retrying
    /// cannot make divergent bytes match their committed root.
    pub fn class(&self) -> ErrorClass {
        match self {
            StoreError::Injected { .. } | StoreError::Io { .. } | StoreError::StaleIndex { .. } => {
                ErrorClass::Transient
            }
            // A clean pre-decision abort applied nothing anywhere, so a
            // retry is safe; every other txn failure is structural.
            StoreError::Txn(TxnError::PrepareFailed { .. })
            | StoreError::Txn(TxnError::Aborted { .. }) => ErrorClass::Transient,
            // An interrupted rebalance is resumable: the migration
            // stanza is durable and a retry continues where it stopped.
            StoreError::Rebalance { .. } => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }

    /// Shorthand for wrapping an `std::io::Error` with its context.
    pub fn io(op: &'static str, path: impl fmt::Display, e: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_string(),
            msg: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Injected { point, msg } => {
                write!(f, "injected fault at {point:?}: {msg}")
            }
            StoreError::StaleIndex {
                built_epoch,
                store_epoch,
            } => write!(
                f,
                "stale index: built at epoch {built_epoch}, store is at epoch {store_epoch}"
            ),
            StoreError::OutOfBounds { what, index, len } => {
                write!(f, "{what} {index} out of bounds (len {len})")
            }
            StoreError::Io { op, path, msg } => {
                write!(f, "durability {op} failed on {path:?}: {msg}")
            }
            StoreError::Corrupt { path, offset, what } => {
                write!(f, "corruption in {path:?} at byte {offset}: {what}")
            }
            StoreError::NoSuchExtent { kind, name } => {
                write!(f, "no such {kind} extent: {name:?}")
            }
            StoreError::Replay { lsn, msg } => {
                write!(f, "WAL replay failed at lsn {lsn}: {msg}")
            }
            StoreError::IntegrityMismatch {
                extent,
                subtree,
                expected,
                actual,
            } => write!(
                f,
                "integrity mismatch in {extent} at {subtree}: committed root {expected}, \
                 recomputed {actual}"
            ),
            StoreError::ShardLayout { dir, msg } => {
                write!(f, "shard layout mismatch in {dir:?}: {msg}")
            }
            StoreError::Rebalance { epoch, msg } => {
                write!(f, "rebalance under layout epoch {epoch} interrupted: {msg}")
            }
            StoreError::Txn(e) => write!(f, "{e}"),
            StoreError::Object(e) => write!(f, "{e}"),
            StoreError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Object(e) => Some(e),
            StoreError::Algebra(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TxnError> for StoreError {
    fn from(e: TxnError) -> Self {
        StoreError::Txn(e)
    }
}

impl From<FailpointError> for StoreError {
    fn from(e: FailpointError) -> Self {
        StoreError::Injected {
            point: e.point,
            msg: e.msg,
        }
    }
}

impl From<ObjectError> for StoreError {
    fn from(e: ObjectError) -> Self {
        StoreError::Object(e)
    }
}

impl From<AlgebraError> for StoreError {
    fn from(e: AlgebraError) -> Self {
        StoreError::Algebra(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_facts() {
        let e = StoreError::StaleIndex {
            built_epoch: 3,
            store_epoch: 7,
        };
        assert_eq!(e.class(), ErrorClass::Transient);
        let s = e.to_string();
        assert!(s.contains("epoch 3") && s.contains("epoch 7"), "{s}");

        let e = StoreError::Corrupt {
            path: "wal-0.log".into(),
            offset: 128,
            what: "crc mismatch".into(),
        };
        assert_eq!(e.class(), ErrorClass::Permanent);
        assert!(e.to_string().contains("byte 128"));

        let e = StoreError::IntegrityMismatch {
            extent: "tree:doc".into(),
            subtree: "preorder 3 interval [4,9)".into(),
            expected: "aa".repeat(32),
            actual: "bb".repeat(32),
        };
        assert_eq!(e.class(), ErrorClass::Permanent);
        let s = e.to_string();
        assert!(s.contains("tree:doc") && s.contains("preorder 3"), "{s}");
    }

    #[test]
    fn failpoint_conversion_is_transient() {
        let e: StoreError = FailpointError {
            point: "store.wal.append".into(),
            msg: "disk gone".into(),
        }
        .into();
        assert_eq!(e.class(), ErrorClass::Transient);
        assert!(e.to_string().contains("store.wal.append"));
    }
}
