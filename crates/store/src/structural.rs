//! Structural index: interval numbering for trees (experiment B8).
//!
//! Assigns each node its preorder entry and postorder exit numbers;
//! `u` is an ancestor of `v` iff `entry(u) ≤ entry(v)` and
//! `exit(v) ≤ exit(u)`. Answers ancestor/descendant questions in O(1)
//! (versus walking parent chains), which is what makes `all_anc` /
//! `all_desc`-style context computations cheap on large trees.

use aqua_algebra::{NodeId, Tree};
use aqua_guard::failpoint;

use crate::attr_index::ensure_fresh;
use crate::error::{Result, StoreError};
use crate::merkle::Root;

/// Failpoint checked by [`StructuralIndex`] probe wrappers.
pub const STRUCTURAL_PROBE: &str = "store.structural.probe";

/// Interval numbering over one tree, stored as parallel columns
/// (structure-of-arrays: separate `pre`/`post` entry/exit columns
/// rather than an array of pairs).
#[derive(Debug, Clone)]
pub struct StructuralIndex {
    /// Node → preorder entry number.
    pre: Vec<u32>,
    /// Node → postorder exit number.
    post: Vec<u32>,
    /// Nodes in preorder, for rank → node resolution.
    preorder: Vec<NodeId>,
    /// Node → preorder rank.
    rank: Vec<u32>,
    /// Node → subtree size (number of nodes including self).
    size: Vec<u32>,
    epoch: u64,
    /// Merkle root of the indexed extent at build time (authenticated
    /// stores stamp this; see `crate::merkle`).
    root: Option<Root>,
}

impl StructuralIndex {
    /// Build by copying the tree's cached columnar view
    /// ([`Tree::cols`]) — the interval, preorder, rank, and size
    /// columns come out of its single flattening DFS instead of the
    /// three pointer-walk passes this used to take.
    pub fn build(tree: &Tree) -> StructuralIndex {
        let cols = tree.cols();
        StructuralIndex {
            pre: cols.pre_col().to_vec(),
            post: cols.post_col().to_vec(),
            preorder: cols.preorder_nodes().to_vec(),
            rank: cols.rank_col().to_vec(),
            size: cols.size_col().to_vec(),
            epoch: 0,
            root: None,
        }
    }

    /// Stamp the store generation this index was built at.
    pub fn with_epoch(mut self, epoch: u64) -> StructuralIndex {
        self.epoch = epoch;
        self
    }

    /// Stamp the merkle root of the extent this index was built over.
    pub fn with_root(mut self, root: Root) -> StructuralIndex {
        self.root = Some(root);
        self
    }

    /// The store generation this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The merkle root of the extent at build time, if stamped.
    pub fn root(&self) -> Option<Root> {
        self.root
    }

    /// Bounds gate for the fallible probes: a [`NodeId`] from a
    /// *different* tree is a typed error, not a slice panic.
    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() < self.rank.len() {
            Ok(())
        } else {
            Err(StoreError::OutOfBounds {
                what: "tree node",
                index: node.index(),
                len: self.rank.len(),
            })
        }
    }

    /// Fallible [`is_ancestor`](Self::is_ancestor): checks the
    /// [`STRUCTURAL_PROBE`] failpoint, the staleness gate, and that
    /// both nodes belong to the indexed tree.
    pub fn try_is_ancestor(
        &self,
        anc: NodeId,
        node: NodeId,
        current_epoch: Option<u64>,
    ) -> Result<bool> {
        failpoint::check(STRUCTURAL_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        self.check_node(anc)?;
        self.check_node(node)?;
        Ok(self.is_ancestor(anc, node))
    }

    /// Fallible [`descendants`](Self::descendants); same gates as
    /// [`try_is_ancestor`](Self::try_is_ancestor).
    pub fn try_descendants(&self, node: NodeId, current_epoch: Option<u64>) -> Result<&[NodeId]> {
        failpoint::check(STRUCTURAL_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        self.check_node(node)?;
        Ok(self.descendants(node))
    }

    /// O(1): is `anc` a (reflexive) ancestor of `node`?
    #[inline]
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        self.pre[anc.index()] <= self.pre[node.index()]
            && self.post[node.index()] <= self.post[anc.index()]
    }

    /// O(1): subtree size of `node` (including itself).
    #[inline]
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.size[node.index()] as usize
    }

    /// Preorder rank of `node` (0 = root).
    #[inline]
    pub fn preorder_rank(&self, node: NodeId) -> usize {
        self.rank[node.index()] as usize
    }

    /// The descendants of `node` (including itself) as a contiguous
    /// preorder-rank slice — descendants are exactly the next
    /// `subtree_size` entries.
    pub fn descendants(&self, node: NodeId) -> &[NodeId] {
        let r = self.preorder_rank(node);
        &self.preorder[r..r + self.subtree_size(node)]
    }

    /// Document-order comparison (preorder ranks).
    pub fn doc_cmp(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.rank[a.index()].cmp(&self.rank[b.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::TreeBuilder;
    use aqua_object::Oid;

    /// a(b(d f) c) with OIDs 0..5 assigned in preorder.
    fn sample() -> (Tree, Vec<NodeId>) {
        let mut b = TreeBuilder::new();
        let d = b.node(Oid(2), vec![]);
        let f = b.node(Oid(3), vec![]);
        let bb = b.node(Oid(1), vec![d, f]);
        let c = b.node(Oid(4), vec![]);
        let a = b.node(Oid(0), vec![bb, c]);
        let t = b.finish(a).unwrap();
        (t, vec![a, bb, d, f, c])
    }

    #[test]
    fn ancestor_queries_match_walk() {
        let (t, _) = sample();
        let idx = StructuralIndex::build(&t);
        for u in t.iter_preorder() {
            for v in t.iter_preorder() {
                assert_eq!(idx.is_ancestor(u, v), t.is_ancestor(u, v));
            }
        }
    }

    #[test]
    fn subtree_sizes() {
        let (t, ids) = sample();
        let idx = StructuralIndex::build(&t);
        let [a, bb, d, _f, c] = ids[..] else { panic!() };
        assert_eq!(idx.subtree_size(a), 5);
        assert_eq!(idx.subtree_size(bb), 3);
        assert_eq!(idx.subtree_size(d), 1);
        assert_eq!(idx.subtree_size(c), 1);
    }

    #[test]
    fn descendants_slice_is_contiguous() {
        let (t, ids) = sample();
        let idx = StructuralIndex::build(&t);
        let bb = ids[1];
        let ds = idx.descendants(bb);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0], bb);
        // Every slice member is a real descendant.
        for &n in ds {
            assert!(t.is_ancestor(bb, n));
        }
    }

    #[test]
    fn ranks_and_doc_order() {
        let (t, ids) = sample();
        let idx = StructuralIndex::build(&t);
        assert_eq!(idx.preorder_rank(ids[0]), 0);
        assert!(idx.doc_cmp(ids[1], ids[4]).is_lt()); // b before c
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::leaf(Oid(0));
        let idx = StructuralIndex::build(&t);
        let r = t.root();
        assert!(idx.is_ancestor(r, r));
        assert_eq!(idx.subtree_size(r), 1);
        assert_eq!(idx.descendants(r), &[r]);
        assert_eq!(idx.preorder_rank(r), 0);
        assert_eq!(idx.try_descendants(r, Some(0)).unwrap(), &[r]);
    }

    /// Mutate the tree (persistent rebuilds renumber the arena),
    /// rebuild the index, and check every pair against the walk.
    #[test]
    fn rebuild_after_mutation_matches_walk() {
        let (t, ids) = sample();
        let t = t.insert_child(ids[4], 0, &Tree::leaf(Oid(5))).unwrap();
        let bb = t
            .iter_preorder()
            .find(|&n| t.oid(n) == Some(Oid(1)))
            .unwrap();
        let t = t.remove_subtree(bb).unwrap();
        let idx = StructuralIndex::build(&t);
        for u in t.iter_preorder() {
            for v in t.iter_preorder() {
                assert_eq!(idx.is_ancestor(u, v), t.is_ancestor(u, v));
            }
            let walk: Vec<NodeId> = t.iter_preorder().filter(|&n| t.is_ancestor(u, n)).collect();
            let mut slice = idx.descendants(u).to_vec();
            slice.sort_by(|&a, &b| idx.doc_cmp(a, b));
            assert_eq!(slice, walk);
            assert_eq!(idx.subtree_size(u), walk.len());
        }
    }

    /// Probes past the arena and stale-epoch probes both refuse typed.
    #[test]
    fn out_of_bounds_and_stale_probes_are_typed() {
        let (t, ids) = sample();
        let idx = StructuralIndex::build(&t).with_epoch(2);
        let beyond = NodeId(t.len() as u32);
        assert!(matches!(
            idx.try_descendants(beyond, Some(2)),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            idx.try_is_ancestor(ids[0], beyond, None),
            Err(StoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            idx.try_descendants(ids[0], Some(5)),
            Err(StoreError::StaleIndex {
                built_epoch: 2,
                store_epoch: 5
            })
        ));
    }
}
