//! Attribute (value) indices.
//!
//! Ordered maps from attribute values to locations — OIDs for extents,
//! node ids for trees. Built in one pass, probed in `O(log n + hits)`.
//! These are the access methods the paper's rewrite rules assume:
//! decompose a pattern so one alphabet-predicate can be answered here,
//! then run the residual pattern only on the candidates.

use std::collections::BTreeMap;
use std::ops::Bound;

use aqua_algebra::Tree;
use aqua_guard::failpoint;
use aqua_object::{AttrId, ClassId, ObjectStore, Oid, Value};
use aqua_pattern::CmpOp;

use crate::error::{Result, StoreError};

/// Staleness gate shared by all four index types: `built` is the epoch
/// the index was stamped with, `current` the store's epoch at probe
/// time (`None` disables the check for epoch-unaware callers).
#[inline]
pub(crate) fn ensure_fresh(built: u64, current: Option<u64>) -> Result<()> {
    match current {
        Some(store_epoch) if store_epoch != built => Err(StoreError::StaleIndex {
            built_epoch: built,
            store_epoch,
        }),
        _ => Ok(()),
    }
}

/// Failpoint checked by [`AttrIndex`] probe wrappers
/// ([`AttrIndex::try_lookup`], [`AttrIndex::try_lookup_cmp`]).
pub const ATTR_INDEX_PROBE: &str = "store.attr_index.probe";

/// Failpoint checked by [`TreeNodeIndex`] probe wrappers.
pub const TREE_INDEX_PROBE: &str = "store.tree_index.probe";

/// Total-order key wrapper for [`Value`] (uses `Value::index_cmp`, which
/// ranks variants and totally orders floats).
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.index_cmp(&other.0)
    }
}

/// A secondary index over one stored attribute of one class: maps each
/// attribute value to the OIDs holding it, in insertion (extent) order.
#[derive(Debug, Clone)]
pub struct AttrIndex {
    class: ClassId,
    attr: AttrId,
    map: BTreeMap<OrdValue, Vec<Oid>>,
    epoch: u64,
}

impl AttrIndex {
    /// Build over the current extent of `class`. Infallible for OIDs
    /// the extent itself vouches for, but panics if `attr` is out of
    /// the class layout — use [`try_build`](Self::try_build) for
    /// untrusted specs. The index is stamped with epoch 0; see
    /// [`with_epoch`](Self::with_epoch).
    pub fn build(store: &ObjectStore, class: ClassId, attr: AttrId) -> AttrIndex {
        let mut map: BTreeMap<OrdValue, Vec<Oid>> = BTreeMap::new();
        for &oid in store.extent(class) {
            let v = store.attr(oid, attr).clone();
            map.entry(OrdValue(v)).or_default().push(oid);
        }
        AttrIndex {
            class,
            attr,
            map,
            epoch: 0,
        }
    }

    /// Panic-free [`build`](Self::build): validates `class` and `attr`
    /// against the store's schema and dereferences through the typed
    /// [`ObjectStore::get`], so adversarial specs yield a
    /// [`StoreError`] instead of a slice-index panic.
    pub fn try_build(store: &ObjectStore, class: ClassId, attr: AttrId) -> Result<AttrIndex> {
        check_attr(store, class, attr)?;
        let mut map: BTreeMap<OrdValue, Vec<Oid>> = BTreeMap::new();
        for &oid in store.extent(class) {
            let v = store.get(oid)?.get(attr).clone();
            map.entry(OrdValue(v)).or_default().push(oid);
        }
        Ok(AttrIndex {
            class,
            attr,
            map,
            epoch: 0,
        })
    }

    /// Stamp the store generation this index was built at.
    pub fn with_epoch(mut self, epoch: u64) -> AttrIndex {
        self.epoch = epoch;
        self
    }

    /// The store generation this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Fallible exact-match probe — the probe the optimizer routes
    /// through. Checks the [`ATTR_INDEX_PROBE`] failpoint and, when
    /// `current_epoch` is `Some`, refuses to answer for a store that
    /// has mutated since the build ([`StoreError::StaleIndex`]) rather
    /// than silently returning wrong candidates.
    pub fn try_lookup(&self, v: &Value, current_epoch: Option<u64>) -> Result<&[Oid]> {
        failpoint::check(ATTR_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.lookup(v))
    }

    /// Fallible [`lookup_cmp`](Self::lookup_cmp); same failpoint and
    /// staleness gates as [`try_lookup`](Self::try_lookup).
    pub fn try_lookup_cmp(
        &self,
        op: CmpOp,
        v: &Value,
        current_epoch: Option<u64>,
    ) -> Result<Vec<Oid>> {
        failpoint::check(ATTR_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.lookup_cmp(op, v))
    }

    /// Exact-match probe.
    pub fn lookup(&self, v: &Value) -> &[Oid] {
        self.map
            .get(&OrdValue(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Probe for a comparison `attr op v` (the index-usable predicate
    /// shapes). Results are in value order, then extent order.
    pub fn lookup_cmp(&self, op: CmpOp, v: &Value) -> Vec<Oid> {
        let key = OrdValue(v.clone());
        let range: Vec<&Vec<Oid>> = match op {
            CmpOp::Eq => return self.lookup(v).to_vec(),
            CmpOp::Ne => self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .map(|(_, v)| v)
                .collect(),
            CmpOp::Lt => self
                .map
                .range((Bound::Unbounded, Bound::Excluded(key)))
                .map(|(_, v)| v)
                .collect(),
            CmpOp::Le => self
                .map
                .range((Bound::Unbounded, Bound::Included(key)))
                .map(|(_, v)| v)
                .collect(),
            CmpOp::Gt => self
                .map
                .range((Bound::Excluded(key), Bound::Unbounded))
                .map(|(_, v)| v)
                .collect(),
            CmpOp::Ge => self
                .map
                .range((Bound::Included(key), Bound::Unbounded))
                .map(|(_, v)| v)
                .collect(),
        };
        range.into_iter().flatten().copied().collect()
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Keep the index current after an insertion.
    pub fn insert(&mut self, store: &ObjectStore, oid: Oid) {
        let v = store.attr(oid, self.attr).clone();
        self.map.entry(OrdValue(v)).or_default().push(oid);
    }
}

/// Validate an index spec against the store schema: the class must be
/// registered and `attr` inside its layout.
pub(crate) fn check_attr(store: &ObjectStore, class: ClassId, attr: AttrId) -> Result<()> {
    if class.0 as usize >= store.class_count() {
        return Err(StoreError::OutOfBounds {
            what: "class id",
            index: class.0 as usize,
            len: store.class_count(),
        });
    }
    let arity = store.class(class).arity();
    if attr.index() >= arity {
        return Err(StoreError::OutOfBounds {
            what: "attribute id",
            index: attr.index(),
            len: arity,
        });
    }
    Ok(())
}

/// An index over the nodes of one tree: maps an attribute value of the
/// node's *object* to the node ids, in document (preorder) order. Holes
/// are not indexed. This is the "index on d" of §4's rewrite example.
#[derive(Debug, Clone)]
pub struct TreeNodeIndex {
    attr: AttrId,
    class: ClassId,
    map: BTreeMap<OrdValue, Vec<u32>>,
    epoch: u64,
}

impl TreeNodeIndex {
    /// Build over `tree`, indexing `attr` of objects of `class` (nodes
    /// holding objects of other classes are skipped). Panics on a tree
    /// whose cells dangle outside `store` — use
    /// [`try_build`](Self::try_build) for untrusted trees.
    pub fn build(store: &ObjectStore, tree: &Tree, class: ClassId, attr: AttrId) -> TreeNodeIndex {
        let mut map: BTreeMap<OrdValue, Vec<u32>> = BTreeMap::new();
        for node in tree.iter_preorder() {
            if let Some(oid) = tree.oid(node) {
                let obj = store.deref(oid);
                if obj.class() == class {
                    map.entry(OrdValue(obj.get(attr).clone()))
                        .or_default()
                        .push(node.0);
                }
            }
        }
        TreeNodeIndex {
            attr,
            class,
            map,
            epoch: 0,
        }
    }

    /// Panic-free [`build`](Self::build): dangling cell OIDs (a tree
    /// from a different store) and out-of-layout attributes surface as
    /// typed [`StoreError`]s instead of index panics.
    pub fn try_build(
        store: &ObjectStore,
        tree: &Tree,
        class: ClassId,
        attr: AttrId,
    ) -> Result<TreeNodeIndex> {
        check_attr(store, class, attr)?;
        let mut map: BTreeMap<OrdValue, Vec<u32>> = BTreeMap::new();
        for node in tree.iter_preorder() {
            if let Some(oid) = tree.oid(node) {
                let obj = store.get(oid)?;
                if obj.class() == class {
                    map.entry(OrdValue(obj.get(attr).clone()))
                        .or_default()
                        .push(node.0);
                }
            }
        }
        Ok(TreeNodeIndex {
            attr,
            class,
            map,
            epoch: 0,
        })
    }

    /// Stamp the store generation this index was built at.
    pub fn with_epoch(mut self, epoch: u64) -> TreeNodeIndex {
        self.epoch = epoch;
        self
    }

    /// The store generation this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Fallible [`lookup`](Self::lookup): checks the
    /// [`TREE_INDEX_PROBE`] failpoint and the staleness gate (see
    /// [`AttrIndex::try_lookup`]).
    pub fn try_lookup(&self, v: &Value, current_epoch: Option<u64>) -> Result<&[u32]> {
        failpoint::check(TREE_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.lookup(v))
    }

    /// Fallible [`lookup_cmp`](Self::lookup_cmp); same gates as
    /// [`try_lookup`](Self::try_lookup).
    pub fn try_lookup_cmp(
        &self,
        op: CmpOp,
        v: &Value,
        current_epoch: Option<u64>,
    ) -> Result<Vec<u32>> {
        failpoint::check(TREE_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.lookup_cmp(op, v))
    }

    /// Candidate nodes whose object has `attr == v`, in document order.
    pub fn lookup(&self, v: &Value) -> &[u32] {
        self.map
            .get(&OrdValue(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Candidates for a comparison probe, merged in document order.
    pub fn lookup_cmp(&self, op: CmpOp, v: &Value) -> Vec<u32> {
        let key = OrdValue(v.clone());
        let mut out: Vec<u32> = match op {
            CmpOp::Eq => return self.lookup(v).to_vec(),
            CmpOp::Ne => self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
            CmpOp::Lt => self
                .map
                .range((Bound::Unbounded, Bound::Excluded(key)))
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
            CmpOp::Le => self
                .map
                .range((Bound::Unbounded, Bound::Included(key)))
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
            CmpOp::Gt => self
                .map
                .range((Bound::Excluded(key), Bound::Unbounded))
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
            CmpOp::Ge => self
                .map
                .range((Bound::Included(key), Bound::Unbounded))
                .flat_map(|(_, v)| v.iter().copied())
                .collect(),
        };
        out.sort_unstable();
        out
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_algebra::TreeBuilder;
    use aqua_object::{AttrDef, AttrType, ClassDef};

    fn setup() -> (ObjectStore, ClassId, AttrId) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(ClassDef::new("P", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        let attr = AttrId(0);
        for i in 0..10 {
            s.insert_named("P", &[("v", Value::Int(i % 3))]).unwrap();
        }
        (s, c, attr)
    }

    #[test]
    fn point_lookup() {
        let (s, c, a) = setup();
        let idx = AttrIndex::build(&s, c, a);
        assert_eq!(idx.lookup(&Value::Int(0)).len(), 4); // 0,3,6,9
        assert_eq!(idx.lookup(&Value::Int(2)).len(), 3);
        assert!(idx.lookup(&Value::Int(7)).is_empty());
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn range_lookups() {
        let (s, c, a) = setup();
        let idx = AttrIndex::build(&s, c, a);
        assert_eq!(idx.lookup_cmp(CmpOp::Lt, &Value::Int(1)).len(), 4);
        assert_eq!(idx.lookup_cmp(CmpOp::Le, &Value::Int(1)).len(), 7);
        assert_eq!(idx.lookup_cmp(CmpOp::Gt, &Value::Int(1)).len(), 3);
        assert_eq!(idx.lookup_cmp(CmpOp::Ge, &Value::Int(0)).len(), 10);
        assert_eq!(idx.lookup_cmp(CmpOp::Ne, &Value::Int(0)).len(), 6);
        assert_eq!(idx.lookup_cmp(CmpOp::Eq, &Value::Int(2)).len(), 3);
    }

    #[test]
    fn incremental_insert() {
        let (mut s, c, a) = setup();
        let mut idx = AttrIndex::build(&s, c, a);
        let oid = s.insert_named("P", &[("v", Value::Int(99))]).unwrap();
        idx.insert(&s, oid);
        assert_eq!(idx.lookup(&Value::Int(99)), &[oid]);
    }

    #[test]
    fn tree_node_index_document_order() {
        let (mut s, c, a) = setup();
        // Tree: x(y x) with v values 0, 1, 0.
        let o0 = s.insert_named("P", &[("v", Value::Int(7))]).unwrap();
        let o1 = s.insert_named("P", &[("v", Value::Int(8))]).unwrap();
        let o2 = s.insert_named("P", &[("v", Value::Int(7))]).unwrap();
        let mut b = TreeBuilder::new();
        let k1 = b.node(o1, vec![]);
        let k2 = b.node(o2, vec![]);
        let root = b.node(o0, vec![k1, k2]);
        let t = b.finish(root).unwrap();
        let idx = TreeNodeIndex::build(&s, &t, c, a);
        let hits = idx.lookup(&Value::Int(7));
        assert_eq!(hits.len(), 2);
        // Document order: root before second child.
        assert!(hits[0] == root.0 && hits[1] == k2.0);
        assert_eq!(idx.lookup_cmp(CmpOp::Ge, &Value::Int(8)), vec![k1.0]);
    }

    #[test]
    fn try_build_rejects_adversarial_specs_typed() {
        let (s, c, a) = setup();
        // Class id beyond the registry.
        assert!(matches!(
            AttrIndex::try_build(&s, ClassId(99), a),
            Err(crate::error::StoreError::OutOfBounds {
                what: "class id",
                ..
            })
        ));
        // Attribute outside the class layout (would be a slice panic in
        // the trusting builder).
        assert!(matches!(
            AttrIndex::try_build(&s, c, AttrId(7)),
            Err(crate::error::StoreError::OutOfBounds {
                what: "attribute id",
                ..
            })
        ));
        // A tree whose cells dangle outside the store (foreign tree).
        let foreign = Tree::leaf(Oid(9999));
        assert!(matches!(
            TreeNodeIndex::try_build(&s, &foreign, c, a),
            Err(crate::error::StoreError::Object(_))
        ));
        // Well-formed spec matches the trusting builder.
        let idx = AttrIndex::try_build(&s, c, a).unwrap();
        assert_eq!(idx.lookup(&Value::Int(0)).len(), 4);
    }

    #[test]
    fn stale_probe_is_detected_not_wrong() {
        let (s, c, a) = setup();
        let idx = AttrIndex::build(&s, c, a).with_epoch(3);
        assert_eq!(idx.epoch(), 3);
        // Matching epoch and epoch-unaware probes answer.
        assert!(idx.try_lookup(&Value::Int(0), Some(3)).is_ok());
        assert!(idx.try_lookup(&Value::Int(0), None).is_ok());
        // A mutated store refuses with the facts.
        match idx.try_lookup(&Value::Int(0), Some(5)) {
            Err(crate::error::StoreError::StaleIndex {
                built_epoch: 3,
                store_epoch: 5,
            }) => {}
            other => panic!("expected StaleIndex, got {other:?}"),
        }
        assert!(idx
            .try_lookup_cmp(CmpOp::Ge, &Value::Int(0), Some(5))
            .is_err());
    }

    #[test]
    fn tree_index_skips_holes_and_other_classes() {
        let (mut s, c, a) = setup();
        let other = s
            .define_class(ClassDef::new("Q", vec![AttrDef::stored("v", AttrType::Int)]).unwrap())
            .unwrap();
        let alien = s.insert(other, vec![Value::Int(7)]).unwrap();
        let own = s.insert_named("P", &[("v", Value::Int(7))]).unwrap();
        let mut b = TreeBuilder::new();
        let h = b.hole_node(aqua_pattern::CcLabel::new("x"), vec![]);
        let q = b.node(alien, vec![]);
        let root = b.node(own, vec![h, q]);
        let t = b.finish(root).unwrap();
        let idx = TreeNodeIndex::build(&s, &t, c, a);
        assert_eq!(idx.lookup(&Value::Int(7)), &[root.0]);
    }
}
