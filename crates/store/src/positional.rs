//! Positional index for lists.
//!
//! Maps an attribute value to the (sorted) positions of list elements
//! holding it. With [`aqua_pattern::decompose::list_required_pred`]'s
//! fixed-offset analysis, a pattern like `[? ? A]` needs only the
//! positions of `A` minus 2 as candidate match starts, instead of every
//! position.

use std::collections::BTreeMap;

use aqua_algebra::List;
use aqua_guard::failpoint;
use aqua_object::{AttrId, ClassId, ObjectStore, Value};

use crate::attr_index::{check_attr, ensure_fresh, OrdValue};
use crate::error::Result;

/// Failpoint checked by [`ListPosIndex`] probe wrappers.
pub const LIST_INDEX_PROBE: &str = "store.list_index.probe";

/// Positional index over one list.
#[derive(Debug, Clone)]
pub struct ListPosIndex {
    attr: AttrId,
    class: ClassId,
    map: BTreeMap<OrdValue, Vec<usize>>,
    len: usize,
    epoch: u64,
}

impl ListPosIndex {
    /// Build over `list`, indexing `attr` of elements of `class`.
    /// Panics if the list's cells dangle outside `store` — use
    /// [`try_build`](Self::try_build) for untrusted lists.
    pub fn build(store: &ObjectStore, list: &List, class: ClassId, attr: AttrId) -> ListPosIndex {
        let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
        for (i, obj) in list.iter_objects(store) {
            if obj.class() == class {
                map.entry(OrdValue(obj.get(attr).clone()))
                    .or_default()
                    .push(i);
            }
        }
        ListPosIndex {
            attr,
            class,
            map,
            len: list.len(),
            epoch: 0,
        }
    }

    /// Panic-free [`build`](Self::build): dangling OIDs and
    /// out-of-layout attributes become typed [`StoreError`](crate::StoreError)s
    /// (see [`crate::AttrIndex::try_build`]).
    pub fn try_build(
        store: &ObjectStore,
        list: &List,
        class: ClassId,
        attr: AttrId,
    ) -> Result<ListPosIndex> {
        check_attr(store, class, attr)?;
        let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
        for (i, elem) in list.elems().iter().enumerate() {
            let Some(oid) = elem.oid() else { continue };
            let obj = store.get(oid)?;
            if obj.class() == class {
                map.entry(OrdValue(obj.get(attr).clone()))
                    .or_default()
                    .push(i);
            }
        }
        Ok(ListPosIndex {
            attr,
            class,
            map,
            len: list.len(),
            epoch: 0,
        })
    }

    /// Stamp the store generation this index was built at.
    pub fn with_epoch(mut self, epoch: u64) -> ListPosIndex {
        self.epoch = epoch;
        self
    }

    /// The store generation this index was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Fallible [`positions`](Self::positions): checks the
    /// [`LIST_INDEX_PROBE`] failpoint and the staleness gate (see
    /// [`crate::AttrIndex::try_lookup`]).
    pub fn try_positions(&self, v: &Value, current_epoch: Option<u64>) -> Result<&[usize]> {
        failpoint::check(LIST_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.positions(v))
    }

    /// Fallible [`candidate_starts`](Self::candidate_starts); same
    /// gates as [`try_positions`](Self::try_positions).
    pub fn try_candidate_starts(
        &self,
        v: &Value,
        offset: usize,
        current_epoch: Option<u64>,
    ) -> Result<Vec<usize>> {
        failpoint::check(LIST_INDEX_PROBE)?;
        ensure_fresh(self.epoch, current_epoch)?;
        Ok(self.candidate_starts(v, offset))
    }

    /// Positions where `attr == v`, ascending.
    pub fn positions(&self, v: &Value) -> &[usize] {
        self.map
            .get(&OrdValue(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Candidate match-start positions for a pattern that requires
    /// `attr == v` at fixed offset `offset` from the match start.
    pub fn candidate_starts(&self, v: &Value, offset: usize) -> Vec<usize> {
        self.positions(v)
            .iter()
            .filter_map(|&p| p.checked_sub(offset))
            .collect()
    }

    /// Length of the indexed list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed list was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ClassDef};

    fn setup() -> (ObjectStore, ClassId, List) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let mut l = List::new();
        for ch in "GAXAF".chars() {
            let oid = s
                .insert_named("Note", &[("pitch", Value::str(ch.to_string()))])
                .unwrap();
            l.push(oid);
        }
        (s, c, l)
    }

    #[test]
    fn positions_ascending() {
        let (s, c, l) = setup();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.positions(&Value::str("A")), &[1, 3]);
        assert!(idx.positions(&Value::str("Z")).is_empty());
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn candidate_starts_apply_offset() {
        let (s, c, l) = setup();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        // Pattern [? A]: A required at offset 1 → candidates 0 and 2.
        assert_eq!(idx.candidate_starts(&Value::str("A"), 1), vec![0, 2]);
        // Offset larger than the position is discarded (underflow).
        assert_eq!(
            idx.candidate_starts(&Value::str("G"), 1),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn holes_are_skipped() {
        let (mut s, c, _) = setup();
        let mut l = List::new();
        let oid = s
            .insert_named("Note", &[("pitch", Value::str("A"))])
            .unwrap();
        l.push_hole("x");
        l.push(oid);
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.positions(&Value::str("A")), &[1]);
    }

    #[test]
    fn empty_list_builds_an_empty_index() {
        let (s, c, _) = setup();
        let l = List::new();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.len(), 0);
        assert!(idx.is_empty());
        assert!(idx.positions(&Value::str("A")).is_empty());
        assert!(idx.candidate_starts(&Value::str("A"), 0).is_empty());
        assert!(idx.try_positions(&Value::str("A"), Some(0)).is_ok());
    }

    #[test]
    fn all_duplicate_values_report_every_position() {
        let (mut s, c, _) = setup();
        let mut l = List::new();
        for _ in 0..4 {
            let oid = s
                .insert_named("Note", &[("pitch", Value::str("A"))])
                .unwrap();
            l.push(oid);
        }
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.positions(&Value::str("A")), &[0, 1, 2, 3]);
        // Offset subtraction drops underflowing candidates only.
        assert_eq!(idx.candidate_starts(&Value::str("A"), 2), vec![0, 1]);
    }

    /// Mutate the list, rebuild, and check the index against a linear
    /// scan for every value that ever appeared.
    #[test]
    fn rebuild_after_mutation_matches_linear_scan() {
        let (mut s, c, mut l) = setup();
        l.remove(1);
        let oid = s
            .insert_named("Note", &[("pitch", Value::str("A"))])
            .unwrap();
        l.push(oid);
        l.remove(0);
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        for v in ["A", "G", "X", "F", "Z"] {
            let v = Value::str(v);
            let scan: Vec<usize> = l
                .elems()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.oid().is_some_and(|o| s.attr(o, AttrId(0)) == &v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(idx.positions(&v), scan, "positions diverge for {v:?}");
        }
    }

    /// The staleness gate: an index built at an older epoch refuses
    /// typed, and refreshing the epoch un-refuses it.
    #[test]
    fn stale_epoch_probe_is_typed() {
        let (s, c, l) = setup();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0)).with_epoch(3);
        let v = Value::str("A");
        assert!(idx.try_positions(&v, Some(3)).is_ok());
        assert!(idx.try_candidate_starts(&v, 1, None).is_ok());
        assert!(matches!(
            idx.try_positions(&v, Some(4)),
            Err(crate::StoreError::StaleIndex {
                built_epoch: 3,
                store_epoch: 4
            })
        ));
        assert!(matches!(
            idx.try_candidate_starts(&v, 1, Some(9)),
            Err(crate::StoreError::StaleIndex {
                built_epoch: 3,
                store_epoch: 9
            })
        ));
    }
}
