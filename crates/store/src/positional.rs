//! Positional index for lists.
//!
//! Maps an attribute value to the (sorted) positions of list elements
//! holding it. With [`aqua_pattern::decompose::list_required_pred`]'s
//! fixed-offset analysis, a pattern like `[? ? A]` needs only the
//! positions of `A` minus 2 as candidate match starts, instead of every
//! position.

use std::collections::BTreeMap;

use aqua_algebra::List;
use aqua_guard::failpoint::{self, FailpointError};
use aqua_object::{AttrId, ClassId, ObjectStore, Value};

use crate::attr_index::OrdValue;

/// Failpoint checked by [`ListPosIndex`] probe wrappers.
pub const LIST_INDEX_PROBE: &str = "store.list_index.probe";

/// Positional index over one list.
#[derive(Debug, Clone)]
pub struct ListPosIndex {
    attr: AttrId,
    class: ClassId,
    map: BTreeMap<OrdValue, Vec<usize>>,
    len: usize,
}

impl ListPosIndex {
    /// Build over `list`, indexing `attr` of elements of `class`.
    pub fn build(store: &ObjectStore, list: &List, class: ClassId, attr: AttrId) -> ListPosIndex {
        let mut map: BTreeMap<OrdValue, Vec<usize>> = BTreeMap::new();
        for (i, obj) in list.iter_objects(store) {
            if obj.class() == class {
                map.entry(OrdValue(obj.get(attr).clone()))
                    .or_default()
                    .push(i);
            }
        }
        ListPosIndex {
            attr,
            class,
            map,
            len: list.len(),
        }
    }

    /// The indexed attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The indexed class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Fallible [`positions`](Self::positions), checking the
    /// [`LIST_INDEX_PROBE`] failpoint.
    pub fn try_positions(&self, v: &Value) -> Result<&[usize], FailpointError> {
        failpoint::check(LIST_INDEX_PROBE)?;
        Ok(self.positions(v))
    }

    /// Fallible [`candidate_starts`](Self::candidate_starts), checking
    /// the [`LIST_INDEX_PROBE`] failpoint.
    pub fn try_candidate_starts(
        &self,
        v: &Value,
        offset: usize,
    ) -> Result<Vec<usize>, FailpointError> {
        failpoint::check(LIST_INDEX_PROBE)?;
        Ok(self.candidate_starts(v, offset))
    }

    /// Positions where `attr == v`, ascending.
    pub fn positions(&self, v: &Value) -> &[usize] {
        self.map
            .get(&OrdValue(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Candidate match-start positions for a pattern that requires
    /// `attr == v` at fixed offset `offset` from the match start.
    pub fn candidate_starts(&self, v: &Value, offset: usize) -> Vec<usize> {
        self.positions(v)
            .iter()
            .filter_map(|&p| p.checked_sub(offset))
            .collect()
    }

    /// Length of the indexed list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed list was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_object::{AttrDef, AttrType, ClassDef};

    fn setup() -> (ObjectStore, ClassId, List) {
        let mut s = ObjectStore::new();
        let c = s
            .define_class(
                ClassDef::new("Note", vec![AttrDef::stored("pitch", AttrType::Str)]).unwrap(),
            )
            .unwrap();
        let mut l = List::new();
        for ch in "GAXAF".chars() {
            let oid = s
                .insert_named("Note", &[("pitch", Value::str(ch.to_string()))])
                .unwrap();
            l.push(oid);
        }
        (s, c, l)
    }

    #[test]
    fn positions_ascending() {
        let (s, c, l) = setup();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.positions(&Value::str("A")), &[1, 3]);
        assert!(idx.positions(&Value::str("Z")).is_empty());
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn candidate_starts_apply_offset() {
        let (s, c, l) = setup();
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        // Pattern [? A]: A required at offset 1 → candidates 0 and 2.
        assert_eq!(idx.candidate_starts(&Value::str("A"), 1), vec![0, 2]);
        // Offset larger than the position is discarded (underflow).
        assert_eq!(
            idx.candidate_starts(&Value::str("G"), 1),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn holes_are_skipped() {
        let (mut s, c, _) = setup();
        let mut l = List::new();
        let oid = s
            .insert_named("Note", &[("pitch", Value::str("A"))])
            .unwrap();
        l.push_hole("x");
        l.push(oid);
        let idx = ListPosIndex::build(&s, &l, c, AttrId(0));
        assert_eq!(idx.positions(&Value::str("A")), &[1]);
    }
}
