//! # aqua-store — indices and storage structures for AQUA
//!
//! The optimization story of the paper (§4, "Why Split?") assumes the
//! backend can answer a cheap alphabet-predicate *sublinearly*: "Assume
//! that we can use an index to efficiently locate all nodes in T that
//! match d." This crate supplies those access methods over the in-memory
//! substrate:
//!
//! * [`AttrIndex`] — a secondary index `value → OIDs` over a class
//!   extent (used by the conjunctive-select rewrite, experiment B2).
//! * [`TreeNodeIndex`] — `value → tree nodes`, the index the
//!   `sub_select`-via-`split` rewrite probes for root-predicate
//!   candidates (experiment B1).
//! * [`ListPosIndex`] — a positional index `value → element positions`
//!   for lists (accelerates fixed-offset list patterns).
//! * [`StructuralIndex`] — preorder/postorder interval numbering for
//!   O(1) ancestor/descendant tests (experiment B8).
//! * [`ColumnStats`] — per-attribute statistics feeding the optimizer's
//!   cost model.
//!
//! On top of the access methods sits the **durability subsystem**
//! (PR 5): a checksummed, segmented write-ahead log of extent mutations
//! ([`wal`]), atomic snapshot checkpoints ([`snapshot`]), and a
//! panic-free typed recovery path ([`recovery`]) that rebuilds every
//! registered index from snapshot + WAL tail on open. The four indices
//! are epoch-stamped: probing one after the store mutated yields
//! [`StoreError::StaleIndex`] instead of stale candidates.

pub mod attr_index;
pub mod cert;
pub mod codec;
pub mod error;
pub mod merkle;
pub mod positional;
pub mod rebalance;
pub mod recovery;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod structural;
pub mod txn;
pub mod wal;

pub use attr_index::{AttrIndex, TreeNodeIndex, ATTR_INDEX_PROBE, TREE_INDEX_PROBE};
pub use cert::{SplitCertificate, CERT_TAMPER_PROBE};
pub use codec::{crc32, IndexSpec, WalRecord};
pub use error::{Result, StoreError, TxnError};
pub use merkle::{list_root, store_root, tree_root, MerkleTree, Root};
pub use positional::{ListPosIndex, LIST_INDEX_PROBE};
pub use rebalance::{
    RebalanceReport, REBALANCE_BEGIN_CRASH, REBALANCE_CLEANUP_CRASH, REBALANCE_COMMIT_CRASH,
    REBALANCE_DECIDE_CRASH, REBALANCE_MOVED_CRASH, REBALANCE_OUTCOME_CRASH,
    REBALANCE_PREPARE_CRASH,
};
pub use recovery::{DurableConfig, DurableStore, RebuiltIndexes, RecoveryReport, RECOVER_PROBE};
pub use shard::{
    fold_shard_roots, shard_dir_name, ExtentPath, ShardLayoutMeta, ShardRouter, ShardedConfig,
    ShardedRecoveryReport, ShardedStore, REBALANCE_LOG_DIR, SHARD_FOLD_PROBE, SHARD_META,
    SHARD_ROUTE_PROBE, TXN_LOG_DIR,
};
pub use snapshot::{
    list_snapshots, read_snapshot, write_snapshot, SnapshotManifest, SnapshotState,
    INTEGRITY_CORRUPT_PROBE, SNAPSHOT_WRITE_PROBE,
};
pub use stats::ColumnStats;
pub use structural::{StructuralIndex, STRUCTURAL_PROBE};
pub use txn::{
    participant_probe, ShardTxn, TxnReceipt, TXN_DECIDE_CRASH, TXN_OUTCOME_CRASH, TXN_PREPARE_CRASH,
};
pub use wal::{list_segments, scan_segment, SegmentScan, Wal, WalConfig, WAL_APPEND_PROBE};
