//! # aqua-store — indices and storage structures for AQUA
//!
//! The optimization story of the paper (§4, "Why Split?") assumes the
//! backend can answer a cheap alphabet-predicate *sublinearly*: "Assume
//! that we can use an index to efficiently locate all nodes in T that
//! match d." This crate supplies those access methods over the in-memory
//! substrate:
//!
//! * [`AttrIndex`] — a secondary index `value → OIDs` over a class
//!   extent (used by the conjunctive-select rewrite, experiment B2).
//! * [`TreeNodeIndex`] — `value → tree nodes`, the index the
//!   `sub_select`-via-`split` rewrite probes for root-predicate
//!   candidates (experiment B1).
//! * [`ListPosIndex`] — a positional index `value → element positions`
//!   for lists (accelerates fixed-offset list patterns).
//! * [`StructuralIndex`] — preorder/postorder interval numbering for
//!   O(1) ancestor/descendant tests (experiment B8).
//! * [`ColumnStats`] — per-attribute statistics feeding the optimizer's
//!   cost model.

pub mod attr_index;
pub mod positional;
pub mod stats;
pub mod structural;

pub use attr_index::{AttrIndex, TreeNodeIndex, ATTR_INDEX_PROBE, TREE_INDEX_PROBE};
pub use positional::{ListPosIndex, LIST_INDEX_PROBE};
pub use stats::ColumnStats;
pub use structural::{StructuralIndex, STRUCTURAL_PROBE};
