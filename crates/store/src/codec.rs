//! Hand-rolled binary codec for the durability subsystem.
//!
//! The workspace is dependency-free by design, so WAL records and
//! snapshots use a small fixed-layout little-endian encoding defined
//! here, protected by the classic [CRC-32/ISO-HDLC](crc32) checksum.
//! Decoding is strictly bounds-checked: a truncated or bit-flipped
//! buffer yields a typed [`StoreError::Corrupt`], never a panic —
//! that is the property the recovery path's torn-tail handling and the
//! chaos harness's bit-flip legs rely on.

use aqua_algebra::{List, ListElem, Payload, Tree, TreeBuilder};
use aqua_object::{AttrDef, AttrId, AttrKind, AttrType, ClassDef, ClassId, Oid, Value};
use aqua_pattern::CcLabel;

use crate::error::{Result, StoreError};
use crate::merkle::Root;

// ------------------------------------------------------------- crc32

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected 0xEDB88320).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ------------------------------------------------------------ encoder

/// Append-only byte sink with fixed-layout primitives.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, no length prefix — the caller's format fixes the width
    /// (e.g. 32-byte merkle roots in snapshot manifests).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(x) => {
                self.u8(3);
                self.u64(x.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Ref(oid) => {
                self.u8(5);
                self.u64(oid.0);
            }
        }
    }

    pub fn class_def(&mut self, def: &ClassDef) {
        self.str(def.name());
        self.u32(def.arity() as u32);
        for a in def.attrs() {
            self.str(&a.name);
            self.u8(match a.ty {
                AttrType::Bool => 0,
                AttrType::Int => 1,
                AttrType::Float => 2,
                AttrType::Str => 3,
                AttrType::Ref => 4,
            });
            self.u8(match a.kind {
                AttrKind::Stored => 0,
                AttrKind::Computed => 1,
            });
        }
    }

    /// Trees serialize as their arena, slot by slot. Every tree built
    /// through [`TreeBuilder`] lists children before their parent, so
    /// decoding can re-run the builder in arena order and reproduce the
    /// exact same [`aqua_algebra::NodeId`] layout.
    pub fn tree(&mut self, t: &Tree) {
        self.u32(t.root().0);
        self.u32(t.len() as u32);
        for i in 0..t.len() {
            let node = aqua_algebra::NodeId(i as u32);
            match t.payload(node) {
                Payload::Cell(c) => {
                    self.u8(0);
                    self.u64(c.contents().0);
                }
                Payload::Hole(l) => {
                    self.u8(1);
                    self.str(&l.0);
                }
            }
            let kids = t.children(node);
            self.u32(kids.len() as u32);
            for k in kids {
                self.u32(k.0);
            }
        }
    }

    pub fn list(&mut self, l: &List) {
        self.u32(l.len() as u32);
        for e in l.elems() {
            match e {
                ListElem::Cell(c) => {
                    self.u8(0);
                    self.u64(c.contents().0);
                }
                ListElem::Hole(label) => {
                    self.u8(1);
                    self.str(&label.0);
                }
            }
        }
    }
}

// ------------------------------------------------------------ decoder

/// Bounds-checked reader over an encoded buffer. Every accessor returns
/// a typed error on underflow or an invalid tag; `path` names the file
/// the buffer came from so corruption reports point at the evidence.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, reporting corruption against `path`.
    pub fn new(buf: &'a [u8], path: &'a str) -> Dec<'a> {
        Dec { buf, pos: 0, path }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the whole buffer was consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn corrupt(&self, what: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            path: self.path.to_owned(),
            offset: self.pos as u64,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "need {n} bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf-8 in string"))
    }

    /// Raw bytes of a fixed, caller-known width (see [`Enc::bytes`]).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            5 => Value::Ref(Oid(self.u64()?)),
            t => return Err(self.corrupt(format!("unknown value tag {t}"))),
        })
    }

    pub fn class_def(&mut self) -> Result<ClassDef> {
        let name = self.str()?;
        let n = self.u32()? as usize;
        if n > u16::MAX as usize {
            return Err(self.corrupt(format!("class {name:?} claims {n} attributes")));
        }
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            let attr_name = self.str()?;
            let ty = match self.u8()? {
                0 => AttrType::Bool,
                1 => AttrType::Int,
                2 => AttrType::Float,
                3 => AttrType::Str,
                4 => AttrType::Ref,
                t => return Err(self.corrupt(format!("unknown attr type tag {t}"))),
            };
            attrs.push(match self.u8()? {
                0 => AttrDef::stored(attr_name, ty),
                1 => AttrDef::computed(attr_name, ty),
                t => return Err(self.corrupt(format!("unknown attr kind tag {t}"))),
            });
        }
        ClassDef::new(name, attrs).map_err(|e| self.corrupt(e.to_string()))
    }

    pub fn tree(&mut self) -> Result<Tree> {
        let root = self.u32()?;
        let len = self.u32()? as usize;
        if len == 0 {
            return Err(self.corrupt("tree with zero nodes"));
        }
        if len > self.buf.len() - self.pos + 1 {
            // Each node costs at least one payload byte; a length
            // larger than the remaining buffer is corruption, caught
            // before any allocation sized by it.
            return Err(self.corrupt(format!("tree claims {len} nodes beyond buffer")));
        }
        let mut b = TreeBuilder::new();
        for i in 0..len {
            let payload = match self.u8()? {
                0 => Payload::Cell(aqua_object::Cell::new(Oid(self.u64()?))),
                1 => Payload::Hole(CcLabel::new(self.str()?)),
                t => return Err(self.corrupt(format!("unknown payload tag {t}"))),
            };
            let nkids = self.u32()? as usize;
            let mut kids = Vec::with_capacity(nkids.min(len));
            for _ in 0..nkids {
                let k = self.u32()? as usize;
                if k >= i {
                    return Err(self.corrupt(format!("node {i} lists child {k} not yet built")));
                }
                kids.push(aqua_algebra::NodeId(k as u32));
            }
            b.payload_node(payload, kids);
        }
        if root as usize >= len {
            return Err(self.corrupt(format!("root {root} out of bounds ({len} nodes)")));
        }
        b.finish(aqua_algebra::NodeId(root))
            .map_err(|e| self.corrupt(format!("decoded tree is malformed: {e}")))
    }

    pub fn list(&mut self) -> Result<List> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos + 1 {
            return Err(self.corrupt(format!("list claims {len} elements beyond buffer")));
        }
        let mut elems = Vec::with_capacity(len);
        for _ in 0..len {
            elems.push(match self.u8()? {
                0 => ListElem::Cell(aqua_object::Cell::new(Oid(self.u64()?))),
                1 => ListElem::Hole(CcLabel::new(self.str()?)),
                t => return Err(self.corrupt(format!("unknown list element tag {t}"))),
            });
        }
        Ok(List::from_elems(elems))
    }
}

// --------------------------------------------------------- WAL records

/// Which access method an index-maintenance record (re)registers.
/// Recovery rebuilds every registered index from the recovered extents.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexSpec {
    /// An [`AttrIndex`](crate::AttrIndex) over a class extent.
    Attr { class: ClassId, attr: AttrId },
    /// A [`TreeNodeIndex`](crate::TreeNodeIndex) over one named tree.
    TreeNode {
        tree: String,
        class: ClassId,
        attr: AttrId,
    },
    /// A [`ListPosIndex`](crate::ListPosIndex) over one named list.
    ListPos {
        list: String,
        class: ClassId,
        attr: AttrId,
    },
    /// A [`StructuralIndex`](crate::StructuralIndex) over one named tree.
    Structural { tree: String },
}

/// One logged extent mutation (or index-maintenance event). The WAL is
/// logical: records name the operation, not the resulting bytes, and
/// replaying them through the same code paths reproduces the state.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `define_class`.
    DefineClass { def: ClassDef },
    /// Object insertion; the assigned OID is deterministic (next slot).
    Insert { class: ClassId, row: Vec<Value> },
    /// Point update of one stored attribute.
    Update {
        oid: Oid,
        attr: AttrId,
        value: Value,
    },
    /// A named tree extent was created (or wholly replaced).
    TreeCreate { name: String, tree: Tree },
    /// Functional child insertion on a named tree.
    TreeInsertChild {
        name: String,
        parent: u32,
        index: u32,
        child: Tree,
    },
    /// Functional subtree removal on a named tree.
    TreeRemoveSubtree { name: String, at: u32 },
    /// Payload point-update on a named tree.
    TreeSetOid { name: String, at: u32, oid: Oid },
    /// A named list extent was created.
    ListCreate { name: String },
    /// Element append on a named list.
    ListPush { name: String, oid: Oid },
    /// Labeled-NULL append on a named list.
    ListPushHole { name: String, label: String },
    /// Element removal on a named list.
    ListRemove { name: String, index: u32 },
    /// Index maintenance: the spec joins the registry and is rebuilt on
    /// recovery.
    RegisterIndex { spec: IndexSpec },
    /// Two-phase-commit *prepare*: the buffered mutations this
    /// participant shard must apply if (and only if) the coordinator
    /// decides commit. `participants` lists every shard in the
    /// transaction (so recovery can cross-check the others);
    /// `root_binding` is the post-apply per-shard store root the
    /// coordinator computed at prepare time — a participant whose
    /// roll-forward lands on a different root has diverged.
    TxnPrepare {
        txn_id: u64,
        participants: Vec<u32>,
        records: Vec<WalRecord>,
        root_binding: Root,
    },
    /// Two-phase-commit *commit*: in a participant WAL, the outcome
    /// frame that applies the matching [`WalRecord::TxnPrepare`]'s buffer; in the
    /// coordinator log, the durable decision itself.
    TxnCommit { txn_id: u64 },
    /// Two-phase-commit *abort*: drops the matching [`WalRecord::TxnPrepare`]'s
    /// buffer (participant WAL) or records the abort decision
    /// (coordinator log).
    TxnAbort { txn_id: u64 },
    /// A named tree extent was dropped (its objects are untouched —
    /// value fingerprints render extents, never orphans). Per-extent
    /// index specs naming the tree are unregistered with it.
    TreeDrop { name: String },
    /// A named list extent was dropped; same spec-unregistration rule
    /// as [`WalRecord::TreeDrop`].
    ListDrop { name: String },
    /// Migration-log only: a rebalance from `from` to `to` shards began
    /// under layout `epoch`. Never appears in a shard WAL.
    RebalanceBegin { epoch: u64, from: u32, to: u32 },
    /// Migration-log only: the top-segment subtree `top` finished its
    /// coordinator-decided move under `epoch`.
    RebalanceMoved { epoch: u64, top: String },
    /// Migration-log only: every re-routed subtree under `epoch` is
    /// home; the final layout may be committed.
    RebalanceCommit { epoch: u64 },
}

impl WalRecord {
    /// Whether this is a transaction-protocol record (prepare, commit,
    /// abort). Txn records are framed like any other WAL record but are
    /// interpreted by the transaction state machine, never by the plain
    /// `check`/`apply` path — and they may not nest inside a prepare.
    pub fn is_txn(&self) -> bool {
        matches!(
            self,
            WalRecord::TxnPrepare { .. } | WalRecord::TxnCommit { .. } | WalRecord::TxnAbort { .. }
        )
    }
    /// Encode into `enc`.
    pub fn encode(&self, enc: &mut Enc) {
        match self {
            WalRecord::DefineClass { def } => {
                enc.u8(0);
                enc.class_def(def);
            }
            WalRecord::Insert { class, row } => {
                enc.u8(1);
                enc.u32(class.0);
                enc.u32(row.len() as u32);
                for v in row {
                    enc.value(v);
                }
            }
            WalRecord::Update { oid, attr, value } => {
                enc.u8(2);
                enc.u64(oid.0);
                enc.u16(attr.0);
                enc.value(value);
            }
            WalRecord::TreeCreate { name, tree } => {
                enc.u8(3);
                enc.str(name);
                enc.tree(tree);
            }
            WalRecord::TreeInsertChild {
                name,
                parent,
                index,
                child,
            } => {
                enc.u8(4);
                enc.str(name);
                enc.u32(*parent);
                enc.u32(*index);
                enc.tree(child);
            }
            WalRecord::TreeRemoveSubtree { name, at } => {
                enc.u8(5);
                enc.str(name);
                enc.u32(*at);
            }
            WalRecord::TreeSetOid { name, at, oid } => {
                enc.u8(6);
                enc.str(name);
                enc.u32(*at);
                enc.u64(oid.0);
            }
            WalRecord::ListCreate { name } => {
                enc.u8(7);
                enc.str(name);
            }
            WalRecord::ListPush { name, oid } => {
                enc.u8(8);
                enc.str(name);
                enc.u64(oid.0);
            }
            WalRecord::ListPushHole { name, label } => {
                enc.u8(9);
                enc.str(name);
                enc.str(label);
            }
            WalRecord::ListRemove { name, index } => {
                enc.u8(10);
                enc.str(name);
                enc.u32(*index);
            }
            WalRecord::RegisterIndex { spec } => {
                enc.u8(11);
                match spec {
                    IndexSpec::Attr { class, attr } => {
                        enc.u8(0);
                        enc.u32(class.0);
                        enc.u16(attr.0);
                    }
                    IndexSpec::TreeNode { tree, class, attr } => {
                        enc.u8(1);
                        enc.str(tree);
                        enc.u32(class.0);
                        enc.u16(attr.0);
                    }
                    IndexSpec::ListPos { list, class, attr } => {
                        enc.u8(2);
                        enc.str(list);
                        enc.u32(class.0);
                        enc.u16(attr.0);
                    }
                    IndexSpec::Structural { tree } => {
                        enc.u8(3);
                        enc.str(tree);
                    }
                }
            }
            WalRecord::TxnPrepare {
                txn_id,
                participants,
                records,
                root_binding,
            } => {
                enc.u8(12);
                enc.u64(*txn_id);
                enc.u32(participants.len() as u32);
                for p in participants {
                    enc.u32(*p);
                }
                enc.u32(records.len() as u32);
                for r in records {
                    r.encode(enc);
                }
                enc.bytes(&root_binding.0);
            }
            WalRecord::TxnCommit { txn_id } => {
                enc.u8(13);
                enc.u64(*txn_id);
            }
            WalRecord::TxnAbort { txn_id } => {
                enc.u8(14);
                enc.u64(*txn_id);
            }
            WalRecord::TreeDrop { name } => {
                enc.u8(15);
                enc.str(name);
            }
            WalRecord::ListDrop { name } => {
                enc.u8(16);
                enc.str(name);
            }
            WalRecord::RebalanceBegin { epoch, from, to } => {
                enc.u8(17);
                enc.u64(*epoch);
                enc.u32(*from);
                enc.u32(*to);
            }
            WalRecord::RebalanceMoved { epoch, top } => {
                enc.u8(18);
                enc.u64(*epoch);
                enc.str(top);
            }
            WalRecord::RebalanceCommit { epoch } => {
                enc.u8(19);
                enc.u64(*epoch);
            }
        }
    }

    /// Encoded bytes of this record alone.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decode one record from `dec`.
    pub fn decode(dec: &mut Dec<'_>) -> Result<WalRecord> {
        Ok(match dec.u8()? {
            0 => WalRecord::DefineClass {
                def: dec.class_def()?,
            },
            1 => {
                let class = ClassId(dec.u32()?);
                let n = dec.u32()? as usize;
                if n > u16::MAX as usize {
                    return Err(StoreError::Corrupt {
                        path: dec.path.to_owned(),
                        offset: dec.pos as u64,
                        what: format!("insert row claims {n} values"),
                    });
                }
                let mut row = Vec::with_capacity(n);
                for _ in 0..n {
                    row.push(dec.value()?);
                }
                WalRecord::Insert { class, row }
            }
            2 => WalRecord::Update {
                oid: Oid(dec.u64()?),
                attr: AttrId(dec.u16()?),
                value: dec.value()?,
            },
            3 => WalRecord::TreeCreate {
                name: dec.str()?,
                tree: dec.tree()?,
            },
            4 => WalRecord::TreeInsertChild {
                name: dec.str()?,
                parent: dec.u32()?,
                index: dec.u32()?,
                child: dec.tree()?,
            },
            5 => WalRecord::TreeRemoveSubtree {
                name: dec.str()?,
                at: dec.u32()?,
            },
            6 => WalRecord::TreeSetOid {
                name: dec.str()?,
                at: dec.u32()?,
                oid: Oid(dec.u64()?),
            },
            7 => WalRecord::ListCreate { name: dec.str()? },
            8 => WalRecord::ListPush {
                name: dec.str()?,
                oid: Oid(dec.u64()?),
            },
            9 => WalRecord::ListPushHole {
                name: dec.str()?,
                label: dec.str()?,
            },
            10 => WalRecord::ListRemove {
                name: dec.str()?,
                index: dec.u32()?,
            },
            11 => {
                let spec = match dec.u8()? {
                    0 => IndexSpec::Attr {
                        class: ClassId(dec.u32()?),
                        attr: AttrId(dec.u16()?),
                    },
                    1 => IndexSpec::TreeNode {
                        tree: dec.str()?,
                        class: ClassId(dec.u32()?),
                        attr: AttrId(dec.u16()?),
                    },
                    2 => IndexSpec::ListPos {
                        list: dec.str()?,
                        class: ClassId(dec.u32()?),
                        attr: AttrId(dec.u16()?),
                    },
                    3 => IndexSpec::Structural { tree: dec.str()? },
                    t => {
                        return Err(StoreError::Corrupt {
                            path: dec.path.to_owned(),
                            offset: dec.pos as u64,
                            what: format!("unknown index spec tag {t}"),
                        })
                    }
                };
                WalRecord::RegisterIndex { spec }
            }
            12 => {
                let txn_id = dec.u64()?;
                let np = dec.u32()? as usize;
                if np > u16::MAX as usize {
                    return Err(StoreError::Corrupt {
                        path: dec.path.to_owned(),
                        offset: dec.pos as u64,
                        what: format!("txn prepare claims {np} participants"),
                    });
                }
                let mut participants = Vec::with_capacity(np);
                for _ in 0..np {
                    participants.push(dec.u32()?);
                }
                let nr = dec.u32()? as usize;
                if nr > dec.buf.len() - dec.pos + 1 {
                    return Err(StoreError::Corrupt {
                        path: dec.path.to_owned(),
                        offset: dec.pos as u64,
                        what: format!("txn prepare claims {nr} records beyond buffer"),
                    });
                }
                let mut records = Vec::with_capacity(nr);
                for _ in 0..nr {
                    let r = WalRecord::decode(dec)?;
                    if r.is_txn() {
                        return Err(StoreError::Corrupt {
                            path: dec.path.to_owned(),
                            offset: dec.pos as u64,
                            what: "txn record nested inside a prepare buffer".to_string(),
                        });
                    }
                    records.push(r);
                }
                let root_binding = Root(dec.bytes(32)?.try_into().expect("width checked"));
                WalRecord::TxnPrepare {
                    txn_id,
                    participants,
                    records,
                    root_binding,
                }
            }
            13 => WalRecord::TxnCommit { txn_id: dec.u64()? },
            14 => WalRecord::TxnAbort { txn_id: dec.u64()? },
            15 => WalRecord::TreeDrop { name: dec.str()? },
            16 => WalRecord::ListDrop { name: dec.str()? },
            17 => WalRecord::RebalanceBegin {
                epoch: dec.u64()?,
                from: dec.u32()?,
                to: dec.u32()?,
            },
            18 => WalRecord::RebalanceMoved {
                epoch: dec.u64()?,
                top: dec.str()?,
            },
            19 => WalRecord::RebalanceCommit { epoch: dec.u64()? },
            t => {
                return Err(StoreError::Corrupt {
                    path: dec.path.to_owned(),
                    offset: dec.pos as u64,
                    what: format!("unknown record tag {t}"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("héllo"),
            Value::Ref(Oid(9)),
        ];
        let mut enc = Enc::new();
        for v in &vals {
            enc.value(v);
        }
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes, "test");
        for v in &vals {
            let back = dec.value().unwrap();
            if let (Value::Float(a), Value::Float(b)) = (v, &back) {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert_eq!(&back, v);
            }
        }
        assert!(dec.done());
    }

    #[test]
    fn trees_round_trip_with_identical_arena() {
        let mut b = TreeBuilder::new();
        let k1 = b.node(Oid(1), vec![]);
        let h = b.hole_node(CcLabel::new("x"), vec![]);
        let k2 = b.node(Oid(2), vec![h]);
        let root = b.node(Oid(0), vec![k1, k2]);
        let t = b.finish(root).unwrap();

        let mut enc = Enc::new();
        enc.tree(&t);
        let bytes = enc.finish();
        let back = Dec::new(&bytes, "test").tree().unwrap();
        assert_eq!(back, t, "arena layout reproduced exactly");
    }

    #[test]
    fn records_round_trip() {
        let recs = vec![
            WalRecord::DefineClass {
                def: ClassDef::new("P", vec![AttrDef::stored("v", AttrType::Int)]).unwrap(),
            },
            WalRecord::Insert {
                class: ClassId(0),
                row: vec![Value::Int(7)],
            },
            WalRecord::Update {
                oid: Oid(0),
                attr: AttrId(0),
                value: Value::Int(8),
            },
            WalRecord::TreeCreate {
                name: "t".into(),
                tree: Tree::leaf(Oid(0)),
            },
            WalRecord::ListCreate { name: "l".into() },
            WalRecord::ListPush {
                name: "l".into(),
                oid: Oid(0),
            },
            WalRecord::ListPushHole {
                name: "l".into(),
                label: "x".into(),
            },
            WalRecord::ListRemove {
                name: "l".into(),
                index: 1,
            },
            WalRecord::RegisterIndex {
                spec: IndexSpec::TreeNode {
                    tree: "t".into(),
                    class: ClassId(0),
                    attr: AttrId(0),
                },
            },
            WalRecord::TxnPrepare {
                txn_id: 9,
                participants: vec![0, 2],
                records: vec![
                    WalRecord::Insert {
                        class: ClassId(0),
                        row: vec![Value::str("E")],
                    },
                    WalRecord::ListPush {
                        name: "l".into(),
                        oid: Oid(4),
                    },
                ],
                root_binding: Root([7; 32]),
            },
            WalRecord::TxnCommit { txn_id: 9 },
            WalRecord::TxnAbort { txn_id: 10 },
            WalRecord::TreeDrop { name: "t".into() },
            WalRecord::ListDrop { name: "l".into() },
            WalRecord::RebalanceBegin {
                epoch: 2,
                from: 2,
                to: 4,
            },
            WalRecord::RebalanceMoved {
                epoch: 2,
                top: "p3".into(),
            },
            WalRecord::RebalanceCommit { epoch: 2 },
        ];
        for r in &recs {
            let bytes = r.to_bytes();
            let mut dec = Dec::new(&bytes, "test");
            assert_eq!(&WalRecord::decode(&mut dec).unwrap(), r);
            assert!(dec.done(), "{r:?} leaves trailing bytes");
        }
    }

    #[test]
    fn truncated_buffers_are_typed_errors() {
        let rec = WalRecord::TreeCreate {
            name: "t".into(),
            tree: Tree::leaf(Oid(3)),
        };
        let bytes = rec.to_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut], "test");
            match WalRecord::decode(&mut dec) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_txn_records_are_rejected() {
        // Hand-assemble a prepare whose buffer holds another txn record:
        // the writer can never produce this (is_txn() records are built
        // by the protocol, not buffered), so the decoder must refuse it.
        let mut enc = Enc::new();
        enc.u8(12);
        enc.u64(1); // txn_id
        enc.u32(0); // no participants
        enc.u32(1); // one buffered record...
        enc.u8(13); // ...which is a TxnCommit
        enc.u64(1);
        enc.bytes(&[0; 32]);
        let bytes = enc.finish();
        let err = WalRecord::decode(&mut Dec::new(&bytes, "test")).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { what, .. } if what.contains("nested")),
            "got {err:?}"
        );
    }

    #[test]
    fn txn_prepare_truncations_are_typed_errors() {
        let rec = WalRecord::TxnPrepare {
            txn_id: 3,
            participants: vec![1],
            records: vec![WalRecord::ListCreate { name: "l".into() }],
            root_binding: Root([9; 32]),
        };
        let bytes = rec.to_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut], "test");
            match WalRecord::decode(&mut dec) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn drop_and_rebalance_truncations_are_typed_errors() {
        let recs = [
            WalRecord::TreeDrop { name: "t".into() },
            WalRecord::ListDrop { name: "l".into() },
            WalRecord::RebalanceBegin {
                epoch: 3,
                from: 4,
                to: 2,
            },
            WalRecord::RebalanceMoved {
                epoch: 3,
                top: "p1".into(),
            },
            WalRecord::RebalanceCommit { epoch: 3 },
        ];
        for rec in &recs {
            let bytes = rec.to_bytes();
            for cut in 0..bytes.len() {
                let mut dec = Dec::new(&bytes[..cut], "test");
                match WalRecord::decode(&mut dec) {
                    Err(StoreError::Corrupt { .. }) => {}
                    other => panic!("{rec:?} cut at {cut}: expected Corrupt, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut dec = Dec::new(&[99], "test");
        assert!(matches!(
            WalRecord::decode(&mut dec),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
